//! Property tests: the managed heap's allocator invariants and
//! save/restore fidelity under arbitrary alloc/free/write sequences, and
//! Position Stack replay semantics.

use proptest::prelude::*;

use ckptstore::codec::{Decoder, Encoder};
use ckptstore::SaveLoad;
use statesave::{ManagedHeap, PositionStack};

#[derive(Debug, Clone)]
enum HeapOp {
    Alloc(usize),
    FreeNth(usize),
    WriteNth(usize, u8),
}

fn heap_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    proptest::collection::vec(
        prop_oneof![
            (1usize..64).prop_map(HeapOp::Alloc),
            (0usize..8).prop_map(HeapOp::FreeNth),
            ((0usize..8), any::<u8>())
                .prop_map(|(i, v)| HeapOp::WriteNth(i, v)),
        ],
        1..64,
    )
}

proptest! {
    /// Live objects never overlap each other, allocation is always
    /// zeroed, and a save/load round trip reproduces every live object's
    /// bytes — for arbitrary operation sequences.
    #[test]
    fn heap_invariants_under_arbitrary_ops(ops in heap_ops()) {
        let mut heap = ManagedHeap::new(4096);
        // Model: (offset, bytes) per live object.
        let mut model: Vec<(u32, Vec<u8>)> = Vec::new();

        for op in ops {
            match op {
                HeapOp::Alloc(len) => {
                    if let Ok(off) = heap.alloc_bytes(len) {
                        // New object must be zeroed.
                        let got = heap.read_bytes(off, 0, len).unwrap();
                        prop_assert!(got.iter().all(|&b| b == 0));
                        // And must not overlap any live object.
                        for (o, bytes) in &model {
                            let (a0, a1) = (off as usize, off as usize + len);
                            let (b0, b1) =
                                (*o as usize, *o as usize + bytes.len());
                            prop_assert!(
                                a1 <= b0 || b1 <= a0,
                                "overlap: [{},{}) vs [{},{})",
                                a0, a1, b0, b1
                            );
                        }
                        model.push((off, vec![0; len]));
                    }
                }
                HeapOp::FreeNth(i) => {
                    if !model.is_empty() {
                        let (off, _) = model.remove(i % model.len());
                        heap.free(off).unwrap();
                    }
                }
                HeapOp::WriteNth(i, v) => {
                    if !model.is_empty() {
                        let idx = i % model.len();
                        let (off, bytes) = &mut model[idx];
                        let fill = vec![v; bytes.len()];
                        heap.write_bytes(*off, 0, &fill).unwrap();
                        *bytes = fill;
                    }
                }
            }
        }

        // Model agreement before the round trip.
        for (off, bytes) in &model {
            prop_assert_eq!(
                heap.read_bytes(*off, 0, bytes.len()).unwrap(),
                &bytes[..]
            );
        }
        prop_assert_eq!(heap.live_objects(), model.len());

        // Save, load, and re-check every live object byte for byte.
        let mut enc = Encoder::new();
        heap.save(&mut enc);
        let blob = enc.into_bytes();
        let restored = ManagedHeap::load(&mut Decoder::new(&blob)).unwrap();
        prop_assert_eq!(&restored, &heap);
        for (off, bytes) in &model {
            prop_assert_eq!(
                restored.read_bytes(*off, 0, bytes.len()).unwrap(),
                &bytes[..]
            );
        }
    }

    /// Alloc/free of everything returns the heap to one maximal free
    /// extent (full coalescing) so capacity is never fragmented away.
    #[test]
    fn full_free_restores_full_capacity(
        sizes in proptest::collection::vec(1usize..128, 1..20),
        free_order in proptest::collection::vec(any::<u16>(), 1..20),
    ) {
        let mut heap = ManagedHeap::new(8192);
        let mut offs = Vec::new();
        for &s in &sizes {
            if let Ok(off) = heap.alloc_bytes(s) {
                offs.push(off);
            }
        }
        // Free in a permutation driven by free_order.
        let mut order: Vec<usize> = (0..offs.len()).collect();
        order.sort_by_key(|&i| free_order.get(i).copied().unwrap_or(0));
        for &i in &order {
            heap.free(offs[i]).unwrap();
        }
        prop_assert_eq!(heap.live_objects(), 0);
        // The entire arena must be allocatable again in one piece.
        let whole = heap.alloc_bytes(8192);
        prop_assert!(whole.is_ok(), "fragmentation after full free");
    }

    /// PS replay yields exactly the pushed labels, outermost first, and
    /// ends restarting mode at the innermost label.
    #[test]
    fn position_stack_replay(labels in proptest::collection::vec(any::<u32>(), 0..32)) {
        let mut ps = PositionStack::new();
        for &l in &labels {
            ps.push(l);
        }
        let mut enc = Encoder::new();
        ps.save(&mut enc);
        let blob = enc.into_bytes();
        let mut restored =
            PositionStack::load(&mut Decoder::new(&blob)).unwrap();
        restored.begin_restart();
        let mut replayed = Vec::new();
        while let Some(l) = restored.next_restart_label() {
            replayed.push(l);
        }
        prop_assert_eq!(replayed, labels.clone());
        prop_assert!(!restored.is_restarting());
        prop_assert_eq!(restored.depth(), labels.len());
    }
}
