//! Managed heap with address-stable allocation (Sections 5.1.3 and 5.1.4).
//!
//! The paper's precompiler supplies its own heap manager so that, on
//! restart, every live object is restored to the virtual address it had in
//! the original process, letting pointers be checkpointed as plain data. We
//! reproduce that with an arena whose "virtual addresses" are stable
//! offsets: an [`HPtr`] is an offset into the arena, so an `HPtr` stored
//! *inside* another heap object round-trips through a checkpoint
//! byte-identically and still points at the same object afterwards.
//!
//! The object table is the paper's Heap Object Structure (HOS): a map from
//! offset to length of every live object. Checkpointing saves the HOS, the
//! free list, and only the live object bytes; restore rebuilds an identical
//! arena.

use std::collections::BTreeMap;
use std::marker::PhantomData;

use ckptstore::codec::{CodecError, Decoder, Encoder, SaveLoad};

/// Scalar types storable in the managed heap and in [`crate::Frame`] slots.
/// Little-endian fixed-width encoding keeps saved bytes portable.
pub trait Scalar: Copy + 'static {
    /// Encoded width in bytes.
    const WIDTH: usize;
    /// Write the little-endian encoding into `out` (exactly `WIDTH` bytes).
    fn store(self, out: &mut [u8]);
    /// Read a value back from exactly `WIDTH` bytes.
    fn fetch(bytes: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty, $w:expr) => {
        impl Scalar for $t {
            const WIDTH: usize = $w;
            fn store(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }
            fn fetch(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().unwrap())
            }
        }
    };
}

impl_scalar!(u8, 1);
impl_scalar!(u32, 4);
impl_scalar!(i32, 4);
impl_scalar!(u64, 8);
impl_scalar!(i64, 8);
impl_scalar!(f32, 4);
impl_scalar!(f64, 8);

/// A typed "pointer" into the managed heap: a stable offset. `HPtr` values
/// may themselves be stored in heap objects (via [`ManagedHeap::write_ptr`])
/// and remain valid across checkpoint/restore — the paper's Section 5.1.4
/// property.
pub struct HPtr<T: Scalar> {
    off: u32,
    _marker: PhantomData<T>,
}

// Manual impls: derive would bound them on `T: Clone`/`T: Copy`, which is
// unnecessary for an offset.
impl<T: Scalar> Clone for HPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Scalar> Copy for HPtr<T> {}
impl<T: Scalar> std::fmt::Debug for HPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HPtr({})", self.off)
    }
}
impl<T: Scalar> PartialEq for HPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.off == other.off
    }
}
impl<T: Scalar> Eq for HPtr<T> {}

impl<T: Scalar> HPtr<T> {
    /// The raw stable offset (what actually gets stored in checkpoints).
    pub fn raw(self) -> u32 {
        self.off
    }

    /// Rebuild a pointer from a raw offset previously obtained via
    /// [`HPtr::raw`] or read out of a heap object.
    pub fn from_raw(off: u32) -> Self {
        HPtr {
            off,
            _marker: PhantomData,
        }
    }
}

/// Errors from heap operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// The arena has no free extent large enough.
    OutOfMemory {
        /// Bytes the failed allocation asked for.
        requested: usize,
    },
    /// An offset did not name a live object (or the access overran it).
    BadAccess {
        /// The offending offset.
        off: u32,
        /// What was wrong with the access.
        detail: &'static str,
    },
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::OutOfMemory { requested } => {
                write!(
                    f,
                    "managed heap exhausted allocating {requested} bytes"
                )
            }
            HeapError::BadAccess { off, detail } => {
                write!(f, "bad heap access at offset {off}: {detail}")
            }
        }
    }
}

impl std::error::Error for HeapError {}

/// The managed heap: arena + HOS + free list.
#[derive(Debug, Clone)]
pub struct ManagedHeap {
    arena: Vec<u8>,
    /// HOS: offset → length of each live object.
    objects: BTreeMap<u32, u32>,
    /// Free extents (offset → length), kept coalesced.
    free: BTreeMap<u32, u32>,
}

/// Semantic equality: capacity, allocation structure, and the bytes of
/// *live* objects. Dead arena regions are not part of the heap's meaning —
/// checkpoints do not save them (Section 5.1.3 copies only what the HOS
/// describes), so they may differ after a restore.
impl PartialEq for ManagedHeap {
    fn eq(&self, other: &Self) -> bool {
        self.arena.len() == other.arena.len()
            && self.objects == other.objects
            && self.free == other.free
            && self.objects.iter().all(|(&off, &len)| {
                let r = off as usize..(off + len) as usize;
                self.arena[r.clone()] == other.arena[r]
            })
    }
}

impl Eq for ManagedHeap {}

impl ManagedHeap {
    /// Create a heap with a fixed arena capacity (the paper requests "the
    /// same chunk of virtual address space" on restart; fixing capacity up
    /// front models that).
    pub fn new(capacity: usize) -> Self {
        let capacity = u32::try_from(capacity).expect("arena too large");
        let mut free = BTreeMap::new();
        if capacity > 0 {
            free.insert(0, capacity);
        }
        ManagedHeap {
            arena: vec![0; capacity as usize],
            objects: BTreeMap::new(),
            free,
        }
    }

    /// Arena capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.arena.len()
    }

    /// Number of live objects (HOS entries).
    pub fn live_objects(&self) -> usize {
        self.objects.len()
    }

    /// Total bytes in live objects.
    pub fn live_bytes(&self) -> usize {
        self.objects.values().map(|&l| l as usize).sum()
    }

    /// Allocate `len` bytes (zero-initialized); first-fit.
    pub fn alloc_bytes(&mut self, len: usize) -> Result<u32, HeapError> {
        let len32 = u32::try_from(len.max(1))
            .map_err(|_| HeapError::OutOfMemory { requested: len })?;
        let fit = self
            .free
            .iter()
            .find(|(_, &flen)| flen >= len32)
            .map(|(&off, &flen)| (off, flen));
        let (off, flen) =
            fit.ok_or(HeapError::OutOfMemory { requested: len })?;
        self.free.remove(&off);
        if flen > len32 {
            self.free.insert(off + len32, flen - len32);
        }
        self.objects.insert(off, len32);
        self.arena[off as usize..(off + len32) as usize].fill(0);
        Ok(off)
    }

    /// Free the object at `off`, coalescing adjacent free extents.
    pub fn free(&mut self, off: u32) -> Result<(), HeapError> {
        let len = self.objects.remove(&off).ok_or(HeapError::BadAccess {
            off,
            detail: "free of a non-live object",
        })?;
        let mut start = off;
        let mut length = len;
        // Coalesce with the predecessor extent if adjacent.
        if let Some((&poff, &plen)) = self.free.range(..off).next_back() {
            if poff + plen == off {
                self.free.remove(&poff);
                start = poff;
                length += plen;
            }
        }
        // Coalesce with the successor extent if adjacent.
        if let Some(&slen) = self.free.get(&(off + len)) {
            self.free.remove(&(off + len));
            length += slen;
        }
        self.free.insert(start, length);
        Ok(())
    }

    fn object_slice(
        &self,
        off: u32,
        at: usize,
        len: usize,
    ) -> Result<std::ops::Range<usize>, HeapError> {
        let obj_len = *self.objects.get(&off).ok_or(HeapError::BadAccess {
            off,
            detail: "access to a non-live object",
        })? as usize;
        if at + len > obj_len {
            return Err(HeapError::BadAccess {
                off,
                detail: "access overruns the object",
            });
        }
        let base = off as usize + at;
        Ok(base..base + len)
    }

    /// Read raw bytes from within the object at `off`.
    pub fn read_bytes(
        &self,
        off: u32,
        at: usize,
        len: usize,
    ) -> Result<&[u8], HeapError> {
        let range = self.object_slice(off, at, len)?;
        Ok(&self.arena[range])
    }

    /// Write raw bytes into the object at `off`.
    pub fn write_bytes(
        &mut self,
        off: u32,
        at: usize,
        data: &[u8],
    ) -> Result<(), HeapError> {
        let range = self.object_slice(off, at, data.len())?;
        self.arena[range].copy_from_slice(data);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Typed convenience layer
    // ------------------------------------------------------------------

    /// Allocate an array of `n` scalars, returning its typed pointer.
    pub fn alloc_array<T: Scalar>(
        &mut self,
        n: usize,
    ) -> Result<HPtr<T>, HeapError> {
        Ok(HPtr::from_raw(self.alloc_bytes(n * T::WIDTH)?))
    }

    /// Number of `T` elements in the object behind `ptr`.
    pub fn array_len<T: Scalar>(
        &self,
        ptr: HPtr<T>,
    ) -> Result<usize, HeapError> {
        let len =
            *self.objects.get(&ptr.raw()).ok_or(HeapError::BadAccess {
                off: ptr.raw(),
                detail: "length of a non-live object",
            })?;
        Ok(len as usize / T::WIDTH)
    }

    /// Read element `i` of the array behind `ptr`.
    pub fn get<T: Scalar>(
        &self,
        ptr: HPtr<T>,
        i: usize,
    ) -> Result<T, HeapError> {
        Ok(T::fetch(self.read_bytes(
            ptr.raw(),
            i * T::WIDTH,
            T::WIDTH,
        )?))
    }

    /// Write element `i` of the array behind `ptr`.
    pub fn set<T: Scalar>(
        &mut self,
        ptr: HPtr<T>,
        i: usize,
        v: T,
    ) -> Result<(), HeapError> {
        let mut buf = [0u8; 8];
        v.store(&mut buf[..T::WIDTH]);
        self.write_bytes(ptr.raw(), i * T::WIDTH, &buf[..T::WIDTH])
    }

    /// Store a pointer value at byte offset `at` inside the object at
    /// `holder` — pointers are just `u32` data (Section 5.1.4).
    pub fn write_ptr<T: Scalar>(
        &mut self,
        holder: u32,
        at: usize,
        ptr: HPtr<T>,
    ) -> Result<(), HeapError> {
        self.write_bytes(holder, at, &ptr.raw().to_le_bytes())
    }

    /// Load a pointer value from byte offset `at` inside `holder`.
    pub fn read_ptr<T: Scalar>(
        &self,
        holder: u32,
        at: usize,
    ) -> Result<HPtr<T>, HeapError> {
        let bytes = self.read_bytes(holder, at, 4)?;
        Ok(HPtr::from_raw(u32::from_le_bytes(
            bytes.try_into().unwrap(),
        )))
    }
}

impl SaveLoad for ManagedHeap {
    /// Save capacity, HOS, free list, and **live object bytes only** — dead
    /// arena regions are not written, mirroring the paper's use of the HOS
    /// to copy out just the live heap.
    fn save(&self, enc: &mut Encoder) {
        enc.put_usize(self.arena.len());
        enc.put_usize(self.free.len());
        for (&off, &len) in &self.free {
            enc.put_u32(off);
            enc.put_u32(len);
        }
        enc.put_usize(self.objects.len());
        for (&off, &len) in &self.objects {
            enc.put_u32(off);
            enc.put_u32(len);
            enc.put_bytes(&self.arena[off as usize..(off + len) as usize]);
        }
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let capacity = dec.get_usize()?;
        let mut heap = ManagedHeap::new(capacity);
        heap.free.clear();
        let nfree = dec.get_usize()?;
        for _ in 0..nfree {
            let off = dec.get_u32()?;
            let len = dec.get_u32()?;
            heap.free.insert(off, len);
        }
        let nobj = dec.get_usize()?;
        for _ in 0..nobj {
            let off = dec.get_u32()?;
            let len = dec.get_u32()?;
            let bytes = dec.get_bytes()?;
            if bytes.len() != len as usize
                || (off as usize) + bytes.len() > capacity
            {
                return Err(CodecError::new(format!(
                    "heap object at {off} does not fit its record"
                )));
            }
            heap.objects.insert(off, len);
            heap.arena[off as usize..off as usize + bytes.len()]
                .copy_from_slice(bytes);
        }
        Ok(heap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_reuse() {
        let mut h = ManagedHeap::new(64);
        let a = h.alloc_bytes(16).unwrap();
        let b = h.alloc_bytes(16).unwrap();
        assert_ne!(a, b);
        assert_eq!(h.live_objects(), 2);
        h.free(a).unwrap();
        // First-fit reuses the freed extent.
        let c = h.alloc_bytes(8).unwrap();
        assert_eq!(c, a);
        assert_eq!(h.live_bytes(), 16 + 8);
    }

    #[test]
    fn oom_is_reported() {
        let mut h = ManagedHeap::new(16);
        h.alloc_bytes(16).unwrap();
        assert_eq!(
            h.alloc_bytes(1).unwrap_err(),
            HeapError::OutOfMemory { requested: 1 }
        );
    }

    #[test]
    fn free_coalesces_neighbors() {
        let mut h = ManagedHeap::new(48);
        let a = h.alloc_bytes(16).unwrap();
        let b = h.alloc_bytes(16).unwrap();
        let c = h.alloc_bytes(16).unwrap();
        h.free(a).unwrap();
        h.free(c).unwrap();
        h.free(b).unwrap(); // middle free must merge all three
        assert_eq!(h.free.len(), 1);
        // Whole arena available again.
        let big = h.alloc_bytes(48).unwrap();
        assert_eq!(big, 0);
    }

    #[test]
    fn double_free_is_an_error() {
        let mut h = ManagedHeap::new(16);
        let a = h.alloc_bytes(8).unwrap();
        h.free(a).unwrap();
        assert!(h.free(a).is_err());
    }

    #[test]
    fn typed_array_access_and_bounds() {
        let mut h = ManagedHeap::new(256);
        let xs = h.alloc_array::<f64>(4).unwrap();
        assert_eq!(h.array_len(xs).unwrap(), 4);
        for i in 0..4 {
            h.set(xs, i, i as f64 * 1.5).unwrap();
        }
        assert_eq!(h.get(xs, 2).unwrap(), 3.0);
        assert!(h.get(xs, 4).is_err(), "out of bounds");
        assert!(h.set(xs, 4, 0.0).is_err());
    }

    #[test]
    fn fresh_allocation_is_zeroed_even_after_reuse() {
        let mut h = ManagedHeap::new(32);
        let a = h.alloc_array::<u64>(2).unwrap();
        h.set(a, 0, u64::MAX).unwrap();
        h.free(a.raw()).unwrap();
        let b = h.alloc_array::<u64>(2).unwrap();
        assert_eq!(b, a, "extent reused");
        assert_eq!(h.get(b, 0).unwrap(), 0, "reused memory is zeroed");
    }

    #[test]
    fn save_restore_preserves_objects_and_free_structure() {
        let mut h = ManagedHeap::new(128);
        let a = h.alloc_array::<u64>(3).unwrap();
        let b = h.alloc_array::<f64>(2).unwrap();
        let dead = h.alloc_bytes(16).unwrap();
        h.free(dead).unwrap();
        h.set(a, 0, 11).unwrap();
        h.set(a, 2, 33).unwrap();
        h.set(b, 1, 2.5).unwrap();

        let mut enc = Encoder::new();
        h.save(&mut enc);
        let bytes = enc.into_bytes();
        let restored = ManagedHeap::load(&mut Decoder::new(&bytes)).unwrap();

        assert_eq!(restored, h);
        assert_eq!(restored.get(a, 2).unwrap(), 33);
        assert_eq!(restored.get(b, 1).unwrap(), 2.5);
    }

    #[test]
    fn pointers_survive_checkpoints_as_plain_data() {
        // Build a 3-node linked list in the heap: node = [value u64, next u32].
        let mut h = ManagedHeap::new(256);
        let node = |h: &mut ManagedHeap, v: u64, next: u32| {
            let off = h.alloc_bytes(12).unwrap();
            h.write_bytes(off, 0, &v.to_le_bytes()).unwrap();
            h.write_bytes(off, 8, &next.to_le_bytes()).unwrap();
            off
        };
        let n3 = node(&mut h, 30, u32::MAX);
        let n2 = node(&mut h, 20, n3);
        let n1 = node(&mut h, 10, n2);

        // Checkpoint and restore.
        let mut enc = Encoder::new();
        h.save(&mut enc);
        let bytes = enc.into_bytes();
        let r = ManagedHeap::load(&mut Decoder::new(&bytes)).unwrap();

        // Walk the restored list through stored pointers.
        let mut cur = n1;
        let mut values = Vec::new();
        while cur != u32::MAX {
            let v = u64::from_le_bytes(
                r.read_bytes(cur, 0, 8).unwrap().try_into().unwrap(),
            );
            values.push(v);
            cur = u32::from_le_bytes(
                r.read_bytes(cur, 8, 4).unwrap().try_into().unwrap(),
            );
        }
        assert_eq!(values, vec![10, 20, 30]);
    }

    #[test]
    fn corrupt_heap_blob_is_an_error() {
        let mut h = ManagedHeap::new(64);
        h.alloc_bytes(8).unwrap();
        let mut enc = Encoder::new();
        h.save(&mut enc);
        let bytes = enc.into_bytes();
        assert!(ManagedHeap::load(&mut Decoder::new(
            &bytes[..bytes.len() - 3]
        ))
        .is_err());
    }
}
