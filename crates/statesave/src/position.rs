//! The Position Stack (PS) of Section 5.1.1 / Figure 6.
//!
//! During normal execution the instrumented program pushes a label before
//! every call that can lead to a `potentialCheckpoint`, and pops it on
//! return. The stack therefore always names the active instrumented call
//! chain. At checkpoint time the PS is saved; on restart each function
//! consults the PS (via a cursor, the paper's `PS.item(i++)`) to learn
//! which label to jump to, rebuilding the activation stack.

use ckptstore::codec::{CodecError, Decoder, Encoder, SaveLoad};

/// A label inside one instrumented function (Figure 6's `label_1`, ...).
pub type Label = u32;

/// The Position Stack with its restart cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PositionStack {
    items: Vec<Label>,
    /// Restart cursor: index of the next label to be consumed by a
    /// re-entering function (`i` in Figure 6). Meaningful only while
    /// `restarting` is true.
    cursor: usize,
    restarting: bool,
}

impl PositionStack {
    /// An empty PS (program start).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record entry into a labelled region (Figure 6's `PS.push(n)`).
    pub fn push(&mut self, label: Label) {
        self.items.push(label);
    }

    /// Record exit from the region (Figure 6's `PS.pop()`).
    ///
    /// # Panics
    /// If the PS is empty — an instrumentation bug, matching the paper's
    /// invariant that pushes and pops are balanced.
    pub fn pop(&mut self) -> Label {
        self.items.pop().expect("PositionStack::pop on empty stack")
    }

    /// The label most recently pushed, if any.
    pub fn top(&self) -> Option<Label> {
        self.items.last().copied()
    }

    /// Current depth of the recorded call chain.
    pub fn depth(&self) -> usize {
        self.items.len()
    }

    /// True if a restart replay is in progress.
    pub fn is_restarting(&self) -> bool {
        self.restarting
    }

    /// Begin a restart replay: reset the cursor to the outermost frame.
    pub fn begin_restart(&mut self) {
        self.cursor = 0;
        self.restarting = self.cursor < self.items.len();
    }

    /// Consume and return the next recorded label (the paper's
    /// `goto PS.item(i++)` read). Returns `None` once the recorded chain is
    /// exhausted, at which point normal execution resumes.
    pub fn next_restart_label(&mut self) -> Option<Label> {
        if !self.restarting {
            return None;
        }
        let label = self.items.get(self.cursor).copied();
        if label.is_some() {
            self.cursor += 1;
            if self.cursor >= self.items.len() {
                // The innermost recorded frame is being re-entered; after
                // this, execution is live again.
                self.restarting = false;
            }
        } else {
            self.restarting = false;
        }
        label
    }

    /// Peek at the label the cursor would consume next, without advancing.
    pub fn peek_restart_label(&self) -> Option<Label> {
        if !self.restarting {
            return None;
        }
        self.items.get(self.cursor).copied()
    }
}

impl SaveLoad for PositionStack {
    fn save(&self, enc: &mut Encoder) {
        enc.put_usize(self.items.len());
        for &label in &self.items {
            enc.put_u32(label);
        }
        // The cursor and restart flag are transient; a freshly loaded PS
        // always starts a new replay.
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let n = dec.get_usize()?;
        let mut items = Vec::with_capacity(n.min(dec.remaining()));
        for _ in 0..n {
            items.push(dec.get_u32()?);
        }
        Ok(PositionStack {
            items,
            cursor: 0,
            restarting: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_tracks_call_chain() {
        let mut ps = PositionStack::new();
        ps.push(1);
        ps.push(4);
        assert_eq!(ps.depth(), 2);
        assert_eq!(ps.top(), Some(4));
        assert_eq!(ps.pop(), 4);
        assert_eq!(ps.pop(), 1);
        assert_eq!(ps.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "empty stack")]
    fn unbalanced_pop_panics() {
        PositionStack::new().pop();
    }

    #[test]
    fn restart_replays_labels_outermost_first() {
        // Simulate: main pushes label 2 (call to f), f pushes label 5
        // (potentialCheckpoint site), checkpoint taken.
        let mut ps = PositionStack::new();
        ps.push(2);
        ps.push(5);

        let mut enc = Encoder::new();
        ps.save(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored =
            PositionStack::load(&mut Decoder::new(&bytes)).unwrap();

        restored.begin_restart();
        assert!(restored.is_restarting());
        assert_eq!(restored.peek_restart_label(), Some(2));
        assert_eq!(restored.next_restart_label(), Some(2));
        // Innermost label: replay ends after consuming it.
        assert_eq!(restored.next_restart_label(), Some(5));
        assert!(!restored.is_restarting());
        assert_eq!(restored.next_restart_label(), None);
        // The stack itself still holds the chain (functions re-push as they
        // re-enter in the paper's scheme; here the chain is retained).
        assert_eq!(restored.depth(), 2);
    }

    #[test]
    fn empty_ps_restart_is_a_noop() {
        let mut ps = PositionStack::new();
        ps.begin_restart();
        assert!(!ps.is_restarting());
        assert_eq!(ps.next_restart_label(), None);
    }

    #[test]
    fn save_load_round_trip() {
        let mut ps = PositionStack::new();
        for l in [3, 1, 4, 1, 5] {
            ps.push(l);
        }
        let mut enc = Encoder::new();
        ps.save(&mut enc);
        let bytes = enc.into_bytes();
        let loaded = PositionStack::load(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(loaded.depth(), 5);
        assert_eq!(loaded.top(), Some(5));
    }
}
