//! Block-structured re-entry executor — the runtime counterpart of the
//! precompiler's label/goto instrumentation (Section 5.1.1, Figure 6).
//!
//! A *checkpointable program* is a set of functions, each a sequence of
//! steps: straight-line blocks, labelled calls to other checkpointable
//! functions, labelled loops and branches, and labelled
//! `potentialCheckpoint` sites. During normal execution the
//! executor maintains the Position Stack exactly as the generated code in
//! Figure 6 does: push the label before descending, pop after returning.
//!
//! On restart, the executor re-enters the entry function and, instead of
//! running from the top, consumes the saved PS cursor: it jumps to the
//! recorded label in each function down the saved call chain (adopting the
//! saved VDS frame for that activation), until the innermost
//! `potentialCheckpoint` site is reached — after which execution continues
//! live. This is `if (restart) goto PS.item(i++)` without `goto`.

use ckptstore::codec::{Decoder, Encoder, SaveLoad};
use std::collections::BTreeMap;

use crate::frame::{Frame, VarId};
use crate::heap::{ManagedHeap, Scalar};
use crate::position::{Label, PositionStack};

/// Identifier of a checkpointable function within a program.
pub type FuncId = u32;

/// Errors from building or executing a checkpointable program.
#[derive(Debug)]
pub enum ExecError {
    /// A step referenced a function id that was never defined.
    UnknownFunc(FuncId),
    /// A restart label was not found in the function being re-entered —
    /// the snapshot does not match the program.
    UnknownLabel {
        /// Function being re-entered.
        func: FuncId,
        /// The recorded label that was not found.
        label: Label,
    },
    /// The snapshot had fewer frames than the recorded call chain needs.
    MissingFrame {
        /// The call depth that had no saved frame.
        depth: usize,
    },
    /// The snapshot bytes failed to decode.
    Corrupt(String),
    /// Two steps in one function carry the same label.
    DuplicateLabel {
        /// Function whose definition is invalid.
        func: FuncId,
        /// The label used twice.
        label: Label,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownFunc(id) => write!(f, "unknown function {id}"),
            ExecError::UnknownLabel { func, label } => {
                write!(f, "label {label} not found in function {func}")
            }
            ExecError::MissingFrame { depth } => {
                write!(f, "snapshot has no frame for call depth {depth}")
            }
            ExecError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
            ExecError::DuplicateLabel { func, label } => {
                write!(f, "duplicate label {label} in function {func}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Outcome of running a program to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptOutcome {
    /// The entry function returned normally.
    Finished,
}

type BlockFn = Box<dyn Fn(&mut CkptCtx)>;
type CondFn = Box<dyn Fn(&mut CkptCtx) -> bool>;

enum Step {
    /// Straight-line instrumented code; never a resume target (its effects
    /// are part of the restored state).
    Block(BlockFn),
    /// `PS.push(label); f(); PS.pop();` — Figure 6's call instrumentation.
    Call { label: Label, func: FuncId },
    /// A while-loop whose body is a checkpointable function; each iteration
    /// is entered under `label`.
    Loop {
        label: Label,
        cond: CondFn,
        body: FuncId,
    },
    /// A two-way branch whose arms are checkpointable functions. Each arm
    /// carries its own label (the precompiler labels each call site), so a
    /// restart knows which arm was active.
    IfElse {
        /// Label of the then-arm call site.
        then_label: Label,
        /// Function run when the condition holds.
        then_f: FuncId,
        /// Label of the else-arm call site.
        else_label: Label,
        /// Function run when the condition fails (`None` = empty arm).
        else_f: Option<FuncId>,
        /// The branch condition.
        cond: CondFn,
    },
    /// `PS.push(label); potentialCheckpoint(); PS.pop();` — a site where a
    /// requested checkpoint is taken.
    PotentialCheckpoint { label: Label },
}

impl Step {
    /// Every label this step can leave on the Position Stack.
    fn labels(&self) -> Vec<Label> {
        match self {
            Step::Block(_) => Vec::new(),
            Step::IfElse {
                then_label,
                else_label,
                ..
            } => {
                vec![*then_label, *else_label]
            }
            Step::Call { label, .. }
            | Step::Loop { label, .. }
            | Step::PotentialCheckpoint { label } => vec![*label],
        }
    }
}

struct Func {
    /// Declares the frame's variables; run on fresh entry only (on restart
    /// the frame is adopted from the snapshot's VDS instead).
    init: Option<BlockFn>,
    steps: Vec<Step>,
}

/// Mutable execution context: the managed heap, the PS, the VDS (one frame
/// per active checkpointable function), and checkpoint plumbing.
pub struct CkptCtx {
    /// The application's managed heap (Section 5.1.3).
    pub heap: ManagedHeap,
    ps: PositionStack,
    vds: Vec<Frame>,
    /// Frames recovered from a snapshot, adopted by depth during restart.
    restored: Vec<Frame>,
    checkpoint_requested: bool,
    /// Snapshots taken during this run, in order.
    snapshots: Vec<Vec<u8>>,
}

impl CkptCtx {
    /// Fresh context with a heap of the given capacity.
    pub fn new(heap_capacity: usize) -> Self {
        CkptCtx {
            heap: ManagedHeap::new(heap_capacity),
            ps: PositionStack::new(),
            vds: Vec::new(),
            restored: Vec::new(),
            checkpoint_requested: false,
            snapshots: Vec::new(),
        }
    }

    /// Ask for a checkpoint at the next `potentialCheckpoint` site — the
    /// executor-level analogue of the protocol's `pleaseCheckpoint`.
    pub fn request_checkpoint(&mut self) {
        self.checkpoint_requested = true;
    }

    /// Snapshots taken so far in this run.
    pub fn snapshots(&self) -> &[Vec<u8>] {
        &self.snapshots
    }

    /// The current function's frame.
    pub fn frame(&self) -> &Frame {
        self.vds.last().expect("no active frame")
    }

    /// The current function's frame, mutably.
    pub fn frame_mut(&mut self) -> &mut Frame {
        self.vds.last_mut().expect("no active frame")
    }

    /// Declare a variable in the current frame (init blocks use this).
    pub fn declare<T: Scalar>(&mut self, name: &str, init: T) -> VarId {
        self.frame_mut().declare(name, init)
    }

    /// Read a variable of the current frame.
    pub fn get<T: Scalar>(&self, id: VarId) -> T {
        self.frame().get(id)
    }

    /// Write a variable of the current frame.
    pub fn set<T: Scalar>(&mut self, id: VarId, v: T) {
        self.frame_mut().set(id, v)
    }

    /// Current checkpointable-call depth.
    pub fn depth(&self) -> usize {
        self.vds.len()
    }

    fn take_snapshot(&mut self) {
        let mut enc = Encoder::new();
        self.ps.save(&mut enc);
        enc.put_usize(self.vds.len());
        for frame in &self.vds {
            frame.save(&mut enc);
        }
        self.heap.save(&mut enc);
        self.snapshots.push(enc.into_bytes());
        self.checkpoint_requested = false;
    }

    fn load_snapshot(&mut self, bytes: &[u8]) -> Result<(), ExecError> {
        let mut dec = Decoder::new(bytes);
        let mut parse = || -> Result<(), ckptstore::codec::CodecError> {
            self.ps = PositionStack::load(&mut dec)?;
            let n = dec.get_usize()?;
            self.restored = Vec::with_capacity(n.min(dec.remaining()));
            for _ in 0..n {
                self.restored.push(Frame::load(&mut dec)?);
            }
            self.heap = ManagedHeap::load(&mut dec)?;
            Ok(())
        };
        parse().map_err(|e| ExecError::Corrupt(e.to_string()))?;
        if !dec.is_exhausted() {
            return Err(ExecError::Corrupt(
                "trailing bytes after snapshot".into(),
            ));
        }
        self.vds.clear();
        self.ps.begin_restart();
        Ok(())
    }
}

/// A set of checkpointable functions forming a program.
#[derive(Default)]
pub struct CkptProgram {
    funcs: BTreeMap<FuncId, Func>,
}

/// Builder for one checkpointable function.
pub struct FuncBuilder<'p> {
    program: &'p mut CkptProgram,
    id: FuncId,
    init: Option<BlockFn>,
    steps: Vec<Step>,
}

impl<'p> FuncBuilder<'p> {
    /// Set the variable-declaration prologue (runs on fresh entry only).
    pub fn init(mut self, f: impl Fn(&mut CkptCtx) + 'static) -> Self {
        self.init = Some(Box::new(f));
        self
    }

    /// Append a straight-line block.
    pub fn block(mut self, f: impl Fn(&mut CkptCtx) + 'static) -> Self {
        self.steps.push(Step::Block(Box::new(f)));
        self
    }

    /// Append a labelled call to another checkpointable function.
    pub fn call(mut self, label: Label, func: FuncId) -> Self {
        self.steps.push(Step::Call { label, func });
        self
    }

    /// Append a labelled loop whose body is a checkpointable function.
    pub fn while_loop(
        mut self,
        label: Label,
        cond: impl Fn(&mut CkptCtx) -> bool + 'static,
        body: FuncId,
    ) -> Self {
        self.steps.push(Step::Loop {
            label,
            cond: Box::new(cond),
            body,
        });
        self
    }

    /// Append a labelled `potentialCheckpoint` site.
    pub fn potential_checkpoint(mut self, label: Label) -> Self {
        self.steps.push(Step::PotentialCheckpoint { label });
        self
    }

    /// Append a two-way branch; each arm is a checkpointable function with
    /// its own call-site label.
    pub fn if_else(
        mut self,
        cond: impl Fn(&mut CkptCtx) -> bool + 'static,
        then_label: Label,
        then_f: FuncId,
        else_label: Label,
        else_f: Option<FuncId>,
    ) -> Self {
        self.steps.push(Step::IfElse {
            then_label,
            then_f,
            else_label,
            else_f,
            cond: Box::new(cond),
        });
        self
    }

    /// Finish the function, validating label uniqueness.
    pub fn build(self) -> Result<(), ExecError> {
        let mut seen = std::collections::BTreeSet::new();
        for step in &self.steps {
            for l in step.labels() {
                if !seen.insert(l) {
                    return Err(ExecError::DuplicateLabel {
                        func: self.id,
                        label: l,
                    });
                }
            }
        }
        self.program.funcs.insert(
            self.id,
            Func {
                init: self.init,
                steps: self.steps,
            },
        );
        Ok(())
    }
}

impl CkptProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin defining function `id` (replacing any previous definition).
    pub fn define(&mut self, id: FuncId) -> FuncBuilder<'_> {
        FuncBuilder {
            program: self,
            id,
            init: None,
            steps: Vec::new(),
        }
    }

    /// Run the program from `entry` on a fresh context.
    pub fn run(
        &self,
        entry: FuncId,
        ctx: &mut CkptCtx,
    ) -> Result<CkptOutcome, ExecError> {
        self.exec(entry, ctx, false)?;
        Ok(CkptOutcome::Finished)
    }

    /// Restore `snapshot` into `ctx` and resume execution from the recorded
    /// position, running to completion.
    pub fn restart(
        &self,
        entry: FuncId,
        ctx: &mut CkptCtx,
        snapshot: &[u8],
    ) -> Result<CkptOutcome, ExecError> {
        ctx.load_snapshot(snapshot)?;
        let resuming = ctx.ps.is_restarting();
        self.exec(entry, ctx, resuming)?;
        Ok(CkptOutcome::Finished)
    }

    fn exec(
        &self,
        id: FuncId,
        ctx: &mut CkptCtx,
        resume: bool,
    ) -> Result<(), ExecError> {
        let func = self.funcs.get(&id).ok_or(ExecError::UnknownFunc(id))?;

        // Frame entry: fresh declaration, or adoption of the saved frame
        // for this activation (the VDS restore of Section 5.1.2).
        let (start_index, resume_label) = if resume {
            let depth = ctx.vds.len();
            let frame = ctx
                .restored
                .get(depth)
                .cloned()
                .ok_or(ExecError::MissingFrame { depth })?;
            ctx.vds.push(frame);
            let label = ctx
                .ps
                .next_restart_label()
                .ok_or(ExecError::MissingFrame { depth })?;
            let idx = func
                .steps
                .iter()
                .position(|s| s.labels().contains(&label))
                .ok_or(ExecError::UnknownLabel { func: id, label })?;
            (idx, Some(label))
        } else {
            ctx.vds.push(Frame::new());
            if let Some(init) = &func.init {
                init(ctx);
            }
            (0, None)
        };

        let result = self.exec_steps(id, func, ctx, start_index, resume_label);
        ctx.vds.pop();
        result
    }

    fn exec_steps(
        &self,
        id: FuncId,
        func: &Func,
        ctx: &mut CkptCtx,
        start_index: usize,
        resume_label: Option<Label>,
    ) -> Result<(), ExecError> {
        let _ = id;
        for (i, step) in func.steps.iter().enumerate().skip(start_index) {
            let resuming_here = resume_label.is_some() && i == start_index;
            match step {
                Step::Block(f) => f(ctx),
                Step::Call {
                    label,
                    func: callee,
                } => {
                    if resuming_here {
                        // The label is already on the retained PS from the
                        // snapshot; descend in resume mode, then pop it as
                        // the normal return path would.
                        self.exec(*callee, ctx, true)?;
                        ctx.ps.pop();
                    } else {
                        ctx.ps.push(*label);
                        self.exec(*callee, ctx, false)?;
                        ctx.ps.pop();
                    }
                }
                Step::Loop { label, cond, body } => {
                    if resuming_here {
                        // Mid-loop restart: finish the interrupted
                        // iteration first (its frame/PS entries are saved),
                        // then fall into the normal loop.
                        self.exec(*body, ctx, true)?;
                        ctx.ps.pop();
                    }
                    while cond(ctx) {
                        ctx.ps.push(*label);
                        self.exec(*body, ctx, false)?;
                        ctx.ps.pop();
                    }
                }
                Step::IfElse {
                    then_label,
                    then_f,
                    else_label,
                    else_f,
                    cond,
                } => {
                    if resuming_here {
                        // The recorded label names the arm that was active.
                        let label = resume_label.expect("resuming");
                        let arm = if label == *then_label {
                            Some(*then_f)
                        } else if label == *else_label {
                            *else_f
                        } else {
                            unreachable!("label matched this step")
                        };
                        if let Some(f) = arm {
                            self.exec(f, ctx, true)?;
                            ctx.ps.pop();
                        }
                        continue;
                    }
                    if cond(ctx) {
                        ctx.ps.push(*then_label);
                        self.exec(*then_f, ctx, false)?;
                        ctx.ps.pop();
                    } else if let Some(f) = *else_f {
                        ctx.ps.push(*else_label);
                        self.exec(f, ctx, false)?;
                        ctx.ps.pop();
                    }
                }
                Step::PotentialCheckpoint { label } => {
                    if resuming_here {
                        // This is the site where the snapshot was taken;
                        // recovery resumes immediately after it (Figure 6's
                        // label placement *after* potentialCheckpoint). The
                        // snapshot was taken with this label pushed, so the
                        // retained entry is popped here, exactly where the
                        // original execution's `PS.pop()` ran.
                        ctx.ps.pop();
                        continue;
                    }
                    ctx.ps.push(*label);
                    if ctx.checkpoint_requested {
                        ctx.take_snapshot();
                    }
                    ctx.ps.pop();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A program computing sum of squares 1..=N with a checkpoint site per
    /// iteration; state (accumulator, i) lives in the heap.
    fn sum_program() -> CkptProgram {
        let mut p = CkptProgram::new();
        // Function 1: loop body — one iteration of work + checkpoint site.
        p.define(1)
            .block(|ctx| {
                // acc (heap cell 0) += i^2; i (heap cell 1) += 1
                let acc_ptr = crate::heap::HPtr::<u64>::from_raw(0);
                let i = ctx.heap.get(acc_ptr, 1).unwrap();
                let acc = ctx.heap.get(acc_ptr, 0).unwrap();
                ctx.heap.set(acc_ptr, 0, acc + i * i).unwrap();
                ctx.heap.set(acc_ptr, 1, i + 1).unwrap();
            })
            .potential_checkpoint(7)
            .build()
            .unwrap();
        // Function 0: main — allocate state, loop while i <= N.
        p.define(0)
            .init(|_ctx| {})
            .block(|ctx| {
                let cells = ctx.heap.alloc_array::<u64>(3).unwrap();
                assert_eq!(cells.raw(), 0);
                ctx.heap.set(cells, 0, 0).unwrap(); // acc
                ctx.heap.set(cells, 1, 1).unwrap(); // i
                ctx.heap.set(cells, 2, 10).unwrap(); // N
            })
            .while_loop(
                3,
                |ctx| {
                    let c = crate::heap::HPtr::<u64>::from_raw(0);
                    ctx.heap.get(c, 1).unwrap() <= ctx.heap.get(c, 2).unwrap()
                },
                1,
            )
            .build()
            .unwrap();
        p
    }

    fn acc_of(ctx: &CkptCtx) -> u64 {
        ctx.heap
            .get(crate::heap::HPtr::<u64>::from_raw(0), 0)
            .unwrap()
    }

    #[test]
    fn uninterrupted_run_computes_sum_of_squares() {
        let p = sum_program();
        let mut ctx = CkptCtx::new(256);
        p.run(0, &mut ctx).unwrap();
        assert_eq!(acc_of(&ctx), (1..=10u64).map(|i| i * i).sum());
        assert!(ctx.snapshots().is_empty());
    }

    #[test]
    fn checkpoint_and_restart_mid_loop_reach_the_same_result() {
        let p = sum_program();

        // Run with a checkpoint requested before iteration 4's site.
        let mut ctx = CkptCtx::new(256);
        // Request after 3 iterations by planting the request eagerly: the
        // first potentialCheckpoint will take it (iteration 1).
        ctx.request_checkpoint();
        p.run(0, &mut ctx).unwrap();
        assert_eq!(ctx.snapshots().len(), 1);
        let snap = ctx.snapshots()[0].clone();
        let full = acc_of(&ctx);

        // "Crash" and restart from the snapshot; iterations 2..=10 replay.
        let mut ctx2 = CkptCtx::new(1); // heap is replaced by the snapshot's
        p.restart(0, &mut ctx2, &snap).unwrap();
        assert_eq!(acc_of(&ctx2), full);
    }

    #[test]
    fn restart_from_each_checkpoint_of_a_multi_checkpoint_run() {
        let p = sum_program();
        // Take a checkpoint at every iteration by re-requesting in a
        // wrapper... simplest: request between runs via snapshots loop.
        let mut ctx = CkptCtx::new(256);
        ctx.request_checkpoint();
        p.run(0, &mut ctx).unwrap();
        let after_first = ctx.snapshots()[0].clone();

        // Restart, request again immediately: the resumed run checkpoints
        // at its first live site (iteration 2's site).
        let mut ctx2 = CkptCtx::new(1);
        ctx2.request_checkpoint();
        p.restart(0, &mut ctx2, &after_first).unwrap();
        assert_eq!(ctx2.snapshots().len(), 1);
        let after_second = ctx2.snapshots()[0].clone();
        let expect = acc_of(&ctx2);

        let mut ctx3 = CkptCtx::new(1);
        p.restart(0, &mut ctx3, &after_second).unwrap();
        assert_eq!(acc_of(&ctx3), expect);
    }

    #[test]
    fn nested_calls_resume_down_the_recorded_chain() {
        // main -> middle -> leaf(potential_checkpoint), with frame vars at
        // each level proving VDS adoption.
        let mut p = CkptProgram::new();
        p.define(2) // leaf
            .init(|ctx| {
                ctx.declare::<u64>("leaf_v", 0);
            })
            .block(|ctx| {
                let id = ctx.frame().id_of("leaf_v").unwrap();
                ctx.set::<u64>(id, 222);
            })
            .potential_checkpoint(9)
            .block(|ctx| {
                // After resume this must still see 222 (adopted frame).
                let id = ctx.frame().id_of("leaf_v").unwrap();
                let v = ctx.get::<u64>(id);
                let out = crate::heap::HPtr::<u64>::from_raw(0);
                ctx.heap.set(out, 1, v).unwrap();
            })
            .build()
            .unwrap();
        p.define(1) // middle
            .init(|ctx| {
                ctx.declare::<u64>("mid_v", 0);
            })
            .block(|ctx| {
                let id = ctx.frame().id_of("mid_v").unwrap();
                ctx.set::<u64>(id, 111);
            })
            .call(4, 2)
            .block(|ctx| {
                let id = ctx.frame().id_of("mid_v").unwrap();
                let v = ctx.get::<u64>(id);
                let out = crate::heap::HPtr::<u64>::from_raw(0);
                ctx.heap.set(out, 0, v).unwrap();
            })
            .build()
            .unwrap();
        p.define(0) // main
            .block(|ctx| {
                let out = ctx.heap.alloc_array::<u64>(2).unwrap();
                assert_eq!(out.raw(), 0);
            })
            .call(1, 1)
            .build()
            .unwrap();

        let mut ctx = CkptCtx::new(128);
        ctx.request_checkpoint();
        p.run(0, &mut ctx).unwrap();
        let snap = ctx.snapshots()[0].clone();

        let mut ctx2 = CkptCtx::new(1);
        p.restart(0, &mut ctx2, &snap).unwrap();
        let out = crate::heap::HPtr::<u64>::from_raw(0);
        // Both frames' values flowed into the heap after resume.
        assert_eq!(ctx2.heap.get(out, 0).unwrap(), 111);
        assert_eq!(ctx2.heap.get(out, 1).unwrap(), 222);
    }

    #[test]
    fn duplicate_labels_are_rejected() {
        let mut p = CkptProgram::new();
        let err = p
            .define(0)
            .potential_checkpoint(5)
            .potential_checkpoint(5)
            .build()
            .unwrap_err();
        assert!(matches!(err, ExecError::DuplicateLabel { label: 5, .. }));
    }

    #[test]
    fn unknown_function_is_an_error() {
        let mut p = CkptProgram::new();
        p.define(0).call(1, 99).build().unwrap();
        let mut ctx = CkptCtx::new(16);
        assert!(matches!(
            p.run(0, &mut ctx).unwrap_err(),
            ExecError::UnknownFunc(99)
        ));
    }

    #[test]
    fn corrupt_snapshot_is_an_error() {
        let p = sum_program();
        let mut ctx = CkptCtx::new(16);
        assert!(matches!(
            p.restart(0, &mut ctx, &[1, 2, 3]).unwrap_err(),
            ExecError::Corrupt(_)
        ));
    }

    #[test]
    fn snapshot_from_wrong_program_is_detected() {
        let p = sum_program();
        let mut ctx = CkptCtx::new(256);
        ctx.request_checkpoint();
        p.run(0, &mut ctx).unwrap();
        let snap = ctx.snapshots()[0].clone();

        // A program whose labels differ cannot resume this snapshot.
        let mut other = CkptProgram::new();
        other.define(1).potential_checkpoint(8).build().unwrap();
        other.define(0).while_loop(2, |_| false, 1).build().unwrap();
        let mut ctx2 = CkptCtx::new(1);
        assert!(matches!(
            other.restart(0, &mut ctx2, &snap).unwrap_err(),
            ExecError::UnknownLabel { .. }
        ));
    }
}

#[cfg(test)]
mod ifelse_tests {
    use super::*;
    use crate::heap::HPtr;

    /// Program: for i in 1..=6 { if i odd { acc += i (ckpt site) } else
    /// { acc += 100*i (ckpt site) } } — with both arms containing a
    /// potentialCheckpoint so restarts land inside either branch.
    fn branchy_program() -> CkptProgram {
        let mut p = CkptProgram::new();
        let cells = || HPtr::<u64>::from_raw(0);
        // Function 2: odd arm.
        p.define(2)
            .block(move |ctx| {
                let i = ctx.heap.get(cells(), 1).unwrap();
                let acc = ctx.heap.get(cells(), 0).unwrap();
                ctx.heap.set(cells(), 0, acc + i).unwrap();
            })
            .potential_checkpoint(21)
            .build()
            .unwrap();
        // Function 3: even arm.
        p.define(3)
            .block(move |ctx| {
                let i = ctx.heap.get(cells(), 1).unwrap();
                let acc = ctx.heap.get(cells(), 0).unwrap();
                ctx.heap.set(cells(), 0, acc + 100 * i).unwrap();
            })
            .potential_checkpoint(31)
            .build()
            .unwrap();
        // Function 1: loop body — branch on parity, then i += 1.
        p.define(1)
            .if_else(
                move |ctx| ctx.heap.get(cells(), 1).unwrap() % 2 == 1,
                11,
                2,
                12,
                Some(3),
            )
            .block(move |ctx| {
                let i = ctx.heap.get(cells(), 1).unwrap();
                ctx.heap.set(cells(), 1, i + 1).unwrap();
            })
            .build()
            .unwrap();
        // Function 0: main.
        p.define(0)
            .block(move |ctx| {
                let c = ctx.heap.alloc_array::<u64>(2).unwrap();
                assert_eq!(c.raw(), 0);
                ctx.heap.set(c, 0, 0).unwrap(); // acc
                ctx.heap.set(c, 1, 1).unwrap(); // i
            })
            .while_loop(
                1,
                move |ctx| ctx.heap.get(cells(), 1).unwrap() <= 6,
                1,
            )
            .build()
            .unwrap();
        p
    }

    fn expected() -> u64 {
        (1..=6u64)
            .map(|i| if i % 2 == 1 { i } else { 100 * i })
            .sum()
    }

    #[test]
    fn branches_execute_correctly() {
        let p = branchy_program();
        let mut ctx = CkptCtx::new(128);
        p.run(0, &mut ctx).unwrap();
        assert_eq!(
            ctx.heap.get(HPtr::<u64>::from_raw(0), 0).unwrap(),
            expected()
        );
    }

    #[test]
    fn restart_inside_either_arm_resumes_correctly() {
        let p = branchy_program();
        // First checkpoint fires in the odd arm (i = 1, site 21).
        let mut ctx = CkptCtx::new(128);
        ctx.request_checkpoint();
        p.run(0, &mut ctx).unwrap();
        let snap_odd = ctx.snapshots()[0].clone();

        let mut resumed = CkptCtx::new(1);
        p.restart(0, &mut resumed, &snap_odd).unwrap();
        assert_eq!(
            resumed.heap.get(HPtr::<u64>::from_raw(0), 0).unwrap(),
            expected()
        );

        // Resume from a snapshot taken inside the even arm: request a
        // checkpoint on the resumed run, whose first live site is in the
        // even arm (i = 2, site 31).
        let mut ctx2 = CkptCtx::new(1);
        ctx2.request_checkpoint();
        p.restart(0, &mut ctx2, &snap_odd).unwrap();
        let snap_even = ctx2.snapshots()[0].clone();
        let mut resumed2 = CkptCtx::new(1);
        p.restart(0, &mut resumed2, &snap_even).unwrap();
        assert_eq!(
            resumed2.heap.get(HPtr::<u64>::from_raw(0), 0).unwrap(),
            expected()
        );
    }

    #[test]
    fn empty_else_arm_is_skipped() {
        let mut p = CkptProgram::new();
        let cells = || HPtr::<u64>::from_raw(0);
        p.define(2)
            .block(move |ctx| {
                let acc = ctx.heap.get(cells(), 0).unwrap();
                ctx.heap.set(cells(), 0, acc + 1).unwrap();
            })
            .build()
            .unwrap();
        p.define(0)
            .block(move |ctx| {
                let c = ctx.heap.alloc_array::<u64>(1).unwrap();
                ctx.heap.set(c, 0, 0).unwrap();
            })
            .if_else(|_| false, 5, 2, 6, None)
            .if_else(|_| true, 7, 2, 8, None)
            .build()
            .unwrap();
        let mut ctx = CkptCtx::new(64);
        p.run(0, &mut ctx).unwrap();
        assert_eq!(ctx.heap.get(HPtr::<u64>::from_raw(0), 0).unwrap(), 1);
    }

    #[test]
    fn duplicate_arm_labels_rejected() {
        let mut p = CkptProgram::new();
        let err = p
            .define(0)
            .if_else(|_| true, 5, 1, 5, Some(2))
            .build()
            .unwrap_err();
        assert!(matches!(err, ExecError::DuplicateLabel { label: 5, .. }));
    }
}
