//! Whole-state snapshots for applications that keep their state in ordinary
//! Rust structs.
//!
//! The evaluation applications (dense CG, Laplace, Neurosys) hold their
//! state in numeric arrays plus an iteration counter. Rather than routing
//! every array through the managed heap, they implement [`SaveState`]
//! (an alias of the checkpoint codec's `SaveLoad`) and snapshot through a
//! small versioned envelope that recovery can validate. This corresponds to
//! the paper's observation that the instrumented code "saves the entire
//! state" — the envelope *is* the per-process local checkpoint payload.

use ckptstore::codec::{CodecError, Decoder, Encoder};

/// Trait applications implement so the protocol layer can capture and
/// restore their state at `potentialCheckpoint` sites.
pub use ckptstore::codec::SaveLoad as SaveState;

/// Magic marking a state envelope.
const MAGIC: u32 = 0xC3C3_0001;

/// Serialize a state value into a versioned envelope.
pub fn snapshot_to_bytes<T: SaveState>(state: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u32(MAGIC);
    state.save(&mut enc);
    enc.into_bytes()
}

/// Decode a state envelope produced by [`snapshot_to_bytes`]. Rejects
/// envelopes with the wrong magic or trailing bytes, both of which indicate
/// schema drift between save and load.
pub fn restore_from_bytes<T: SaveState>(
    bytes: &[u8],
) -> Result<T, CodecError> {
    let mut dec = Decoder::new(bytes);
    let magic = dec.get_u32()?;
    if magic != MAGIC {
        return Err(CodecError::new(format!(
            "bad state envelope magic {magic:#x}"
        )));
    }
    let state = T::load(&mut dec)?;
    if !dec.is_exhausted() {
        return Err(CodecError::new(format!(
            "{} trailing bytes after state envelope",
            dec.remaining()
        )));
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckptstore::impl_saveload_struct;

    #[derive(Debug, PartialEq)]
    struct SolverState {
        iter: u64,
        x: Vec<f64>,
        r: Vec<f64>,
    }
    impl_saveload_struct!(SolverState { iter: u64, x: Vec<f64>, r: Vec<f64> });

    #[test]
    fn envelope_round_trip() {
        let s = SolverState {
            iter: 17,
            x: vec![1.0, 2.0],
            r: vec![-0.25; 8],
        };
        let bytes = snapshot_to_bytes(&s);
        let back: SolverState = restore_from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let s = SolverState {
            iter: 0,
            x: vec![],
            r: vec![],
        };
        let mut bytes = snapshot_to_bytes(&s);
        bytes[0] ^= 0xFF;
        assert!(restore_from_bytes::<SolverState>(&bytes).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let s = SolverState {
            iter: 0,
            x: vec![],
            r: vec![],
        };
        let mut bytes = snapshot_to_bytes(&s);
        bytes.push(0);
        assert!(restore_from_bytes::<SolverState>(&bytes).is_err());
    }

    #[test]
    fn truncation_is_rejected() {
        let s = SolverState {
            iter: 3,
            x: vec![9.0; 4],
            r: vec![],
        };
        let bytes = snapshot_to_bytes(&s);
        assert!(restore_from_bytes::<SolverState>(&bytes[..bytes.len() - 2])
            .is_err());
    }
}
