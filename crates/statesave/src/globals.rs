//! Global-variable segment (Section 5.1.2, last paragraph).
//!
//! "A similar mechanism can be used to handle global variables. In order to
//! discover all of a program's global variables, either the precompiler
//! must have access to all source files of the program at once, or this
//! discovery must be done during linking. We are currently using the former
//! approach."
//!
//! [`Globals`] is that mechanism one level up: a named registry of
//! scalar/array slots that exists for the whole program run (unlike a
//! [`crate::Frame`], which is pushed and popped per activation). The
//! "discovery" step is the program registering each global once at startup;
//! re-registration after a restore is idempotent and type-checked, so the
//! restored values win — mirroring how the precompiler's generated code
//! knows the full global set statically.

use std::collections::BTreeMap;

use ckptstore::codec::{CodecError, Decoder, Encoder, SaveLoad};

use crate::heap::Scalar;

#[derive(Debug, Clone, PartialEq, Eq)]
struct GlobalSlot {
    bytes: Vec<u8>,
}

/// The program's global-variable segment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Globals {
    slots: BTreeMap<String, GlobalSlot>,
}

impl Globals {
    /// An empty segment (program start).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a scalar global with an initial value. If the name already
    /// exists (e.g. after a restore), the existing value is kept and only
    /// the size is validated — restored state wins over initializers.
    ///
    /// # Panics
    /// If the name exists with a different size (a type confusion the
    /// precompiler would have rejected at compile time).
    pub fn register<T: Scalar>(&mut self, name: &str, init: T) {
        if let Some(slot) = self.slots.get(name) {
            assert_eq!(
                slot.bytes.len(),
                T::WIDTH,
                "global {name:?} re-registered with a different type size"
            );
            return;
        }
        let mut bytes = vec![0u8; T::WIDTH];
        init.store(&mut bytes);
        self.slots.insert(name.to_owned(), GlobalSlot { bytes });
    }

    /// Register an array global; same idempotence rules as
    /// [`Globals::register`].
    pub fn register_array<T: Scalar>(&mut self, name: &str, init: &[T]) {
        if let Some(slot) = self.slots.get(name) {
            assert_eq!(
                slot.bytes.len(),
                init.len() * T::WIDTH,
                "global array {name:?} re-registered with a different size"
            );
            return;
        }
        let mut bytes = vec![0u8; init.len() * T::WIDTH];
        for (i, &v) in init.iter().enumerate() {
            v.store(&mut bytes[i * T::WIDTH..(i + 1) * T::WIDTH]);
        }
        self.slots.insert(name.to_owned(), GlobalSlot { bytes });
    }

    fn slot(&self, name: &str) -> &GlobalSlot {
        self.slots
            .get(name)
            .unwrap_or_else(|| panic!("unregistered global {name:?}"))
    }

    /// Read a scalar global.
    pub fn get<T: Scalar>(&self, name: &str) -> T {
        let s = self.slot(name);
        assert_eq!(s.bytes.len(), T::WIDTH, "type/size mismatch on {name}");
        T::fetch(&s.bytes)
    }

    /// Write a scalar global.
    pub fn set<T: Scalar>(&mut self, name: &str, v: T) {
        let s = self
            .slots
            .get_mut(name)
            .unwrap_or_else(|| panic!("unregistered global {name:?}"));
        assert_eq!(s.bytes.len(), T::WIDTH, "type/size mismatch on {name}");
        v.store(&mut s.bytes);
    }

    /// Read element `i` of an array global.
    pub fn get_elem<T: Scalar>(&self, name: &str, i: usize) -> T {
        let s = self.slot(name);
        T::fetch(&s.bytes[i * T::WIDTH..(i + 1) * T::WIDTH])
    }

    /// Write element `i` of an array global.
    pub fn set_elem<T: Scalar>(&mut self, name: &str, i: usize, v: T) {
        let s = self
            .slots
            .get_mut(name)
            .unwrap_or_else(|| panic!("unregistered global {name:?}"));
        v.store(&mut s.bytes[i * T::WIDTH..(i + 1) * T::WIDTH]);
    }

    /// Number of registered globals.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total bytes described by the segment.
    pub fn byte_size(&self) -> usize {
        self.slots.values().map(|s| s.bytes.len()).sum()
    }
}

impl SaveLoad for Globals {
    fn save(&self, enc: &mut Encoder) {
        enc.put_usize(self.slots.len());
        for (name, slot) in &self.slots {
            enc.put_str(name);
            enc.put_bytes(&slot.bytes);
        }
    }
    fn load(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let n = dec.get_usize()?;
        let mut slots = BTreeMap::new();
        for _ in 0..n {
            let name = dec.get_str()?.to_owned();
            let bytes = dec.get_bytes()?.to_vec();
            slots.insert(name, GlobalSlot { bytes });
        }
        Ok(Globals { slots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_get_set() {
        let mut g = Globals::new();
        g.register::<u64>("counter", 7);
        g.register_array::<f64>("grid", &[1.0, 2.0]);
        assert_eq!(g.get::<u64>("counter"), 7);
        g.set::<u64>("counter", 9);
        assert_eq!(g.get::<u64>("counter"), 9);
        g.set_elem::<f64>("grid", 1, 4.5);
        assert_eq!(g.get_elem::<f64>("grid", 1), 4.5);
        assert_eq!(g.len(), 2);
        assert_eq!(g.byte_size(), 8 + 16);
    }

    #[test]
    fn reregistration_after_restore_keeps_restored_values() {
        let mut g = Globals::new();
        g.register::<u64>("epoch", 0);
        g.set::<u64>("epoch", 42);

        let mut enc = Encoder::new();
        g.save(&mut enc);
        let blob = enc.into_bytes();
        let mut restored = Globals::load(&mut Decoder::new(&blob)).unwrap();

        // Program startup code runs again and re-registers with the
        // initializer — the restored value must win.
        restored.register::<u64>("epoch", 0);
        assert_eq!(restored.get::<u64>("epoch"), 42);
    }

    #[test]
    #[should_panic(expected = "different type size")]
    fn type_confusion_is_rejected() {
        let mut g = Globals::new();
        g.register::<u64>("x", 0);
        g.register::<u32>("x", 0);
    }

    #[test]
    #[should_panic(expected = "unregistered global")]
    fn unregistered_access_panics() {
        Globals::new().get::<u64>("nope");
    }

    #[test]
    fn save_load_round_trip() {
        let mut g = Globals::new();
        g.register_array::<i32>("xs", &[1, -2, 3]);
        g.register::<f64>("t", 0.5);
        let mut enc = Encoder::new();
        g.save(&mut enc);
        let blob = enc.into_bytes();
        assert_eq!(Globals::load(&mut Decoder::new(&blob)).unwrap(), g);
    }
}
