//! `statesave` — application state saving, emulating the C³ precompiler.
//!
//! The paper's CCIFT precompiler (Section 5.1) rewrites a C program so that
//! it can save and restore its own position, stack variables, globals, and
//! heap at `potentialCheckpoint` call sites. The runtime mechanisms the
//! rewritten program uses are:
//!
//! * a **Position Stack (PS)** recording which call chain is active, so the
//!   activation stack can be rebuilt on restart by re-entering each function
//!   and jumping to the recorded label (Figure 6);
//! * a **Variable Descriptor Stack (VDS)** recording the address and size of
//!   every live stack variable, so values can be copied out at checkpoint
//!   time and back in on restart (Figure 7);
//! * a **Heap Object Structure (HOS)** inside a custom heap manager, so live
//!   heap objects are saved and restored to the *same virtual addresses*,
//!   which makes pointers checkpointable as plain data (Sections 5.1.3-4).
//!
//! Rust has no `goto` and no sanctioned way to overwrite a live stack frame,
//! so this crate implements the same mechanisms one level up, as a library
//! the "post-precompiler" program is written against:
//!
//! * [`position::PositionStack`] — the PS, with the restart cursor
//!   semantics of Figure 6.
//! * [`heap::ManagedHeap`] — an arena allocator whose addresses are stable
//!   *offsets*; its object table is the HOS, and [`heap::HPtr`] values
//!   (offsets) can be stored inside other heap objects and survive
//!   save/restore byte-identically, reproducing the paper's
//!   pointers-as-plain-data property.
//! * [`frame::Frame`] — per-function variable slots registered in VDS
//!   order; slot contents are memcpy'd out/in like the paper's VDS records.
//! * [`globals::Globals`] — the program-lifetime global-variable segment
//!   (the "similar mechanism ... for global variables" of Section 5.1.2).
//! * [`exec::CkptProgram`] — a block-structured executor that re-enters
//!   checkpointable functions and resumes at the recorded label, emulating
//!   the `if (restart) goto PS.item(i++)` preamble of Figure 6.
//! * [`snapshot`] — the [`snapshot::SaveState`] trait plus a driver used by
//!   applications that manage their state as ordinary Rust structs (the
//!   form most of the evaluation codes use).

#![deny(missing_docs)]

pub mod exec;
pub mod frame;
pub mod globals;
pub mod heap;
pub mod position;
pub mod snapshot;

pub use exec::{CkptCtx, CkptOutcome, CkptProgram, FuncId};
pub use frame::Frame;
pub use globals::Globals;
pub use heap::{HPtr, ManagedHeap};
pub use position::PositionStack;
pub use snapshot::SaveState;
