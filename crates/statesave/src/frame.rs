//! Per-function variable frames — the Variable Descriptor Stack (VDS) of
//! Section 5.1.2 / Figure 7.
//!
//! The paper's VDS records `(address, size)` of every live stack variable;
//! at checkpoint time the described bytes are copied out, and on restart
//! copied back over the rebuilt stack. Rust forbids aliasing live locals
//! with raw copies, so a [`Frame`] *owns* its variables' storage: a slot is
//! declared (pushed) when the variable enters scope, accessed through a
//! [`VarId`], and popped when it leaves scope. Saving a frame is exactly
//! the paper's VDS walk: name, size, raw bytes per slot.

use ckptstore::codec::{CodecError, Decoder, Encoder, SaveLoad};

use crate::heap::Scalar;

/// Index of a declared variable within its frame (declaration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarId(pub usize);

#[derive(Debug, Clone, PartialEq, Eq)]
struct Slot {
    name: String,
    bytes: Vec<u8>,
}

/// One function activation's variables, in VDS declaration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Frame {
    slots: Vec<Slot>,
}

impl Frame {
    /// An empty frame (function entry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a scalar variable with an initial value; the VDS push of
    /// Figure 7. Returns its id (stable = declaration order).
    pub fn declare<T: Scalar>(&mut self, name: &str, init: T) -> VarId {
        let mut bytes = vec![0u8; T::WIDTH];
        init.store(&mut bytes);
        self.slots.push(Slot {
            name: name.to_owned(),
            bytes,
        });
        VarId(self.slots.len() - 1)
    }

    /// Declare an array variable (`int b[10]` in Figure 7).
    pub fn declare_array<T: Scalar>(
        &mut self,
        name: &str,
        init: &[T],
    ) -> VarId {
        let mut bytes = vec![0u8; init.len() * T::WIDTH];
        for (i, &v) in init.iter().enumerate() {
            v.store(&mut bytes[i * T::WIDTH..(i + 1) * T::WIDTH]);
        }
        self.slots.push(Slot {
            name: name.to_owned(),
            bytes,
        });
        VarId(self.slots.len() - 1)
    }

    /// Remove the most recently declared variable; the VDS pop at scope
    /// exit in Figure 7.
    ///
    /// # Panics
    /// If the frame is empty (unbalanced instrumentation).
    pub fn pop(&mut self) {
        self.slots.pop().expect("Frame::pop on empty frame");
    }

    /// Number of live variables.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no variables are declared.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Look up a variable id by name (first match in declaration order).
    pub fn id_of(&self, name: &str) -> Option<VarId> {
        self.slots.iter().position(|s| s.name == name).map(VarId)
    }

    fn slot(&self, id: VarId) -> &Slot {
        &self.slots[id.0]
    }

    /// Read a scalar variable.
    ///
    /// # Panics
    /// On id out of range or size mismatch (instrumentation bugs).
    pub fn get<T: Scalar>(&self, id: VarId) -> T {
        let s = self.slot(id);
        assert_eq!(
            s.bytes.len(),
            T::WIDTH,
            "type/size mismatch on {}",
            s.name
        );
        T::fetch(&s.bytes)
    }

    /// Write a scalar variable.
    pub fn set<T: Scalar>(&mut self, id: VarId, v: T) {
        let s = &mut self.slots[id.0];
        assert_eq!(
            s.bytes.len(),
            T::WIDTH,
            "type/size mismatch on {}",
            s.name
        );
        v.store(&mut s.bytes);
    }

    /// Read element `i` of an array variable.
    pub fn get_elem<T: Scalar>(&self, id: VarId, i: usize) -> T {
        let s = self.slot(id);
        T::fetch(&s.bytes[i * T::WIDTH..(i + 1) * T::WIDTH])
    }

    /// Write element `i` of an array variable.
    pub fn set_elem<T: Scalar>(&mut self, id: VarId, i: usize, v: T) {
        let s = &mut self.slots[id.0];
        v.store(&mut s.bytes[i * T::WIDTH..(i + 1) * T::WIDTH]);
    }

    /// Element count of an array variable.
    pub fn elem_count<T: Scalar>(&self, id: VarId) -> usize {
        self.slot(id).bytes.len() / T::WIDTH
    }

    /// Total bytes described by this frame's VDS records.
    pub fn byte_size(&self) -> usize {
        self.slots.iter().map(|s| s.bytes.len()).sum()
    }
}

impl SaveLoad for Frame {
    fn save(&self, enc: &mut Encoder) {
        enc.put_usize(self.slots.len());
        for s in &self.slots {
            enc.put_str(&s.name);
            enc.put_bytes(&s.bytes);
        }
    }

    fn load(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let n = dec.get_usize()?;
        let mut slots = Vec::with_capacity(n.min(dec.remaining()));
        for _ in 0..n {
            let name = dec.get_str()?.to_owned();
            let bytes = dec.get_bytes()?.to_vec();
            slots.push(Slot { name, bytes });
        }
        Ok(Frame { slots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_get_set() {
        let mut f = Frame::new();
        let a = f.declare::<u64>("a", 5);
        let b = f.declare::<f64>("b", 1.5);
        assert_eq!(f.get::<u64>(a), 5);
        assert_eq!(f.get::<f64>(b), 1.5);
        f.set(a, 7u64);
        assert_eq!(f.get::<u64>(a), 7);
        assert_eq!(f.id_of("b"), Some(b));
        assert_eq!(f.id_of("zzz"), None);
    }

    #[test]
    fn scoped_declarations_mirror_figure_7() {
        // function(int a) { int b[10]; { int c; ... } }
        let mut f = Frame::new();
        let _a = f.declare::<i32>("a", 1);
        let _b = f.declare_array::<i32>("b", &[0; 10]);
        {
            let c = f.declare::<i32>("c", 3);
            assert_eq!(f.get::<i32>(c), 3);
            f.pop(); // c leaves scope
        }
        assert_eq!(f.len(), 2);
        f.pop();
        f.pop();
        assert!(f.is_empty());
    }

    #[test]
    fn array_elements() {
        let mut f = Frame::new();
        let xs = f.declare_array::<f64>("xs", &[1.0, 2.0, 3.0]);
        assert_eq!(f.elem_count::<f64>(xs), 3);
        f.set_elem(xs, 1, 20.0);
        assert_eq!(f.get_elem::<f64>(xs, 1), 20.0);
        assert_eq!(f.byte_size(), 24);
    }

    #[test]
    #[should_panic(expected = "type/size mismatch")]
    fn wrong_width_access_panics() {
        let mut f = Frame::new();
        let a = f.declare::<u64>("a", 5);
        let _: u32 = f.get(a);
    }

    #[test]
    fn save_restore_round_trip() {
        let mut f = Frame::new();
        let i = f.declare::<u64>("iter", 41);
        let xs = f.declare_array::<f64>("xs", &[0.5, -0.5]);
        let mut enc = Encoder::new();
        f.save(&mut enc);
        let bytes = enc.into_bytes();
        let g = Frame::load(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(g, f);
        assert_eq!(g.get::<u64>(i), 41);
        assert_eq!(g.get_elem::<f64>(xs, 1), -0.5);
    }
}
