//! The app-level butterfly reductions agree with the library collectives
//! and with exact expectations, at power-of-two and irregular rank counts.

use c3_apps::butterfly::{
    allgather, allgather_flat, allreduce_scalar, allreduce_sum,
};
use c3_core::{
    run_job, C3App, C3Config, C3Result, InstrumentationLevel, Process,
};
use ckptstore::impl_saveload_struct;

struct UnitState;
impl ckptstore::SaveLoad for UnitState {
    fn save(&self, _enc: &mut ckptstore::Encoder) {}
    fn load(
        _dec: &mut ckptstore::Decoder<'_>,
    ) -> Result<Self, ckptstore::codec::CodecError> {
        Ok(UnitState)
    }
}

/// Run a closure once per rank under the protocol layer.
fn with_process<F, T>(nprocs: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(&mut Process<'_>) -> C3Result<T> + Sync,
{
    struct Wrapper<F2>(F2);
    impl<F2, T2> C3App for Wrapper<F2>
    where
        T2: Send,
        F2: Fn(&mut Process<'_>) -> C3Result<T2> + Sync,
    {
        type State = UnitState;
        type Output = T2;
        fn init(&self, _p: &mut Process<'_>) -> C3Result<UnitState> {
            Ok(UnitState)
        }
        fn run(
            &self,
            p: &mut Process<'_>,
            _s: &mut UnitState,
        ) -> C3Result<T2> {
            (self.0)(p)
        }
    }
    let cfg = C3Config {
        level: InstrumentationLevel::Piggyback,
        ..C3Config::default()
    };
    run_job(nprocs, &cfg, None, &Wrapper(f)).unwrap().outputs
}

#[test]
fn scalar_allreduce_exact_sum() {
    for n in [1usize, 2, 3, 4, 5, 7, 8] {
        let outs = with_process(n, |p| {
            allreduce_scalar(p, p.world(), (p.rank() + 1) as f64)
        });
        let expect = (n * (n + 1) / 2) as f64;
        for (r, &o) in outs.iter().enumerate() {
            assert_eq!(o, expect, "rank {r} of {n}");
        }
    }
}

#[test]
fn vector_allreduce_all_ranks_agree_bitwise() {
    for n in [2usize, 4, 6, 8] {
        let outs = with_process(n, |p| {
            let me = p.rank() as f64;
            let x: Vec<f64> =
                (0..32).map(|k| 0.1 * (k as f64) + me * 0.37).collect();
            allreduce_sum(p, p.world(), &x)
        });
        for w in outs.windows(2) {
            assert_eq!(
                w[0], w[1],
                "ranks must agree bitwise (deterministic tree) at n={n}"
            );
        }
    }
}

#[test]
fn butterfly_allreduce_matches_library_allreduce() {
    for n in [3usize, 4, 5, 8] {
        let outs = with_process(n, |p| {
            let me = p.rank() as f64;
            let x = [me + 0.5, -me, me * me];
            let bfly = allreduce_sum(p, p.world(), &x)?;
            let lib =
                p.allreduce_t::<f64>(p.world(), c3_core::ReduceOp::Sum, &x)?;
            Ok((bfly, lib))
        });
        for (bfly, lib) in outs {
            for (a, b) in bfly.iter().zip(lib.iter()) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "butterfly {a} vs library {b} at n={n}"
                );
            }
        }
    }
}

#[test]
fn allgather_round_trips_ragged_chunks() {
    for n in [1usize, 2, 3, 4, 5, 8] {
        let outs = with_process(n, |p| {
            let me = p.rank();
            // Ragged: rank r contributes r+1 values.
            let mine: Vec<f64> =
                (0..=me).map(|k| (me * 10 + k) as f64).collect();
            allgather(p, p.world(), &mine)
        });
        for chunks in outs {
            assert_eq!(chunks.len(), n);
            for (r, c) in chunks.iter().enumerate() {
                let expect: Vec<f64> =
                    (0..=r).map(|k| (r * 10 + k) as f64).collect();
                assert_eq!(c, &expect, "chunk {r} at n={n}");
            }
        }
    }
}

#[test]
fn allgather_flat_concatenates_in_rank_order() {
    let outs = with_process(4, |p| {
        let me = p.rank() as f64;
        allgather_flat(p, p.world(), &[me * 2.0, me * 2.0 + 1.0])
    });
    for flat in outs {
        assert_eq!(flat, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }
}

#[test]
fn butterflies_compose_with_checkpointing_and_failures() {
    // A loop of butterfly reductions under checkpointing + one failure:
    // the p2p storm must classify/suppress/replay cleanly.
    struct BflyApp;
    struct St {
        i: u64,
        acc: f64,
    }
    impl_saveload_struct!(St { i: u64, acc: f64 });
    impl C3App for BflyApp {
        type State = St;
        type Output = u64;
        fn init(&self, _p: &mut Process<'_>) -> C3Result<St> {
            Ok(St { i: 0, acc: 1.0 })
        }
        fn run(&self, p: &mut Process<'_>, s: &mut St) -> C3Result<u64> {
            let world = p.world();
            while s.i < 20 {
                let sum = allreduce_scalar(p, world, s.acc + p.rank() as f64)?;
                let all = allgather_flat(p, world, &[s.acc, sum])?;
                s.acc = 0.5 * s.acc + 1e-3 * all.iter().sum::<f64>();
                s.i += 1;
                p.potential_checkpoint(s)?;
            }
            Ok(s.acc.to_bits())
        }
    }
    let reference =
        run_job(4, &C3Config::every_ops(9999), None, &BflyApp).unwrap();
    assert!(reference.outputs.windows(2).all(|w| w[0] == w[1]));
    let cfg = C3Config::every_ops(30).with_failure(2, 80);
    let report = run_job(4, &cfg, None, &BflyApp).unwrap();
    assert_eq!(report.restarts, 1);
    assert_eq!(report.outputs, reference.outputs);
}
