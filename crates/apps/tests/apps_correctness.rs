//! Application correctness: parallel results match sequential references,
//! outputs are independent of rank count where expected, and every
//! application survives injected failures with identical results.

use c3_apps::{dense_cg, DenseCg, Laplace, Neurosys};
use c3_core::{run_job, C3Config, InstrumentationLevel};
use ftsim::{chaos_check, FailureSchedule};

fn plain_cfg() -> C3Config {
    C3Config {
        level: InstrumentationLevel::None,
        ..C3Config::default()
    }
}

// ---------------------------------------------------------------------
// Dense CG
// ---------------------------------------------------------------------

#[test]
fn dense_cg_matches_across_rank_counts() {
    // The butterfly reductions use a fixed combination tree per rank
    // count, so different rank counts may differ in the last ulp — but
    // convergence must hold everywhere and the digest must be identical
    // across *runs* at the same rank count.
    let app = DenseCg::new(64, 30);
    for n in [1usize, 2, 4] {
        let a = run_job(n, &plain_cfg(), None, &app).unwrap();
        let b = run_job(n, &plain_cfg(), None, &app).unwrap();
        assert_eq!(a.outputs, b.outputs, "nondeterministic at n={n}");
        let rho = f64::from_bits(a.outputs[0].1);
        assert!(rho < 1e-12, "CG must converge at n={n}, rho={rho}");
    }
}

#[test]
fn dense_cg_single_rank_matches_sequential_reference() {
    let app = DenseCg::new(48, 20);
    let report = run_job(1, &plain_cfg(), None, &app).unwrap();
    let (x_ref, rho_ref) = dense_cg::test_support::sequential_cg(48, 20);
    assert_eq!(report.outputs[0].0, c3_apps::digest_f64(&x_ref));
    assert_eq!(f64::from_bits(report.outputs[0].1), rho_ref);
}

#[test]
fn dense_cg_survives_failures() {
    let app = DenseCg::new(48, 25);
    let schedules: Vec<FailureSchedule> = (0..3)
        .map(|seed| FailureSchedule::random(seed, 4, 1, 30..150))
        .collect();
    let report =
        chaos_check(4, &C3Config::every_ops(40), &app, &schedules).unwrap();
    assert!(report.total_restarts >= 1);
}

// ---------------------------------------------------------------------
// Laplace
// ---------------------------------------------------------------------

/// Sequential Jacobi reference with the same update rule.
fn sequential_laplace(n: usize, iters: u64) -> Vec<f64> {
    let app = Laplace { n, iters: 0 };
    let _ = app;
    let cell = |i: usize, j: usize| -> f64 {
        if j == 0 {
            100.0
        } else if j == n - 1 {
            -20.0
        } else if i == 0 || i == n - 1 {
            25.0
        } else {
            0.0
        }
    };
    let mut grid: Vec<f64> = (0..n * n).map(|k| cell(k / n, k % n)).collect();
    let mut next = grid.clone();
    for _ in 0..iters {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let idx = i * n + j;
                next[idx] = 0.25
                    * (grid[idx - n]
                        + grid[idx + n]
                        + grid[idx - 1]
                        + grid[idx + 1]);
            }
        }
        std::mem::swap(&mut grid, &mut next);
    }
    grid
}

#[test]
fn laplace_matches_sequential_reference_at_every_rank_count() {
    let n = 24;
    let iters = 15;
    let reference = sequential_laplace(n, iters);
    for nprocs in [1usize, 2, 3, 4] {
        let report =
            run_job(nprocs, &plain_cfg(), None, &Laplace { n, iters })
                .unwrap();
        // Concatenating per-rank digests isn't the same as a global
        // digest, so compare per-rank digests against reference slices.
        for (rank, out) in report.outputs.iter().enumerate() {
            let (lo, hi) = c3_apps::linalg::block_range(n, nprocs, rank);
            let expect = c3_apps::digest_f64(&reference[lo * n..hi * n]);
            assert_eq!(*out, expect, "rank {rank} of {nprocs}");
        }
    }
}

#[test]
fn laplace_survives_failures() {
    let app = Laplace { n: 32, iters: 30 };
    let schedules: Vec<FailureSchedule> = (5..8)
        .map(|seed| FailureSchedule::random(seed, 3, 1, 20..100))
        .collect();
    let report =
        chaos_check(3, &C3Config::every_ops(25), &app, &schedules).unwrap();
    assert!(report.total_restarts >= 1);
}

// ---------------------------------------------------------------------
// Neurosys
// ---------------------------------------------------------------------

#[test]
fn neurosys_is_deterministic_and_rank_count_invariant() {
    // Neurosys only uses library collectives whose reduction order is
    // rank-count independent for concatenation (allgather), so outputs
    // must agree across rank counts for matching neuron partitions...
    // partitions differ, so instead check determinism per rank count and
    // stability of the trajectory.
    let app = Neurosys::new(8, 12);
    for nprocs in [1usize, 2, 4] {
        let a = run_job(nprocs, &plain_cfg(), None, &app).unwrap();
        let b = run_job(nprocs, &plain_cfg(), None, &app).unwrap();
        assert_eq!(a.outputs, b.outputs, "nondeterministic at n={nprocs}");
    }
}

#[test]
fn neurosys_trajectory_stays_bounded() {
    // FHN dynamics with these parameters stay in a bounded attractor; a
    // blow-up would indicate an integration bug.
    struct Probe;
    use c3_core::{C3App, C3Result, Process};
    impl C3App for Probe {
        type State = c3_apps::neurosys::NeuroState;
        type Output = bool;
        fn init(&self, p: &mut Process<'_>) -> C3Result<Self::State> {
            Neurosys::new(8, 50).init(p)
        }
        fn run(
            &self,
            p: &mut Process<'_>,
            s: &mut Self::State,
        ) -> C3Result<bool> {
            Neurosys::new(8, 50).run(p, s)?;
            Ok(s.v.iter().chain(s.w.iter()).all(|x| x.abs() < 10.0))
        }
    }
    let report = run_job(2, &plain_cfg(), None, &Probe).unwrap();
    assert!(report.outputs.iter().all(|&b| b), "trajectory blew up");
}

#[test]
fn neurosys_survives_failures() {
    let app = Neurosys::new(8, 20);
    let schedules: Vec<FailureSchedule> = (20..23)
        .map(|seed| FailureSchedule::random(seed, 4, 1, 30..200))
        .collect();
    let report =
        chaos_check(4, &C3Config::every_ops(60), &app, &schedules).unwrap();
    assert!(report.total_restarts >= 1);
}

// ---------------------------------------------------------------------
// Instrumentation-level equivalence for all three apps
// ---------------------------------------------------------------------

#[test]
fn all_levels_produce_identical_results() {
    use InstrumentationLevel::*;
    let levels = [None, Piggyback, ProtocolOnly, Full];

    let cg = DenseCg::new(32, 10);
    let la = Laplace { n: 16, iters: 10 };
    let ns = Neurosys::new(6, 6);

    let run_at = |level: InstrumentationLevel| {
        let cfg = C3Config {
            level,
            trigger: c3_core::CheckpointTrigger::EveryOps(30),
            ..C3Config::default()
        };
        (
            run_job(2, &cfg, Option::None, &cg).unwrap().outputs,
            run_job(2, &cfg, Option::None, &la).unwrap().outputs,
            run_job(2, &cfg, Option::None, &ns).unwrap().outputs,
        )
    };
    let baseline = run_at(None);
    for level in &levels[1..] {
        let got = run_at(*level);
        assert_eq!(got.0, baseline.0, "dense CG differs at {level:?}");
        assert_eq!(got.1, baseline.1, "laplace differs at {level:?}");
        assert_eq!(got.2, baseline.2, "neurosys differs at {level:?}");
    }
}

// ---------------------------------------------------------------------
// §7 recomputation checkpointing (exclude read-only matrix block)
// ---------------------------------------------------------------------

#[test]
fn recompute_checkpointing_matches_full_checkpointing() {
    let full = DenseCg::new(48, 25);
    let recomputed = DenseCg::recompute(48, 25);
    let cfg = C3Config::every_ops(40);
    let a = run_job(3, &cfg, None, &full).unwrap();
    let b = run_job(3, &cfg, None, &recomputed).unwrap();
    assert_eq!(a.outputs, b.outputs, "ablation must not change numerics");

    // Checkpoints shrink from O(n²/P) to O(n/P).
    let full_bytes: u64 = a.stats.iter().map(|s| s.app_state_bytes).sum();
    let slim_bytes: u64 = b.stats.iter().map(|s| s.app_state_bytes).sum();
    assert!(
        slim_bytes * 4 < full_bytes,
        "expected >4x shrink: full={full_bytes} slim={slim_bytes}"
    );
}

#[test]
fn recompute_checkpointing_recovers_from_failures() {
    let app = DenseCg::recompute(48, 25);
    let reference =
        run_job(3, &C3Config::every_ops(9999), None, &app).unwrap();
    for at_op in [60, 110] {
        let cfg = C3Config::every_ops(30).with_failure(1, at_op);
        let report = run_job(3, &cfg, None, &app).unwrap();
        assert_eq!(report.restarts, 1, "at_op={at_op}");
        assert_eq!(
            report.outputs, reference.outputs,
            "matrix regeneration must be exact (at_op={at_op})"
        );
    }
}

// ---------------------------------------------------------------------
// Folding (the paper's §1.2 motivating example)
// ---------------------------------------------------------------------

#[test]
fn folding_is_deterministic_per_rank_count() {
    use c3_apps::Folding;
    let app = Folding::new(48, 25);
    for nprocs in [1usize, 2, 4] {
        let a = run_job(nprocs, &plain_cfg(), None, &app).unwrap();
        let b = run_job(nprocs, &plain_cfg(), None, &app).unwrap();
        assert_eq!(a.outputs, b.outputs, "nondeterministic at n={nprocs}");
    }
}

#[test]
fn folding_survives_failures() {
    use c3_apps::Folding;
    let app = Folding::new(48, 30);
    let schedules: Vec<FailureSchedule> = (30..33)
        .map(|seed| FailureSchedule::random(seed, 3, 1, 15..50))
        .collect();
    let report =
        chaos_check(3, &C3Config::every_ops(40), &app, &schedules).unwrap();
    assert!(report.total_restarts >= 1);
}
