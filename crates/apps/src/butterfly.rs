//! Application-level reductions over point-to-point messages.
//!
//! The paper's dense CG code performs its allReduce and allGather "in
//! terms of point-to-point messages along a butterfly tree" — i.e. the
//! *application* owns the reduction, and the checkpointing protocol sees a
//! storm of small point-to-point messages rather than collective calls.
//! These helpers reproduce that structure on top of
//! [`c3_core::Process`]'s p2p API:
//!
//! * [`allreduce_sum`] — recursive-doubling butterfly for power-of-two
//!   rank counts, with the standard fold-in pre/post phases for the rest;
//!   combination order is fixed by rank so floating-point results are
//!   identical on every run.
//! * [`allgather`] — recursive-doubling chunk exchange for powers of two,
//!   ring pipeline otherwise; handles ragged chunk sizes.

use c3_core::{C3Result, CommHandle, Process};
use simmpi::MpiType;

/// Tags used by the butterfly phases; kept away from small app tags.
const TAG_REDUCE: i32 = 0x0C30;
const TAG_FOLD: i32 = 0x0C31;
const TAG_GATHER: i32 = 0x0C32;

fn f64s(bytes: &[u8]) -> C3Result<Vec<f64>> {
    <f64 as MpiType>::bytes_to_vec(bytes).map_err(Into::into)
}

/// Element-wise sum across all ranks of `comm`, returned at every rank.
/// Point-to-point butterfly; deterministic combination order.
pub fn allreduce_sum(
    p: &mut Process<'_>,
    comm: CommHandle,
    x: &[f64],
) -> C3Result<Vec<f64>> {
    let n = p.comm_size(comm)?;
    let me = p.comm_rank(comm)?;
    let mut acc = x.to_vec();
    if n == 1 {
        return Ok(acc);
    }
    let pof2 = 1usize << (usize::BITS - 1 - n.leading_zeros()) as usize;
    let rem = n - pof2;

    // Pre-phase: ranks past the power-of-two boundary fold their data into
    // a partner below it and sit out the butterfly.
    if me >= pof2 {
        p.send_t::<f64>(comm, me - pof2, TAG_FOLD, &acc)?;
        let msg = p.recv(comm, me - pof2, TAG_FOLD)?;
        return f64s(&msg.payload);
    }
    if me < rem {
        let msg = p.recv(comm, me + pof2, TAG_FOLD)?;
        let other = f64s(&msg.payload)?;
        for (a, b) in acc.iter_mut().zip(other.iter()) {
            *a += b;
        }
    }

    // Butterfly: recursive doubling among the low pof2 ranks. Both
    // partners of a pair fold the same two operands — IEEE addition is
    // commutative, and the *association* (tree shape) is identical at
    // every rank by construction — so all ranks agree bitwise.
    let mut mask = 1usize;
    while mask < pof2 {
        let partner = me ^ mask;
        let msg = p.sendrecv(
            comm,
            partner,
            TAG_REDUCE + mask.trailing_zeros() as i32,
            &f64::slice_to_bytes(&acc),
            partner,
            TAG_REDUCE + mask.trailing_zeros() as i32,
        )?;
        let other = f64s(&msg.payload)?;
        for (a, b) in acc.iter_mut().zip(other.iter()) {
            *a += b;
        }
        mask <<= 1;
    }

    // Post-phase: send the result back to the folded-in ranks.
    if me < rem {
        p.send_t::<f64>(comm, me + pof2, TAG_FOLD, &acc)?;
    }
    Ok(acc)
}

/// Scalar convenience over [`allreduce_sum`].
pub fn allreduce_scalar(
    p: &mut Process<'_>,
    comm: CommHandle,
    x: f64,
) -> C3Result<f64> {
    Ok(allreduce_sum(p, comm, &[x])?[0])
}

fn frame_known(have: &[Option<Vec<f64>>]) -> Vec<u8> {
    let mut out = Vec::new();
    let count = have.iter().filter(|c| c.is_some()).count() as u64;
    out.extend_from_slice(&count.to_le_bytes());
    for (idx, chunk) in have.iter().enumerate() {
        if let Some(c) = chunk {
            out.extend_from_slice(&(idx as u64).to_le_bytes());
            out.extend_from_slice(&(c.len() as u64).to_le_bytes());
            for v in c {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    out
}

fn unframe_known(bytes: &[u8], have: &mut [Option<Vec<f64>>]) -> C3Result<()> {
    let bad = || {
        c3_core::C3Error::Protocol(
            "malformed butterfly allgather frame".into(),
        )
    };
    let mut pos = 0usize;
    let take =
        |pos: &mut usize, k: usize| -> Result<&[u8], c3_core::C3Error> {
            if bytes.len() - *pos < k {
                return Err(bad());
            }
            let s = &bytes[*pos..*pos + k];
            *pos += k;
            Ok(s)
        };
    let count =
        u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
    for _ in 0..count {
        let idx = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap())
            as usize;
        let len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap())
            as usize;
        let raw = take(&mut pos, len * 8)?;
        let chunk: Vec<f64> = raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if idx >= have.len() {
            return Err(bad());
        }
        have[idx] = Some(chunk);
    }
    if pos != bytes.len() {
        return Err(bad());
    }
    Ok(())
}

/// Gather every rank's chunk at every rank (ragged chunks allowed);
/// returns chunks indexed by communicator rank. Recursive doubling for
/// power-of-two sizes, ring pipeline otherwise — all point-to-point.
pub fn allgather(
    p: &mut Process<'_>,
    comm: CommHandle,
    mine: &[f64],
) -> C3Result<Vec<Vec<f64>>> {
    let n = p.comm_size(comm)?;
    let me = p.comm_rank(comm)?;
    let mut have: Vec<Option<Vec<f64>>> = vec![None; n];
    have[me] = Some(mine.to_vec());
    if n == 1 {
        return Ok(have.into_iter().map(|c| c.unwrap()).collect());
    }
    if n.is_power_of_two() {
        let mut mask = 1usize;
        while mask < n {
            let partner = me ^ mask;
            let tag = TAG_GATHER + mask.trailing_zeros() as i32;
            let payload = frame_known(&have);
            let msg =
                p.sendrecv(comm, partner, tag, &payload, partner, tag)?;
            unframe_known(&msg.payload, &mut have)?;
            mask <<= 1;
        }
    } else {
        // Ring: pass chunks around n-1 times.
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        for step in 0..n - 1 {
            let send_idx = (me + n - step) % n;
            let chunk = have[send_idx]
                .as_ref()
                .expect("ring invariant: chunk present")
                .clone();
            let mut payload = Vec::with_capacity(8 + chunk.len() * 8);
            payload.extend_from_slice(&(send_idx as u64).to_le_bytes());
            for v in &chunk {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            let msg = p.sendrecv(
                comm, right, TAG_GATHER, &payload, left, TAG_GATHER,
            )?;
            let idx = u64::from_le_bytes(msg.payload[..8].try_into().map_err(
                |_| c3_core::C3Error::Protocol("short ring frame".into()),
            )?) as usize;
            let vals = f64s(&msg.payload[8..])?;
            if idx >= n {
                return Err(c3_core::C3Error::Protocol(
                    "ring frame index out of range".into(),
                ));
            }
            have[idx] = Some(vals);
        }
    }
    Ok(have
        .into_iter()
        .map(|c| c.expect("allgather complete"))
        .collect())
}

/// Flat allgather: chunks concatenated in rank order.
pub fn allgather_flat(
    p: &mut Process<'_>,
    comm: CommHandle,
    mine: &[f64],
) -> C3Result<Vec<f64>> {
    Ok(allgather(p, comm, mine)?.into_iter().flatten().collect())
}
