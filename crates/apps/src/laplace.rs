//! Laplace solver: Jacobi iteration on a block-row-distributed grid
//! (Section 6.1).
//!
//! Each cell is replaced by the average of its four neighbors every
//! iteration ("during each iteration every grid cell is updated to be the
//! average of the numbers contained by the neighboring cells"). Each rank
//! owns a band of rows; per iteration it exchanges one boundary row with
//! the rank above and one with the rank below — large messages relative to
//! the piggybacked word, and state that is tiny compared to dense CG,
//! which is why the paper measures ≤ 2.1% checkpoint overhead here.

use c3_core::{C3App, C3Result, Process};
use ckptstore::impl_saveload_struct;

use crate::digest_f64;
use crate::linalg::block_range;

/// Boundary-exchange tags.
const TAG_UP: i32 = 11; // row sent upward (to rank-1)
const TAG_DOWN: i32 = 12; // row sent downward (to rank+1)

/// Laplace configuration.
#[derive(Debug, Clone)]
pub struct Laplace {
    /// Grid dimension (paper: 512/1024/2048; scaled: 128/256/512).
    pub n: usize,
    /// Jacobi iterations (paper: 40 000).
    pub iters: u64,
}

/// Per-rank solver state: the owned band of rows (without halos) and the
/// iteration counter.
pub struct LaplaceState {
    /// Completed iterations.
    pub iter: u64,
    /// `rows × n` row-major local band.
    pub grid: Vec<f64>,
}
impl_saveload_struct!(LaplaceState { iter: u64, grid: Vec<f64> });

impl Laplace {
    /// Bytes of checkpointable state per rank (for reporting).
    pub fn state_bytes_per_rank(&self, nranks: usize) -> usize {
        (self.n / nranks + 1) * self.n * 8 + 8
    }

    fn initial_cell(&self, i: usize, j: usize) -> f64 {
        // Hot left edge, cold right edge, sinusoidal top/bottom flavor —
        // any fixed deterministic boundary works.
        if j == 0 {
            100.0
        } else if j == self.n - 1 {
            -20.0
        } else if i == 0 || i == self.n - 1 {
            25.0
        } else {
            0.0
        }
    }
}

impl C3App for Laplace {
    type State = LaplaceState;
    type Output = u64;

    fn init(&self, p: &mut Process<'_>) -> C3Result<LaplaceState> {
        let (lo, hi) = block_range(self.n, p.size(), p.rank());
        let mut grid = Vec::with_capacity((hi - lo) * self.n);
        for i in lo..hi {
            for j in 0..self.n {
                grid.push(self.initial_cell(i, j));
            }
        }
        Ok(LaplaceState { iter: 0, grid })
    }

    fn run(&self, p: &mut Process<'_>, s: &mut LaplaceState) -> C3Result<u64> {
        let world = p.world();
        let n = self.n;
        let size = p.size();
        let me = p.rank();
        let (lo, hi) = block_range(n, size, me);
        let rows = hi - lo;
        debug_assert_eq!(s.grid.len(), rows * n);
        let mut next = vec![0.0; rows * n];
        let zeros = vec![0.0f64; n];

        while s.iter < self.iters {
            // Halo exchange with the rank above ("up" = smaller row
            // indices) and below. Edge ranks use a fixed boundary row.
            let top_halo: Vec<f64> = if me > 0 {
                let first_row = &s.grid[0..n];
                let msg = p.sendrecv(
                    world,
                    me - 1,
                    TAG_UP,
                    &simmpi::MpiType::slice_to_bytes(first_row),
                    me - 1,
                    TAG_DOWN,
                )?;
                simmpi::MpiType::bytes_to_vec(&msg.payload)?
            } else {
                zeros.clone()
            };
            let bottom_halo: Vec<f64> = if me + 1 < size {
                let last_row = &s.grid[(rows - 1) * n..rows * n];
                let msg = p.sendrecv(
                    world,
                    me + 1,
                    TAG_DOWN,
                    &simmpi::MpiType::slice_to_bytes(last_row),
                    me + 1,
                    TAG_UP,
                )?;
                simmpi::MpiType::bytes_to_vec(&msg.payload)?
            } else {
                zeros.clone()
            };

            // Jacobi sweep over interior cells of the band; global edges
            // keep their boundary values.
            for r in 0..rows {
                let gi = lo + r;
                for j in 0..n {
                    let idx = r * n + j;
                    if gi == 0 || gi == n - 1 || j == 0 || j == n - 1 {
                        next[idx] = s.grid[idx];
                        continue;
                    }
                    let up =
                        if r == 0 { top_halo[j] } else { s.grid[idx - n] };
                    let down = if r == rows - 1 {
                        bottom_halo[j]
                    } else {
                        s.grid[idx + n]
                    };
                    next[idx] =
                        0.25 * (up + down + s.grid[idx - 1] + s.grid[idx + 1]);
                }
            }
            std::mem::swap(&mut s.grid, &mut next);
            s.iter += 1;
            p.potential_checkpoint(s)?;
        }
        Ok(digest_f64(&s.grid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_bytes_scale_with_grid_area() {
        let a = Laplace { n: 128, iters: 1 }.state_bytes_per_rank(4);
        let b = Laplace { n: 256, iters: 1 }.state_bytes_per_rank(4);
        assert!(b > 3 * a);
    }

    #[test]
    fn boundary_values() {
        let l = Laplace { n: 8, iters: 1 };
        assert_eq!(l.initial_cell(3, 0), 100.0);
        assert_eq!(l.initial_cell(3, 7), -20.0);
        assert_eq!(l.initial_cell(0, 3), 25.0);
        assert_eq!(l.initial_cell(3, 3), 0.0);
    }
}
