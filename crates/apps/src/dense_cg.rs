//! Dense conjugate gradient with block-row distribution (Section 6.1).
//!
//! Solves `A x = b` for a dense SPD matrix. Each rank owns a block of rows
//! of `A` plus the matching slices of the CG vectors. Per iteration:
//!
//! * an **allgather** of the direction vector `p` (the matvec needs all of
//!   it), and
//! * two **allreduces** for the dot products `pᵀAp` and `rᵀr`,
//!
//! both implemented as point-to-point butterflies ([`crate::butterfly`]),
//! exactly like the paper's code ("communication coming from an allReduce
//! and an allGather, which are implemented in terms of point-to-point
//! messages along a butterfly tree").
//!
//! The checkpointed state is dominated by the per-rank matrix block
//! (`rows × n` doubles), so checkpoint cost scales with the square of the
//! problem size — the effect behind Figure 8's dense-CG bars.

use crate::butterfly::{allgather_flat, allreduce_scalar};
use crate::digest_f64;
use crate::linalg::{axpy, block_matvec, block_range, dot, spd_entry, xpby};
use c3_core::{C3App, C3Result, Process};

/// Dense CG configuration.
#[derive(Debug, Clone)]
pub struct DenseCg {
    /// Matrix dimension `n` (the paper ran 4096/8192/16384; scaled sizes
    /// like 256/512/1024 reproduce the same shape on a laptop).
    pub n: usize,
    /// CG iterations to run (the paper ran 500).
    pub iters: u64,
    /// §7 "recomputation checkpointing" ablation: when set, the read-only
    /// matrix block is *excluded* from checkpoints ("if the description of
    /// this recomputation requires less space than storing their data, we
    /// should store the description") and regenerated deterministically on
    /// restart. Checkpoints shrink from O(n²/P) to O(n/P) bytes.
    pub exclude_readonly: bool,
}

impl DenseCg {
    /// Standard configuration (full state saved, as the paper's
    /// instrumented code does).
    pub fn new(n: usize, iters: u64) -> Self {
        DenseCg {
            n,
            iters,
            exclude_readonly: false,
        }
    }

    /// Recomputation-checkpointing configuration (§7 ablation).
    pub fn recompute(n: usize, iters: u64) -> Self {
        DenseCg {
            n,
            iters,
            exclude_readonly: true,
        }
    }
}

/// Per-rank CG state — everything needed to resume, including the matrix
/// block (the paper's instrumented code "saves the entire state") unless
/// recomputation checkpointing is on, in which case `persist_matrix` is
/// false, the block is skipped by `save`, and `run` regenerates it after a
/// restore (it comes back empty).
pub struct CgState {
    /// Completed iterations.
    pub iter: u64,
    /// Whether `a_block` is written into checkpoints.
    pub persist_matrix: bool,
    /// This rank's rows of `A`, row-major (`rows × n`).
    pub a_block: Vec<f64>,
    /// Local slice of the iterate `x`.
    pub x: Vec<f64>,
    /// Local slice of the residual `r`.
    pub r: Vec<f64>,
    /// Local slice of the direction `p`.
    pub p: Vec<f64>,
    /// Current `rᵀr` (global).
    pub rho: f64,
}

impl ckptstore::SaveLoad for CgState {
    fn save(&self, enc: &mut ckptstore::Encoder) {
        enc.put_u64(self.iter);
        enc.put_bool(self.persist_matrix);
        if self.persist_matrix {
            enc.put_f64_slice(&self.a_block);
        }
        enc.put_f64_slice(&self.x);
        enc.put_f64_slice(&self.r);
        enc.put_f64_slice(&self.p);
        enc.put_f64(self.rho);
    }
    fn load(
        dec: &mut ckptstore::Decoder<'_>,
    ) -> Result<Self, ckptstore::codec::CodecError> {
        let iter = dec.get_u64()?;
        let persist_matrix = dec.get_bool()?;
        let a_block = if persist_matrix {
            dec.get_f64_vec()?
        } else {
            Vec::new()
        };
        Ok(CgState {
            iter,
            persist_matrix,
            a_block,
            x: dec.get_f64_vec()?,
            r: dec.get_f64_vec()?,
            p: dec.get_f64_vec()?,
            rho: dec.get_f64()?,
        })
    }
}

/// Per-rank output: digest of the local solution slice plus the final
/// global residual bits.
pub type CgOutput = (u64, u64);

impl DenseCg {
    /// Bytes of checkpointable state per rank (for reporting).
    pub fn state_bytes_per_rank(&self, nranks: usize) -> usize {
        let rows = self.n / nranks + 1;
        (rows * self.n + 3 * rows) * 8 + 16
    }
}

impl C3App for DenseCg {
    type State = CgState;
    type Output = CgOutput;

    fn init(&self, p: &mut Process<'_>) -> C3Result<CgState> {
        let (lo, hi) = block_range(self.n, p.size(), p.rank());
        let rows = hi - lo;
        let mut a_block = Vec::with_capacity(rows * self.n);
        for i in lo..hi {
            for j in 0..self.n {
                a_block.push(spd_entry(self.n, i, j));
            }
        }
        // b_i = 1 + i/n, x0 = 0 ⇒ r0 = b, p0 = r0.
        let b: Vec<f64> =
            (lo..hi).map(|i| 1.0 + i as f64 / self.n as f64).collect();
        let rho_local = dot(&b, &b);
        // The initial rho is a global dot product.
        let rho = {
            let world = p.world();
            allreduce_scalar(p, world, rho_local)?
        };
        Ok(CgState {
            iter: 0,
            persist_matrix: !self.exclude_readonly,
            a_block,
            x: vec![0.0; rows],
            r: b.clone(),
            p: b,
            rho,
        })
    }

    fn run(
        &self,
        proc: &mut Process<'_>,
        s: &mut CgState,
    ) -> C3Result<CgOutput> {
        let world = proc.world();
        let n = self.n;
        let rows = s.x.len();
        // Recomputation checkpointing (§7): a restored state carries no
        // matrix block; rebuild it from its deterministic description.
        if s.a_block.is_empty() && rows > 0 {
            let (lo, hi) = block_range(n, proc.size(), proc.rank());
            debug_assert_eq!(hi - lo, rows);
            s.a_block.reserve_exact(rows * n);
            for i in lo..hi {
                for j in 0..n {
                    s.a_block.push(spd_entry(n, i, j));
                }
            }
        }
        let mut w = vec![0.0; rows];
        while s.iter < self.iters {
            // w = A p  (needs the full direction vector).
            let p_full = allgather_flat(proc, world, &s.p)?;
            debug_assert_eq!(p_full.len(), n);
            block_matvec(&s.a_block, n, &p_full, &mut w);

            // alpha = rho / (p · w). Long benchmark runs iterate past
            // convergence (the paper ran a fixed 500 iterations); once the
            // residual underflows to zero the updates become no-ops, and
            // the guards keep the arithmetic NaN-free while every
            // iteration still performs identical communication and flops.
            let pw = allreduce_scalar(proc, world, dot(&s.p, &w))?;
            let alpha = if pw != 0.0 { s.rho / pw } else { 0.0 };

            axpy(alpha, &s.p, &mut s.x);
            axpy(-alpha, &w, &mut s.r);

            // rho' = r · r ; beta = rho' / rho ; p = r + beta p.
            let rho_new = allreduce_scalar(proc, world, dot(&s.r, &s.r))?;
            let beta = if s.rho != 0.0 { rho_new / s.rho } else { 0.0 };
            s.rho = rho_new;
            xpby(&s.r, beta, &mut s.p);

            s.iter += 1;
            proc.potential_checkpoint(s)?;
        }
        Ok((digest_f64(&s.x), s.rho.to_bits()))
    }
}

/// Reference implementations used by correctness tests and benchmarks.
pub mod test_support {
    use super::*;

    /// Sequential reference CG with exactly the operation order a
    /// single-rank parallel run performs.
    pub fn sequential_cg(n: usize, iters: u64) -> (Vec<f64>, f64) {
        let a: Vec<f64> =
            (0..n * n).map(|k| spd_entry(n, k / n, k % n)).collect();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 / n as f64).collect();
        let mut x = vec![0.0; n];
        let mut r = b.clone();
        let mut p = b;
        let mut rho = dot(&r, &r);
        let mut w = vec![0.0; n];
        for _ in 0..iters {
            block_matvec(&a, n, &p, &mut w);
            let alpha = rho / dot(&p, &w);
            axpy(alpha, &p, &mut x);
            axpy(-alpha, &w, &mut r);
            let rho_new = dot(&r, &r);
            let beta = rho_new / rho;
            rho = rho_new;
            xpby(&r, beta, &mut p);
        }
        (x, rho)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_cg_converges() {
        let (_, rho) = test_support::sequential_cg(32, 25);
        assert!(rho < 1e-18, "residual should be tiny, got {rho}");
    }

    #[test]
    fn state_bytes_estimate_scales_quadratically() {
        let cfg = DenseCg::new(256, 1);
        let small = cfg.state_bytes_per_rank(4);
        let cfg = DenseCg::new(512, 1);
        let big = cfg.state_bytes_per_rank(4);
        assert!(big > 3 * small, "roughly 4x expected: {small} -> {big}");
    }
}
