//! Protein-folding stand-in: parallel molecular dynamics (paper §1.2).
//!
//! The paper motivates application-level checkpointing with ab initio
//! protein folding: "it suffices to save the positions and velocities of
//! the various bases, which is a small fraction of the total state of the
//! parallel system." This mini-app makes that argument executable: a chain
//! of particles evolves under velocity-Verlet integration with bonded
//! springs plus a softened pairwise attraction; forces need every
//! particle's position (one allgather per step), but the *checkpointable*
//! state is exactly the owned positions and velocities — while the working
//! set (force arrays, neighbor buffers, the gathered position vector) is
//! several times larger and is deliberately excluded, the way a
//! hand-instrumented folding code would exclude it.

use c3_core::{C3App, C3Result, Process};
use ckptstore::impl_saveload_struct;

use crate::digest_f64;
use crate::linalg::block_range;

/// Folding simulation configuration.
#[derive(Debug, Clone)]
pub struct Folding {
    /// Number of particles in the chain.
    pub particles: usize,
    /// Velocity-Verlet steps.
    pub iters: u64,
    /// Integration step.
    pub dt: f64,
}

impl Folding {
    /// Standard configuration with a stable step size.
    pub fn new(particles: usize, iters: u64) -> Self {
        Folding {
            particles,
            iters,
            dt: 5e-3,
        }
    }

    /// Bytes of checkpointable state per rank (positions + velocities of
    /// the owned slice only — the paper's "small fraction").
    pub fn state_bytes_per_rank(&self, nranks: usize) -> usize {
        let local = self.particles / nranks + 1;
        2 * 3 * local * 8 + 8
    }
}

/// Per-rank state: owned particles' positions and velocities (flattened
/// `[x0, y0, z0, x1, …]`), plus the step counter. Nothing else — forces
/// and gathered coordinates are recomputed every step.
pub struct FoldingState {
    /// Completed steps.
    pub iter: u64,
    /// Owned positions, `3 × local` values.
    pub pos: Vec<f64>,
    /// Owned velocities, `3 × local` values.
    pub vel: Vec<f64>,
}
impl_saveload_struct!(FoldingState { iter: u64, pos: Vec<f64>, vel: Vec<f64> });

const BOND_K: f64 = 40.0; // bonded spring stiffness
const BOND_LEN: f64 = 1.0; // rest length
const ATTRACT: f64 = 0.8; // softened global attraction strength
const SOFT2: f64 = 4.0; // softening length²
const DAMP: f64 = 0.05; // velocity damping (keeps the fold bounded)

/// Accumulate forces on the owned slice `[lo, hi)` from the full position
/// vector (`3 × n` values).
fn forces(all: &[f64], lo: usize, hi: usize, out: &mut [f64]) {
    let n = all.len() / 3;
    out.fill(0.0);
    for i in lo..hi {
        let o = (i - lo) * 3;
        let pi = &all[i * 3..i * 3 + 3];
        // Bonded neighbors: springs along the chain.
        for j in [i.wrapping_sub(1), i + 1] {
            if j >= n {
                continue;
            }
            let pj = &all[j * 3..j * 3 + 3];
            let (dx, dy, dz) = (pj[0] - pi[0], pj[1] - pi[1], pj[2] - pi[2]);
            let r = (dx * dx + dy * dy + dz * dz).sqrt().max(1e-9);
            let f = BOND_K * (r - BOND_LEN) / r;
            out[o] += f * dx;
            out[o + 1] += f * dy;
            out[o + 2] += f * dz;
        }
        // Softened attraction toward every 8th particle (a crude stand-in
        // for tertiary contacts; O(n/8) per particle keeps steps cheap).
        let mut j = i % 8;
        while j < n {
            if j != i {
                let pj = &all[j * 3..j * 3 + 3];
                let (dx, dy, dz) =
                    (pj[0] - pi[0], pj[1] - pi[1], pj[2] - pi[2]);
                let r2 = dx * dx + dy * dy + dz * dz + SOFT2;
                let f = ATTRACT / (r2 * r2.sqrt());
                out[o] += f * dx;
                out[o + 1] += f * dy;
                out[o + 2] += f * dz;
            }
            j += 8;
        }
    }
}

impl C3App for Folding {
    type State = FoldingState;
    type Output = u64;

    fn init(&self, p: &mut Process<'_>) -> C3Result<FoldingState> {
        let (lo, hi) = block_range(self.particles, p.size(), p.rank());
        // A gentle helix as the unfolded initial chain.
        let mut pos = Vec::with_capacity(3 * (hi - lo));
        for i in lo..hi {
            let t = i as f64 * 0.4;
            pos.push(t.cos() * 2.0);
            pos.push(t.sin() * 2.0);
            pos.push(i as f64 * BOND_LEN * 0.9);
        }
        Ok(FoldingState {
            iter: 0,
            pos,
            vel: vec![0.0; 3 * (hi - lo)],
        })
    }

    fn run(&self, p: &mut Process<'_>, s: &mut FoldingState) -> C3Result<u64> {
        let world = p.world();
        let (lo, hi) = block_range(self.particles, p.size(), p.rank());
        let local3 = 3 * (hi - lo);
        debug_assert_eq!(s.pos.len(), local3);
        let dt = self.dt;
        // Working set, *not* checkpointed: recomputed after any restart.
        // Every communication call sits INSIDE the resumable loop — a
        // prologue collective would not be re-aligned with the recovery
        // log's call sequence after a restart (the loop-resume analogue of
        // the precompiler's rule that resumption jumps past the prologue).
        let mut f_now = vec![0.0; local3];
        let mut f_new = vec![0.0; local3];

        while s.iter < self.iters {
            // Forces at the current positions (recomputed each step so a
            // resumed iteration starts from checkpointed state alone).
            let all = p.allgather_flat_t::<f64>(world, &s.pos)?;
            forces(&all, lo, hi, &mut f_now);
            // Velocity Verlet: x += v dt + f dt²/2.
            for ((x, &v), &f) in s.pos.iter_mut().zip(&s.vel).zip(f_now.iter())
            {
                *x += v * dt + 0.5 * f * dt * dt;
            }
            let all = p.allgather_flat_t::<f64>(world, &s.pos)?;
            forces(&all, lo, hi, &mut f_new);
            for ((v, &f0), &f1) in
                s.vel.iter_mut().zip(f_now.iter()).zip(f_new.iter())
            {
                *v = (*v + 0.5 * (f0 + f1) * dt) * (1.0 - DAMP * dt);
            }
            s.iter += 1;
            p.potential_checkpoint(s)?;
        }
        Ok(digest_f64(&s.pos) ^ digest_f64(&s.vel).rotate_left(17))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_a_small_fraction_of_the_working_set() {
        let app = Folding::new(512, 1);
        let ckpt = app.state_bytes_per_rank(4);
        // Working set per rank: 2 force arrays + the gathered 3n vector.
        let working = 2 * 3 * (512 / 4) * 8 + 3 * 512 * 8;
        assert!(
            ckpt * 2 < ckpt + working,
            "checkpointable state ({ckpt} B) must undercut the full \
             working set ({} B)",
            ckpt + working
        );
    }

    #[test]
    fn forces_are_finite_and_pull_bonds_to_rest_length() {
        // Two particles stretched beyond rest length attract.
        let all = vec![0.0, 0.0, 0.0, 0.0, 0.0, 2.0];
        let mut out = vec![0.0; 3];
        forces(&all, 0, 1, &mut out);
        assert!(out.iter().all(|x| x.is_finite()));
        assert!(out[2] > 0.0, "particle 0 pulled toward particle 1");

        // Compressed bond pushes apart.
        let all = vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.5];
        forces(&all, 0, 1, &mut out);
        assert!(out[2] < 0.0, "particle 0 pushed away from particle 1");
    }

    #[test]
    fn chain_stays_bounded() {
        // A short sequential sanity run (1 rank via direct math is awkward;
        // just check force magnitudes stay sane over a few hand steps).
        let n = 16;
        let app = Folding::new(n, 0);
        let mut pos = Vec::new();
        for i in 0..n {
            let t = i as f64 * 0.4;
            pos.extend_from_slice(&[
                t.cos() * 2.0,
                t.sin() * 2.0,
                i as f64 * BOND_LEN * 0.9,
            ]);
        }
        let mut f = vec![0.0; 3 * n];
        forces(&pos, 0, n, &mut f);
        let max = f.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        assert!(max.is_finite() && max < 1e3, "max force {max}");
        let _ = app;
    }
}
