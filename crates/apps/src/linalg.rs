//! Small dense linear-algebra helpers shared by the applications.

/// Deterministic SPD test matrix entry: strongly diagonally dominant with
/// smooth off-diagonal decay, so CG converges steadily at every size.
pub fn spd_entry(n: usize, i: usize, j: usize) -> f64 {
    let base = 1.0 / (1.0 + i.abs_diff(j) as f64);
    if i == j {
        n as f64 + base
    } else {
        base
    }
}

/// Dense row-block × vector product: `y = A[lo..hi) · x`.
///
/// `block` is stored row-major with `n` columns, rows `lo..hi`.
pub fn block_matvec(block: &[f64], n: usize, x: &[f64], y: &mut [f64]) {
    let rows = block.len() / n;
    assert_eq!(block.len(), rows * n);
    assert_eq!(x.len(), n);
    assert_eq!(y.len(), rows);
    for (r, yr) in y.iter_mut().enumerate() {
        let row = &block[r * n..(r + 1) * n];
        // Simple dot product; the compiler vectorizes this loop.
        let mut acc = 0.0;
        for (a, b) in row.iter().zip(x.iter()) {
            acc += a * b;
        }
        *yr = acc;
    }
}

/// Local dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `y = x + beta * y`.
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi = xi + beta * *yi;
    }
}

/// Split `n` items over `size` ranks: returns `(lo, hi)` for `rank`,
/// distributing the remainder to the lowest ranks.
pub fn block_range(n: usize, size: usize, rank: usize) -> (usize, usize) {
    let base = n / size;
    let rem = n % size;
    let lo = rank * base + rank.min(rem);
    let hi = lo + base + usize::from(rank < rem);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spd_matrix_is_symmetric_and_dominant() {
        let n = 8;
        for i in 0..n {
            let mut off = 0.0;
            for j in 0..n {
                assert_eq!(spd_entry(n, i, j), spd_entry(n, j, i));
                if i != j {
                    off += spd_entry(n, i, j).abs();
                }
            }
            assert!(spd_entry(n, i, i) > off, "row {i} not dominant");
        }
    }

    #[test]
    fn block_matvec_matches_full_matvec() {
        let n = 6;
        let full: Vec<f64> =
            (0..n * n).map(|k| spd_entry(n, k / n, k % n)).collect();
        let x: Vec<f64> = (0..n).map(|i| (i as f64) - 2.5).collect();
        let mut y_full = vec![0.0; n];
        block_matvec(&full, n, &x, &mut y_full);

        // Same computation in two blocks.
        let mut y = vec![0.0; n];
        for (lo, hi) in [(0, 4), (4, 6)] {
            block_matvec(&full[lo * n..hi * n], n, &x, &mut y[lo..hi]);
        }
        assert_eq!(y, y_full);
    }

    #[test]
    fn vector_kernels() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, -5.0, 6.0];
        assert_eq!(dot(&a, &b), 4.0 - 10.0 + 18.0);
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
        let mut y2 = [1.0, 1.0, 1.0];
        xpby(&a, 0.5, &mut y2);
        assert_eq!(y2, [1.5, 2.5, 3.5]);
    }

    #[test]
    fn block_ranges_partition_exactly() {
        for n in [1usize, 7, 16, 100] {
            for size in [1usize, 2, 3, 5, 16] {
                let mut covered = 0;
                for rank in 0..size {
                    let (lo, hi) = block_range(n, size, rank);
                    assert_eq!(lo, covered);
                    covered = hi;
                    assert!(hi >= lo);
                }
                assert_eq!(covered, n);
            }
        }
    }
}
