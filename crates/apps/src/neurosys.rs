//! Neurosys: a neuron-network simulator (Section 6.1).
//!
//! "Uses a graph of neurons which excite and inhibit each other via their
//! connections. ... The evolution of the neuron network through time is
//! computed via the Runge-Kutta method. ... Communication consists of 5
//! `MPI_Allgather`s and 1 `MPI_Gather` in each loop iteration."
//!
//! This implementation integrates FitzHugh-Nagumo dynamics on an `m × m`
//! neuron grid with nearest-neighbor coupling, using classic RK4. Each RK
//! stage needs every neuron's potential (the coupling term), so each stage
//! performs an allgather — four of them — plus a fifth allgather of the
//! committed potentials and a gather of per-rank activity to rank 0: the
//! paper's exact 5 + 1 collective mix. Because these are *library*
//! collectives (not app-level butterflies), every call pays the protocol's
//! control-collective overhead — the effect that costs small Neurosys runs
//! up to 160% in Figure 8 and fades as computation grows.

use c3_core::{C3App, C3Result, Process};
use ckptstore::impl_saveload_struct;

use crate::digest_f64;
use crate::linalg::block_range;

/// Neurosys configuration.
#[derive(Debug, Clone)]
pub struct Neurosys {
    /// Grid side `m` (the network has `m × m` neurons; paper: 16..128).
    pub m: usize,
    /// Time steps (paper: 3000).
    pub iters: u64,
    /// Integration step.
    pub dt: f64,
}

impl Neurosys {
    /// A standard configuration with `dt` chosen for stability.
    pub fn new(m: usize, iters: u64) -> Self {
        Neurosys { m, iters, dt: 0.01 }
    }

    /// Bytes of checkpointable state per rank (for reporting).
    pub fn state_bytes_per_rank(&self, nranks: usize) -> usize {
        let local = self.m * self.m / nranks + 1;
        2 * local * 8 + 8
    }
}

/// Per-rank simulator state: membrane potentials `v` and recovery
/// variables `w` of the locally owned neurons.
pub struct NeuroState {
    /// Completed time steps.
    pub iter: u64,
    /// Membrane potentials of the locally owned neurons.
    pub v: Vec<f64>,
    /// Recovery variables of the locally owned neurons.
    pub w: Vec<f64>,
}
impl_saveload_struct!(NeuroState { iter: u64, v: Vec<f64>, w: Vec<f64> });

const COUPLING: f64 = 0.2;
const EPS: f64 = 0.08;
const A: f64 = 0.7;
const B: f64 = 0.8;
const I_EXT: f64 = 0.5;

/// Coupling sum for neuron `k` (global index) over its grid neighbors.
fn neighbor_sum(v_full: &[f64], m: usize, k: usize) -> f64 {
    let (row, col) = (k / m, k % m);
    let mut acc = 0.0;
    let mut cnt = 0.0;
    if row > 0 {
        acc += v_full[k - m];
        cnt += 1.0;
    }
    if row + 1 < m {
        acc += v_full[k + m];
        cnt += 1.0;
    }
    if col > 0 {
        acc += v_full[k - 1];
        cnt += 1.0;
    }
    if col + 1 < m {
        acc += v_full[k + 1];
        cnt += 1.0;
    }
    acc - cnt * v_full[k]
}

/// FHN derivative for the local slice, given the full potential vector.
fn derivs(
    v_full: &[f64],
    v: &[f64],
    w: &[f64],
    m: usize,
    lo: usize,
    dv: &mut [f64],
    dw: &mut [f64],
) {
    for (idx, ((&vi, &wi), (dvi, dwi))) in v
        .iter()
        .zip(w)
        .zip(dv.iter_mut().zip(dw.iter_mut()))
        .enumerate()
    {
        let k = lo + idx;
        *dvi = vi - vi * vi * vi / 3.0 - wi
            + I_EXT
            + COUPLING * neighbor_sum(v_full, m, k);
        *dwi = EPS * (vi + A - B * wi);
    }
}

impl C3App for Neurosys {
    type State = NeuroState;
    type Output = u64;

    fn init(&self, p: &mut Process<'_>) -> C3Result<NeuroState> {
        let total = self.m * self.m;
        let (lo, hi) = block_range(total, p.size(), p.rank());
        // Deterministic mixed initial conditions.
        let v: Vec<f64> = (lo..hi)
            .map(|k| -1.0 + 2.0 * ((k * 2_654_435_761) % 1000) as f64 / 1000.0)
            .collect();
        let w = vec![0.0; hi - lo];
        Ok(NeuroState { iter: 0, v, w })
    }

    fn run(&self, p: &mut Process<'_>, s: &mut NeuroState) -> C3Result<u64> {
        let world = p.world();
        let m = self.m;
        let total = m * m;
        let (lo, hi) = block_range(total, p.size(), p.rank());
        let local = hi - lo;
        debug_assert_eq!(s.v.len(), local);
        let dt = self.dt;

        let mut k1v = vec![0.0; local];
        let mut k1w = vec![0.0; local];
        let mut k2v = vec![0.0; local];
        let mut k2w = vec![0.0; local];
        let mut k3v = vec![0.0; local];
        let mut k3w = vec![0.0; local];
        let mut k4v = vec![0.0; local];
        let mut k4w = vec![0.0; local];
        let mut tv = vec![0.0; local];
        let mut tw = vec![0.0; local];

        while s.iter < self.iters {
            // Four RK stages, each needing the full potential vector:
            // allgathers #1-#4.
            let v_full = p.allgather_flat_t::<f64>(world, &s.v)?;
            derivs(&v_full, &s.v, &s.w, m, lo, &mut k1v, &mut k1w);

            for i in 0..local {
                tv[i] = s.v[i] + 0.5 * dt * k1v[i];
                tw[i] = s.w[i] + 0.5 * dt * k1w[i];
            }
            let v_full = p.allgather_flat_t::<f64>(world, &tv)?;
            derivs(&v_full, &tv, &tw, m, lo, &mut k2v, &mut k2w);

            for i in 0..local {
                tv[i] = s.v[i] + 0.5 * dt * k2v[i];
                tw[i] = s.w[i] + 0.5 * dt * k2w[i];
            }
            let v_full = p.allgather_flat_t::<f64>(world, &tv)?;
            derivs(&v_full, &tv, &tw, m, lo, &mut k3v, &mut k3w);

            for i in 0..local {
                tv[i] = s.v[i] + dt * k3v[i];
                tw[i] = s.w[i] + dt * k3w[i];
            }
            let v_full = p.allgather_flat_t::<f64>(world, &tv)?;
            derivs(&v_full, &tv, &tw, m, lo, &mut k4v, &mut k4w);

            for i in 0..local {
                s.v[i] +=
                    dt / 6.0 * (k1v[i] + 2.0 * k2v[i] + 2.0 * k3v[i] + k4v[i]);
                s.w[i] +=
                    dt / 6.0 * (k1w[i] + 2.0 * k2w[i] + 2.0 * k3w[i] + k4w[i]);
            }

            // Allgather #5: publish committed potentials (a global
            // observable everyone keeps).
            let committed = p.allgather_flat_t::<f64>(world, &s.v)?;
            let mean: f64 =
                committed.iter().sum::<f64>() / committed.len() as f64;

            // Gather #1: per-rank activity summary to rank 0 (the paper's
            // output-recording gather).
            let activity = [s.v.iter().map(|x| x.abs()).sum::<f64>(), mean];
            let _ = p.gather_t::<f64>(world, 0, &activity)?;

            s.iter += 1;
            p.potential_checkpoint(s)?;
        }
        Ok(digest_f64(&s.v) ^ digest_f64(&s.w).rotate_left(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_sum_interior_and_corner() {
        let m = 3;
        let v: Vec<f64> = (0..9).map(|k| k as f64).collect();
        // Center cell 4: neighbors 1,3,5,7 sum=16, minus 4*4 = 0.
        assert_eq!(neighbor_sum(&v, m, 4), 0.0);
        // Corner cell 0: neighbors 1,3 sum=4, minus 2*0 = 4.
        assert_eq!(neighbor_sum(&v, m, 0), 4.0);
    }

    #[test]
    fn derivative_is_finite_and_coupled() {
        let m = 2;
        let v_full = vec![0.1, -0.2, 0.3, 0.0];
        let v = v_full.clone();
        let w = vec![0.0; 4];
        let mut dv = vec![0.0; 4];
        let mut dw = vec![0.0; 4];
        derivs(&v_full, &v, &w, m, 0, &mut dv, &mut dw);
        assert!(dv.iter().all(|x| x.is_finite()));
        assert!(dw.iter().all(|x| x.is_finite()));
        // Coupling pulls neuron 0 toward its neighbors' mean.
        assert!(dv[0] > v[0] - v[0] * v[0] * v[0] / 3.0 - w[0] + I_EXT - 1.0);
    }

    #[test]
    fn state_bytes_scale_with_network_size() {
        let a = Neurosys::new(16, 1).state_bytes_per_rank(4);
        let b = Neurosys::new(32, 1).state_bytes_per_rank(4);
        assert!(b > 3 * a);
    }
}
