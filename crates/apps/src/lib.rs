//! `c3-apps` — the paper's evaluation applications (Section 6.1).
//!
//! Three codes, matching the paper's benchmark suite in communication
//! structure and state shape:
//!
//! * [`dense_cg`] — a dense conjugate-gradient solver with block-row
//!   distribution. Per iteration: a parallel matrix-vector product (needs
//!   an allgather of the direction vector) and two dot products
//!   (allreduces). Exactly as in the paper, the reductions are implemented
//!   *in the application* as butterflies of point-to-point messages
//!   ([`butterfly`]), so this code stresses the protocol's p2p piggyback
//!   path. Per-rank state is dominated by the matrix block, so checkpoint
//!   cost grows quadratically with problem size — the effect behind the
//!   14% → 43% overhead jump in Figure 8.
//! * [`laplace`] — a Jacobi iteration on an `n × n` grid distributed by
//!   block rows; communication is one halo exchange with each vertical
//!   neighbor per iteration. Large messages, tiny state: the code where
//!   checkpointing is nearly free (≤ 2.1% in the paper).
//! * [`neurosys`] — a neuron-network simulator integrating a
//!   FitzHugh-Nagumo-style ODE system with RK4. Per iteration it performs
//!   5 allgathers and 1 gather (the paper's exact call mix), making it the
//!   collective-control-overhead stress test: at small sizes the paper
//!   measured up to 160% overhead from the piggyback/control collectives
//!   alone, decaying to ~3% at larger sizes.
//!
//! A fourth mini-app, [`folding`], executes the paper's *motivating*
//! example (§1.2's ab initio protein folding): a molecular-dynamics chain
//! whose checkpointable state — positions and velocities only — is a small
//! fraction of its working set.
//!
//! Every application is deterministic for a given configuration, produces
//! a bit-stable digest as its per-rank output, and structures its main
//! loop so `potential_checkpoint` sits at an iteration-consistent point.

#![deny(missing_docs)]

pub mod butterfly;
pub mod dense_cg;
pub mod folding;
pub mod laplace;
pub mod linalg;
pub mod neurosys;

pub use dense_cg::DenseCg;
pub use folding::Folding;
pub use laplace::Laplace;
pub use neurosys::Neurosys;

/// Fold a slice of doubles into a bit-stable digest (outputs must be
/// comparable across runs with `==`, so floats are hashed by bits).
pub fn digest_f64(xs: &[f64]) -> u64 {
    xs.iter().fold(0xcbf2_9ce4_8422_2325, |h, v| {
        (h ^ v.to_bits()).wrapping_mul(0x1000_0000_01b3)
    })
}
