//! The seed corpus: previously interesting seeds, checked in under
//! `tests/fuzz_corpus/` and replayed as regression tests.
//!
//! Format: one seed per line, decimal or `0x`-prefixed hex; `#` starts
//! a comment (full-line or trailing); blank lines are ignored. Comments
//! are where a seed's story lives ("found the tier-drain race in PR 8"),
//! so the file stays reviewable as the corpus grows.

use std::path::Path;

/// Parse a corpus file's text. Returns the seeds in file order.
pub fn parse_seeds(text: &str) -> Result<Vec<u64>, String> {
    let mut seeds = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parsed = match line.strip_prefix("0x").or(line.strip_prefix("0X"))
        {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => line.parse(),
        };
        match parsed {
            Ok(seed) => seeds.push(seed),
            Err(e) => {
                return Err(format!(
                    "line {}: bad seed {line:?}: {e}",
                    lineno + 1
                ))
            }
        }
    }
    Ok(seeds)
}

/// Load a corpus file from disk.
pub fn load_seeds(path: &Path) -> Result<Vec<u64>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    parse_seeds(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_decimal_hex_comments_and_blanks() {
        let text = "# the corpus\n\n42\n0xdead_beef# trailing\n0X10\n  7  \n";
        // Underscores are not part of the format; keep it strict.
        assert!(parse_seeds(text).is_err());
        let text = "# the corpus\n\n42\n0xdeadbeef # trailing\n0X10\n  7  \n";
        assert_eq!(parse_seeds(text).unwrap(), vec![42, 0xdead_beef, 0x10, 7]);
    }

    #[test]
    fn rejects_garbage_with_line_context() {
        let err = parse_seeds("1\nnope\n3").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("nope"), "{err}");
    }
}
