//! Run one scenario end to end and judge it.
//!
//! A campaign is: a failure-free perfect-wire reference run, then the
//! adversarial run (kills + lossy wire + faulty storage + tiers) with a
//! trace sink and metrics registry attached, then the verdict pipeline —
//! output comparison against the reference, the `c3verify` state
//! analyzer, the happens-before race checker, and the `c3obs` metrics
//! health check. All three checkers are called through the
//! [`c3verify::verdict`] library API (no subprocesses).
//!
//! An optional [`Plant`] mutates the recorded trace before verification
//! — an intentionally introduced protocol bug, used to prove the fuzzer
//! and shrinker actually catch one.

use std::fmt;

use c3_apps::{DenseCg, Laplace};
use c3_core::trace::{TraceEvent, TraceRecord};
use c3_core::{run_job, C3App, C3Config, TraceSink};
use c3verify::{verdict_records, CheckKind, Report};

use crate::scenario::{AppChoice, Scenario};

/// Why a campaign failed.
#[derive(Debug)]
pub enum FuzzFailure {
    /// The adversarial job errored instead of recovering (or the
    /// reference itself failed).
    JobError(String),
    /// The adversarial run's outputs differ from the reference's.
    OutputDivergence {
        /// Reference outputs, `Debug`-rendered.
        expected: String,
        /// Adversarial outputs, `Debug`-rendered.
        actual: String,
    },
    /// The state analyzer (I1..I14 + T0) flagged the trace.
    Invariants(Report),
    /// The happens-before checker (R0..R6) flagged the trace.
    Races(Report),
    /// The metrics health check flagged the run.
    Health(Vec<String>),
}

impl FuzzFailure {
    /// Short stable label for shrinking (two failures are "the same"
    /// when their labels match).
    pub fn label(&self) -> String {
        match self {
            FuzzFailure::JobError(_) => "job-error".into(),
            FuzzFailure::OutputDivergence { .. } => "output-divergence".into(),
            FuzzFailure::Invariants(r) => match r.violations.first() {
                Some(v) => format!("invariant-{}", v.invariant),
                None => "invariant".into(),
            },
            FuzzFailure::Races(r) => match r.violations.first() {
                Some(v) => format!("race-{}", v.invariant),
                None => "race".into(),
            },
            FuzzFailure::Health(_) => "health".into(),
        }
    }
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzFailure::JobError(e) => write!(f, "job error: {e}"),
            FuzzFailure::OutputDivergence { expected, actual } => write!(
                f,
                "output divergence:\n  expected {expected}\n  actual   \
                 {actual}"
            ),
            FuzzFailure::Invariants(r) => {
                write!(f, "invariant violations:\n{}", r.render())
            }
            FuzzFailure::Races(r) => {
                write!(f, "happens-before races:\n{}", r.render())
            }
            FuzzFailure::Health(v) => {
                write!(f, "metrics health violations:\n{}", v.join("\n"))
            }
        }
    }
}

/// An intentionally planted protocol bug, applied to the recorded trace
/// before verification — the fuzzer's own regression test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plant {
    /// Hoist a commit before its pipeline drain barrier: erase the
    /// initiator's `PipelineDrained` record for a committed line, so
    /// the trace claims the commit happened without waiting for the
    /// async writes to land. The analyzer must flag it (I13).
    HoistCommitBeforeDrain,
}

impl Plant {
    /// Apply the bug to `records`. Returns false when the trace has no
    /// site to plant it at (e.g. no line ever committed).
    pub fn apply(&self, records: &mut Vec<TraceRecord>) -> bool {
        match self {
            Plant::HoistCommitBeforeDrain => {
                let committed: Vec<u64> = records
                    .iter()
                    .filter_map(|r| match r.event {
                        TraceEvent::Commit { ckpt } => Some(ckpt),
                        _ => None,
                    })
                    .collect();
                let Some(idx) = records.iter().position(|r| {
                    matches!(
                        r.event,
                        TraceEvent::PipelineDrained { ckpt, .. }
                            if committed.contains(&ckpt)
                    )
                }) else {
                    return false;
                };
                records.remove(idx);
                true
            }
        }
    }
}

/// What one campaign produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Rollback/restart cycles the adversarial run performed.
    pub restarts: usize,
    /// Highest committed checkpoint line at the end.
    pub last_committed: Option<u64>,
    /// Storage faults the staging backend injected.
    pub storage_faults: u64,
    /// Adversarial outputs, `Debug`-rendered (the determinism tests
    /// compare these across runs).
    pub outputs: String,
    /// The recorded trace in canonical `(rank, attempt, seq)` order,
    /// after any [`Plant`] mutation.
    pub records: Vec<TraceRecord>,
    /// Whether the requested plant found a site to apply at.
    pub plant_applied: bool,
    /// The verdict: `None` means the campaign is clean.
    pub failure: Option<FuzzFailure>,
}

/// Canonical order for cross-run trace comparison: ranks interleave
/// their appends into the shared sink nondeterministically, but each
/// rank's own stream is totally ordered by `(attempt, seq)`.
pub fn canonicalize(mut records: Vec<TraceRecord>) -> Vec<TraceRecord> {
    records.sort_by_key(|r| (r.rank, r.attempt, r.seq));
    records
}

/// Run the campaign for `scenario`, optionally planting a bug into the
/// recorded trace before verification.
pub fn run_campaign(
    scenario: &Scenario,
    plant: Option<Plant>,
) -> CampaignOutcome {
    match scenario.app {
        AppChoice::DenseCg { n, iters } => {
            run_app(scenario, &DenseCg::new(n, iters), plant)
        }
        AppChoice::Laplace { n, iters } => {
            run_app(scenario, &Laplace { n, iters }, plant)
        }
    }
}

fn run_app<A>(
    scenario: &Scenario,
    app: &A,
    plant: Option<Plant>,
) -> CampaignOutcome
where
    A: C3App,
    A::Output: PartialEq + fmt::Debug,
{
    let fail = |failure: FuzzFailure| CampaignOutcome {
        scenario: scenario.clone(),
        restarts: 0,
        last_committed: None,
        storage_faults: 0,
        outputs: String::new(),
        records: Vec::new(),
        plant_applied: false,
        failure: Some(failure),
    };

    // Failure-free reference on the perfect wire: same app, same world
    // size, plain storage. Its outputs define "correct".
    let reference_cfg = match scenario.interval {
        Some(k) => C3Config::every_ops(k),
        None => C3Config::default(),
    };
    let reference = match run_job(scenario.nranks, &reference_cfg, None, app) {
        Ok(r) => r,
        Err(e) => {
            return fail(FuzzFailure::JobError(format!(
                "reference run failed: {e}"
            )))
        }
    };

    // The adversarial run: everything the seed derived, plus a trace
    // sink and metrics registry for the verdict pipeline.
    let sink = TraceSink::new();
    let reg = c3obs::Registry::new();
    let cfg = scenario
        .config()
        .with_trace(sink.clone())
        .with_obs(reg.clone());
    let backend = scenario.backend();
    let report =
        match run_job(scenario.nranks, &cfg, Some(backend.clone()), app) {
            Ok(r) => r,
            Err(e) => return fail(FuzzFailure::JobError(e.to_string())),
        };

    let mut records = canonicalize(sink.take());
    let plant_applied = match plant {
        Some(p) => p.apply(&mut records),
        None => false,
    };

    let mut failure = None;
    if report.outputs != reference.outputs {
        failure = Some(FuzzFailure::OutputDivergence {
            expected: format!("{:?}", reference.outputs),
            actual: format!("{:?}", report.outputs),
        });
    }
    if failure.is_none() {
        let v = verdict_records(CheckKind::Invariants, &records);
        if v.exit_code() != 0 {
            let report = v.files.into_iter().next().unwrap().outcome.unwrap();
            failure = Some(FuzzFailure::Invariants(report));
        }
    }
    if failure.is_none() {
        let v = verdict_records(CheckKind::Races, &records);
        if v.exit_code() != 0 {
            let report = v.files.into_iter().next().unwrap().outcome.unwrap();
            failure = Some(FuzzFailure::Races(report));
        }
    }
    if failure.is_none() {
        let violations =
            c3_core::health_check(&reg.snapshot(), scenario.net.is_perfect());
        if !violations.is_empty() {
            failure = Some(FuzzFailure::Health(violations));
        }
    }

    CampaignOutcome {
        scenario: scenario.clone(),
        restarts: report.restarts,
        last_committed: report.last_committed,
        storage_faults: backend.faults_injected(),
        outputs: format!("{:?}", report.outputs),
        records,
        plant_applied,
        failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_tame_scenario_runs_clean() {
        // Hand-built minimal scenario: 2 ranks, no adversity at all.
        let sc = Scenario {
            seed: 0,
            nranks: 2,
            app: AppChoice::Laplace { n: 8, iters: 10 },
            interval: Some(6),
            sync_io: true,
            incremental: false,
            compression: false,
            chunker: c3_core::Chunker::fixed(4096),
            codec: c3_core::Codec::PackBits,
            keep_last: 1,
            tiers: None,
            net: simmpi::NetCond::perfect(),
            faults: ckptstore::FaultPlan::none(),
            schedule: ftsim::FailureSchedule::none(),
        };
        let out = run_campaign(&sc, None);
        assert!(out.failure.is_none(), "{}", out.failure.unwrap());
        assert_eq!(out.restarts, 0);
        assert!(out.last_committed.is_some(), "lines must commit");
        assert!(!out.records.is_empty(), "trace must be recorded");
    }

    #[test]
    fn a_kill_recovers_and_verifies() {
        let sc = Scenario {
            seed: 0,
            nranks: 3,
            app: AppChoice::Laplace { n: 16, iters: 30 },
            interval: Some(8),
            sync_io: false,
            incremental: true,
            compression: true,
            chunker: c3_core::Chunker::cdc(1024),
            codec: c3_core::Codec::Lz4,
            keep_last: 1,
            tiers: None,
            net: simmpi::NetCond::perfect(),
            faults: ckptstore::FaultPlan::none(),
            schedule: ftsim::FailureSchedule::single(1, 40),
        };
        let out = run_campaign(&sc, None);
        assert!(out.failure.is_none(), "{}", out.failure.unwrap());
        assert!(out.restarts >= 1, "the kill must fire");
    }

    #[test]
    fn the_planted_drain_hoist_is_detected() {
        let sc = Scenario {
            seed: 0,
            nranks: 2,
            app: AppChoice::Laplace { n: 8, iters: 16 },
            interval: Some(6),
            sync_io: false,
            incremental: true,
            compression: false,
            chunker: c3_core::Chunker::fixed(4096),
            codec: c3_core::Codec::PackBits,
            keep_last: 1,
            tiers: None,
            net: simmpi::NetCond::perfect(),
            faults: ckptstore::FaultPlan::none(),
            schedule: ftsim::FailureSchedule::none(),
        };
        let out = run_campaign(&sc, Some(Plant::HoistCommitBeforeDrain));
        assert!(out.plant_applied, "a committing run has a plant site");
        match &out.failure {
            Some(FuzzFailure::Invariants(r)) => {
                assert!(
                    r.violations
                        .iter()
                        .any(|v| v.invariant.starts_with("I13")),
                    "hoisted commit must trip I13:\n{}",
                    r.render()
                );
            }
            other => panic!("expected an I13 verdict, got {other:?}"),
        }
        assert_eq!(
            out.failure.unwrap().label(),
            "invariant-I13-drain-before-commit"
        );
    }
}
