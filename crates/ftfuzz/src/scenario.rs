//! Seed → scenario: every adversarial dimension of a campaign derived
//! from one `u64`.
//!
//! A [`Scenario`] is plain data — all fields public, comparable by
//! `Debug` rendering — so the shrinker can mutate dimensions directly
//! and the reproducer can print a scenario back as Rust source. The
//! derivation chains a SplitMix64 stream (the same primitive `netsim`
//! and `ckptstore::fault` use), so a scenario is a pure function of its
//! seed: two processes, two machines, two years apart — same seed, same
//! campaign.

use std::sync::Arc;

use c3_core::{C3Config, Chunker, Codec, PipelineConfig, TierTopology};
use ckptstore::{FaultInjectingBackend, FaultPlan, MemoryBackend};
use ftsim::FailureSchedule;
use simmpi::{NetCond, RetransmitPolicy};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which application the campaign runs. Both are real `C3App`
/// implementations from `c3-apps`, sized small enough that a campaign
/// completes in well under a second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppChoice {
    /// Dense conjugate gradient, `n × n` system, `iters` iterations.
    DenseCg {
        /// Matrix dimension.
        n: usize,
        /// CG iterations (the campaign's horizon).
        iters: u64,
    },
    /// Jacobi iteration on an `n × n` grid, `iters` sweeps.
    Laplace {
        /// Grid side.
        n: usize,
        /// Jacobi sweeps (the campaign's horizon).
        iters: u64,
    },
}

impl AppChoice {
    /// The scenario's horizon in application iterations.
    pub fn iters(&self) -> u64 {
        match *self {
            AppChoice::DenseCg { iters, .. } => iters,
            AppChoice::Laplace { iters, .. } => iters,
        }
    }

    /// Replace the horizon (the shrinker's shorter-horizon move).
    pub fn with_iters(&self, new_iters: u64) -> Self {
        match *self {
            AppChoice::DenseCg { n, .. } => AppChoice::DenseCg {
                n,
                iters: new_iters,
            },
            AppChoice::Laplace { n, .. } => AppChoice::Laplace {
                n,
                iters: new_iters,
            },
        }
    }
}

/// A full adversarial campaign, derived from one seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The seed this scenario was derived from (kept for reporting; the
    /// fields below are authoritative once the shrinker has run).
    pub seed: u64,
    /// World size.
    pub nranks: usize,
    /// The application and its horizon.
    pub app: AppChoice,
    /// Checkpoint cadence: `Some(k)` initiates a line every `k` protocol
    /// ops (small values produce back-to-back lines); `None` is the
    /// manual trigger (no checkpoints — used by the determinized
    /// projection).
    pub interval: Option<u64>,
    /// Synchronous full-blob writing instead of the async pipeline.
    pub sync_io: bool,
    /// Incremental (chunked, deduplicated) blob writing.
    pub incremental: bool,
    /// Chunk compression.
    pub compression: bool,
    /// How incremental blobs are cut: fixed-size pieces or FastCDC
    /// content-defined chunks (exercises boundary-shift dedup).
    pub chunker: Chunker,
    /// Preferred chunk codec when compression is on (PackBits RLE or
    /// the LZ4-class block codec).
    pub codec: Codec,
    /// Committed lines to retain.
    pub keep_last: u64,
    /// Multi-level storage topology behind the faulty staging tier.
    pub tiers: Option<TierTopology>,
    /// Wire profile.
    pub net: NetCond,
    /// Storage misbehavior of the staging tier.
    pub faults: FaultPlan,
    /// Rank kills, including attempt-gated kills during recovery.
    pub schedule: FailureSchedule,
}

impl Scenario {
    /// Derive the full campaign from `seed`.
    pub fn from_seed(seed: u64) -> Self {
        const SALT_SCENARIO: u64 = 0x5CE2_A210;
        let mut s = seed ^ SALT_SCENARIO;
        let mut next = |span: u64| splitmix64(&mut s) % span.max(1);

        let nranks = 2 + next(4) as usize;
        let app = if next(2) == 0 {
            AppChoice::Laplace {
                n: 16,
                iters: 24 + next(17),
            }
        } else {
            AppChoice::DenseCg {
                n: if next(2) == 0 { 24 } else { 32 },
                iters: 20 + next(17),
            }
        };
        // One seed in five checkpoints back-to-back (the cadence that
        // stresses line pipelining); the rest spread lines out.
        let interval = if next(5) == 0 {
            3 + next(2)
        } else {
            6 + next(9)
        };
        let sync_io = next(4) == 0;
        let incremental = next(4) != 0;
        let compression = next(2) == 0;
        let tiers = match next(3) {
            0 => None,
            _ => Some(match next(3) {
                0 => TierTopology::partner(1),
                1 => {
                    TierTopology::erasure(2 + next(2) as u8, 1 + next(2) as u8)
                }
                _ => TierTopology::partner_and_erasure(1, 2, 1),
            }),
        };
        // Tiered stores keep ≥ 2 lines so an unservable newest line can
        // fall back to a whole older one (repo-wide convention).
        let keep_last = if tiers.is_some() { 2 } else { 1 };

        let schedule = if next(5) == 0 {
            FailureSchedule::none()
        } else {
            let mut parts = Vec::new();
            let styled = next(3);
            parts.push(match styled {
                1 if !sync_io => FailureSchedule::kill_during_async_write(
                    seed ^ 0xA51C,
                    nranks,
                    interval,
                    1 + next(2),
                ),
                2 if tiers.is_some() => {
                    FailureSchedule::kill_during_tier_drain(
                        seed ^ 0x71E2,
                        nranks,
                        interval,
                        1 + next(2),
                    )
                }
                _ => FailureSchedule::random(seed ^ 0xD1E5, nranks, 1, 12..60),
            });
            if next(3) == 0 {
                parts.push(FailureSchedule::random(
                    seed ^ 0x2B15,
                    nranks,
                    1,
                    12..60,
                ));
            }
            if next(4) == 0 {
                parts.push(FailureSchedule::kill_during_recovery(
                    seed ^ 0x3ECF,
                    nranks,
                    15 + next(30),
                ));
            }
            FailureSchedule::compose(parts)
        };

        // The chunker/codec dimensions are drawn after everything else
        // so corpus seeds predating them keep their original shapes.
        let chunker = match next(3) {
            0 => Chunker::fixed(4096),
            1 => Chunker::fixed(1024),
            _ => Chunker::cdc(1024usize << next(3)),
        };
        let codec = if next(2) == 0 {
            Codec::PackBits
        } else {
            Codec::Lz4
        };
        // Recovery-mode dimension (drawn last, same reason): one seed in
        // three repairs its kills by online splice instead of global
        // rollback — kills of rank 0 or double kills of one rank then
        // exercise the escalation path on top.
        let schedule = if next(3) == 0 {
            schedule.with_localized()
        } else {
            schedule
        };

        Scenario {
            seed,
            nranks,
            app,
            interval: Some(interval),
            sync_io,
            incremental,
            compression,
            chunker,
            codec,
            keep_last,
            tiers,
            net: NetCond::from_seed(seed, nranks),
            faults: FaultPlan::from_seed(seed),
            schedule,
        }
    }

    /// Build the job configuration (wire, cadence, I/O, kills) for the
    /// adversarial run. The trace sink and metrics registry are the
    /// campaign runner's to add.
    pub fn config(&self) -> C3Config {
        let mut io = if self.sync_io {
            PipelineConfig::sync_full()
        } else {
            PipelineConfig::default()
        };
        io.incremental = self.incremental;
        io.compression = self.compression;
        io.chunker = self.chunker;
        io.codec = self.codec;
        io.keep_last = self.keep_last;
        io.tiers = self.tiers;
        let base = match self.interval {
            Some(k) => C3Config::every_ops(k),
            None => C3Config::default(),
        };
        self.schedule
            .apply(base)
            .with_net(self.net.clone())
            .with_io(io)
    }

    /// The faulty staging backend for the adversarial run. When the
    /// scenario has a tier topology the job driver wraps this backend as
    /// tier 0 of the hierarchy, so the storage faults land exactly where
    /// a flaky local burst buffer would put them.
    pub fn backend(&self) -> Arc<FaultInjectingBackend> {
        Arc::new(FaultInjectingBackend::new(
            Arc::new(MemoryBackend::new()),
            self.faults.clone(),
        ))
    }

    /// The deterministic projection of this scenario: same app, world
    /// size and wire *decision* streams, but no checkpoints, no kills,
    /// no storage faults, no drops or partitions, and an hour-scale
    /// retransmit timer. What remains — duplication, reorder, delay —
    /// is a pure function of the seed, so two runs of the projection
    /// produce byte-identical canonical traces (the property the
    /// `net_chaos_matrix` reproducibility test established, extended
    /// here to every fuzz seed).
    ///
    /// The full campaign cannot promise byte-identical traces: control
    /// gathers use any-source receives and abort propagation is
    /// wall-clock, so checkpoint placement under kills is
    /// thread-timing-dependent. The determinism test therefore checks
    /// outputs + verdicts on the full campaign and byte-identical
    /// traces on this projection.
    pub fn determinized(&self) -> Scenario {
        let mut net = self.net.clone();
        net.drop_ppm = 0;
        net.partitions.clear();
        net.retransmit = RetransmitPolicy {
            base_delay_us: 3_600_000_000,
            max_delay_us: 3_600_000_000,
            budget: 32,
        };
        Scenario {
            interval: None,
            schedule: FailureSchedule::none(),
            faults: FaultPlan::none(),
            tiers: None,
            keep_last: 1,
            net,
            ..self.clone()
        }
    }

    /// Total kills in the schedule (the reproducer-size metric).
    pub fn fault_count(&self) -> usize {
        self.schedule.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic() {
        for seed in 0..64u64 {
            assert_eq!(
                Scenario::from_seed(seed),
                Scenario::from_seed(seed),
                "seed {seed}"
            );
        }
        assert_ne!(Scenario::from_seed(1), Scenario::from_seed(2));
    }

    #[test]
    fn generator_covers_the_adversary_space() {
        let scenarios: Vec<Scenario> =
            (0..256).map(Scenario::from_seed).collect();
        let count = |f: &dyn Fn(&Scenario) -> bool| {
            scenarios.iter().filter(|s| f(s)).count()
        };
        assert!(count(&|s| s.tiers.is_some()) >= 64, "tiered scenarios");
        assert!(count(&|s| s.tiers.is_none()) >= 32, "flat scenarios");
        assert!(count(&|s| !s.net.is_perfect()) >= 96, "lossy wires");
        assert!(count(&|s| s.net.is_perfect()) >= 16, "perfect wires");
        assert!(count(&|s| s.schedule.is_empty()) >= 16, "kill-free");
        assert!(
            count(&|s| s.schedule.injections.len() >= 2) >= 16,
            "multi-kill scenarios"
        );
        assert!(
            count(&|s| !s.schedule.recovery_kills.is_empty()) >= 16,
            "kills during recovery"
        );
        assert!(
            count(&|s| s.schedule.localized && !s.schedule.is_empty()) >= 32,
            "localized (online-splice) recovery scenarios"
        );
        assert!(
            count(&|s| !s.schedule.localized && !s.schedule.is_empty()) >= 96,
            "full-rollback recovery scenarios"
        );
        assert!(
            count(&|s| s.interval.unwrap() <= 4) >= 16,
            "back-to-back checkpoint lines"
        );
        assert!(count(&|s| s.sync_io) >= 16, "sync I/O scenarios");
        assert!(
            count(&|s| s.faults.fail_first_puts > 0
                || s.faults.fail_each_key_once
                || s.faults.fail_put_probability > 0.0)
                >= 64,
            "storage-fault scenarios"
        );
        assert!(
            count(&|s| matches!(s.app, AppChoice::DenseCg { .. })) >= 64,
            "both apps appear"
        );
        assert!(
            count(&|s| matches!(s.chunker, Chunker::Cdc { .. })) >= 48,
            "content-defined chunking scenarios"
        );
        assert!(
            count(&|s| matches!(s.chunker, Chunker::Fixed { .. })) >= 48,
            "fixed-size chunking scenarios"
        );
        assert!(count(&|s| s.codec == Codec::Lz4) >= 64, "LZ4 scenarios");
        assert!(
            count(&|s| s.codec == Codec::PackBits) >= 64,
            "PackBits scenarios"
        );
        assert!(
            count(&|s| matches!(s.chunker, Chunker::Cdc { .. })
                && s.codec == Codec::Lz4
                && s.incremental
                && s.compression)
                >= 8,
            "the CDC+LZ4 hot path is exercised"
        );
        for s in &scenarios {
            assert!((2..=5).contains(&s.nranks));
            for &(rank, _) in &s.schedule.injections {
                assert!(rank < s.nranks, "kill targets a real rank");
            }
            for &(rank, _) in &s.schedule.recovery_kills {
                assert!(rank < s.nranks);
            }
            for p in &s.net.partitions {
                assert!(p.a < s.nranks && p.b < s.nranks);
            }
        }
    }

    #[test]
    fn determinized_strips_every_wall_clock_dimension() {
        let d = Scenario::from_seed(7).determinized();
        assert_eq!(d.interval, None, "no checkpoints");
        assert!(d.schedule.is_empty(), "no kills");
        assert_eq!(d.net.drop_ppm, 0, "no drops");
        assert!(d.net.partitions.is_empty(), "no partitions");
        assert!(d.tiers.is_none(), "no tier mover");
        assert!(
            d.net.retransmit.base_delay_us >= 3_600_000_000,
            "no timer-driven retransmits"
        );
        assert_eq!(d.app, Scenario::from_seed(7).app, "same app");
    }
}
