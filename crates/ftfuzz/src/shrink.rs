//! Delta-debugging shrinking over scenario dimensions, and the
//! reproducer renderer.
//!
//! Given a failing campaign, [`shrink`] repeatedly proposes simpler
//! scenarios — drop a kill, perfect the wire, quiet the storage, drop a
//! tier, remove a rank, halve the horizon, simplify the I/O mode — and
//! re-runs the campaign for each proposal, keeping it only when the
//! *same* failure (by [`FuzzFailure::label`]) still occurs. The loop
//! runs to a fixed point (one full pass with no accepted proposal) or
//! until the run budget is exhausted. [`reproducer`] then renders the
//! shrunk scenario as a self-contained `#[test]`-shaped snippet.

use std::fmt::Write as _;

use ftsim::FailureSchedule;
use simmpi::NetCond;

use crate::campaign::{run_campaign, FuzzFailure, Plant};
use crate::scenario::Scenario;

/// What shrinking produced.
#[derive(Debug)]
pub struct ShrinkOutcome {
    /// The minimal scenario that still fails.
    pub scenario: Scenario,
    /// The failure it still produces.
    pub failure: FuzzFailure,
    /// Campaign re-runs spent.
    pub runs: usize,
    /// Proposals accepted (0 = the original was already minimal).
    pub accepted: usize,
}

/// Every one-step simplification of `sc`, most aggressive first (delta
/// debugging works best greedily: try removing whole dimensions before
/// trimming them).
fn proposals(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut push = |cand: Scenario| {
        if cand != *sc {
            out.push(cand);
        }
    };

    // Whole-dimension removals.
    if !sc.schedule.is_empty() {
        push(Scenario {
            schedule: FailureSchedule::none(),
            ..sc.clone()
        });
    }
    if !sc.net.is_perfect() {
        push(Scenario {
            net: NetCond::perfect(),
            ..sc.clone()
        });
    }
    if sc.faults != ckptstore::FaultPlan::none() {
        push(Scenario {
            faults: ckptstore::FaultPlan::none(),
            ..sc.clone()
        });
    }
    if sc.tiers.is_some() {
        push(Scenario {
            tiers: None,
            keep_last: 1,
            ..sc.clone()
        });
    }

    // Individual kills.
    for i in 0..sc.schedule.injections.len() {
        let mut schedule = sc.schedule.clone();
        schedule.injections.remove(i);
        push(Scenario {
            schedule,
            ..sc.clone()
        });
    }
    if !sc.schedule.recovery_kills.is_empty() {
        let mut schedule = sc.schedule.clone();
        schedule.recovery_kills.clear();
        push(Scenario {
            schedule,
            ..sc.clone()
        });
    }
    // Plain rollback instead of online splice.
    if sc.schedule.localized {
        let mut schedule = sc.schedule.clone();
        schedule.localized = false;
        push(Scenario {
            schedule,
            ..sc.clone()
        });
    }

    // Fewer ranks: drop the highest rank and retarget anything that
    // referenced it.
    if sc.nranks > 2 {
        let nranks = sc.nranks - 1;
        let mut schedule = sc.schedule.clone();
        for (rank, _) in schedule
            .injections
            .iter_mut()
            .chain(schedule.recovery_kills.iter_mut())
        {
            *rank = (*rank).min(nranks - 1);
        }
        let mut net = sc.net.clone();
        net.partitions.retain(|p| p.a < nranks && p.b < nranks);
        push(Scenario {
            nranks,
            schedule,
            net,
            ..sc.clone()
        });
    }

    // Shorter horizon: halve the iterations, keeping enough room for at
    // least one checkpoint line to commit.
    let iters = sc.app.iters();
    let floor = sc.interval.unwrap_or(4).max(8);
    if iters / 2 >= floor {
        push(Scenario {
            app: sc.app.with_iters(iters / 2),
            ..sc.clone()
        });
    }

    // Simpler I/O.
    if !sc.sync_io {
        push(Scenario {
            sync_io: true,
            ..sc.clone()
        });
    }
    if sc.incremental || sc.compression {
        push(Scenario {
            incremental: false,
            compression: false,
            ..sc.clone()
        });
    }
    if sc.chunker != c3_core::Chunker::fixed(4096) {
        push(Scenario {
            chunker: c3_core::Chunker::fixed(4096),
            ..sc.clone()
        });
    }
    if sc.codec != c3_core::Codec::PackBits {
        push(Scenario {
            codec: c3_core::Codec::PackBits,
            ..sc.clone()
        });
    }
    out
}

/// Shrink a failing scenario. `plant` must match what produced the
/// original failure. Returns `None` when the scenario does not actually
/// fail (nothing to shrink). A proposal only survives when the re-run
/// fails with the same label — and, under a plant, when the plant still
/// found a site (otherwise "failure gone" and "plant skipped" would be
/// indistinguishable and shrinking would drift into trivially-passing
/// scenarios).
pub fn shrink(
    scenario: &Scenario,
    plant: Option<Plant>,
    max_runs: usize,
) -> Option<ShrinkOutcome> {
    let first = run_campaign(scenario, plant);
    let mut failure = first.failure?;
    let label = failure.label();
    let mut best = scenario.clone();
    let mut runs = 1usize;
    let mut accepted = 0usize;

    'outer: loop {
        for cand in proposals(&best) {
            if runs >= max_runs {
                break 'outer;
            }
            let out = run_campaign(&cand, plant);
            runs += 1;
            let plant_ok = plant.is_none() || out.plant_applied;
            match out.failure {
                Some(f) if plant_ok && f.label() == label => {
                    best = cand;
                    failure = f;
                    accepted += 1;
                    continue 'outer; // restart from the simpler base
                }
                _ => {}
            }
        }
        break; // fixed point: no proposal survived
    }
    Some(ShrinkOutcome {
        scenario: best,
        failure,
        runs,
        accepted,
    })
}

fn fmt_net(net: &NetCond) -> String {
    if *net == NetCond::perfect() {
        return "simmpi::NetCond::perfect()".into();
    }
    let mut s = format!(
        "simmpi::NetCond {{\n            seed: {:#x},\n            \
         drop_ppm: {},\n            dup_ppm: {},\n            \
         reorder_ppm: {},\n            reorder_span: {},\n            \
         delay_ppm: {},\n            delay_us: {},\n            \
         jitter_us: {},\n",
        net.seed,
        net.drop_ppm,
        net.dup_ppm,
        net.reorder_ppm,
        net.reorder_span,
        net.delay_ppm,
        net.delay_us,
        net.jitter_us,
    );
    for p in &net.partitions {
        let _ = writeln!(
            s,
            "            // partition {}<->{} over frames {}..{}",
            p.a, p.b, p.from, p.until
        );
    }
    if !net.partitions.is_empty() {
        let _ = writeln!(
            s,
            "            partitions: vec![{}],",
            net.partitions
                .iter()
                .map(|p| format!(
                    "simmpi::Partition {{ a: {}, b: {}, from: {}, until: {} \
                     }}",
                    p.a, p.b, p.from, p.until
                ))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    s.push_str("            ..simmpi::NetCond::perfect()\n        }");
    s
}

fn fmt_faults(plan: &ckptstore::FaultPlan) -> String {
    if *plan == ckptstore::FaultPlan::none() {
        return "ckptstore::FaultPlan::none()".into();
    }
    format!(
        "ckptstore::FaultPlan {{\n            fail_first_puts: {},\n        \
         \x20   fail_each_key_once: {},\n            fail_put_probability: \
         {:?},\n            seed: {:#x},\n            latency_base_ms: \
         {},\n            latency_jitter_ms: {},\n            \
         ..ckptstore::FaultPlan::none()\n        }}",
        plan.fail_first_puts,
        plan.fail_each_key_once,
        plan.fail_put_probability,
        plan.seed,
        plan.latency_base_ms,
        plan.latency_jitter_ms,
    )
}

fn fmt_schedule(s: &FailureSchedule) -> String {
    if s.is_empty() {
        return "ftsim::FailureSchedule::none()".into();
    }
    let pairs = |v: &[(usize, u64)]| {
        v.iter()
            .map(|&(r, op)| format!("({r}, {op})"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "ftsim::FailureSchedule {{\n            injections: vec![{}],\n     \
         \x20      recovery_kills: vec![{}],\n            net: None,\n       \
         \x20    localized: {},\n        }}",
        pairs(&s.injections),
        pairs(&s.recovery_kills),
        s.localized,
    )
}

fn fmt_chunker(c: &c3_core::Chunker) -> String {
    match *c {
        c3_core::Chunker::Fixed { size } => {
            format!("c3_core::Chunker::Fixed {{ size: {size} }}")
        }
        c3_core::Chunker::Cdc { min, avg, max } => format!(
            "c3_core::Chunker::Cdc {{ min: {min}, avg: {avg}, max: {max} }}"
        ),
    }
}

fn fmt_tiers(t: &Option<c3_core::TierTopology>) -> String {
    match t {
        None => "None".into(),
        Some(t) => match (t.partner_replicas, t.erasure) {
            (r, None) => format!("Some(c3_core::TierTopology::partner({r}))"),
            (0, Some((d, p))) => {
                format!("Some(c3_core::TierTopology::erasure({d}, {p}))")
            }
            (r, Some((d, p))) => format!(
                "Some(c3_core::TierTopology::partner_and_erasure({r}, {d}, \
                 {p}))"
            ),
        },
    }
}

/// Render a failing scenario as a self-contained `#[test]`-shaped
/// snippet: paste it into any crate that depends on `ftfuzz` and it
/// reproduces the failure without the fuzzer loop.
pub fn reproducer(
    sc: &Scenario,
    plant: Option<Plant>,
    failure: &FuzzFailure,
) -> String {
    let plant_code = match plant {
        None => "None".to_string(),
        Some(Plant::HoistCommitBeforeDrain) => {
            "Some(ftfuzz::Plant::HoistCommitBeforeDrain)".into()
        }
    };
    let headline = failure.to_string();
    let headline = headline.lines().next().unwrap_or("failure");
    format!(
        "// ftfuzz minimal reproducer — shrunk from seed {seed:#018x}.\n\
         // Failure: {headline}\n\
         #[test]\n\
         fn ftfuzz_repro_seed_{seed:x}() {{\n\
         \x20   let scenario = ftfuzz::Scenario {{\n\
         \x20       seed: {seed:#x},\n\
         \x20       nranks: {nranks},\n\
         \x20       app: ftfuzz::AppChoice::{app:?},\n\
         \x20       interval: {interval:?},\n\
         \x20       sync_io: {sync_io},\n\
         \x20       incremental: {incremental},\n\
         \x20       compression: {compression},\n\
         \x20       chunker: {chunker},\n\
         \x20       codec: c3_core::Codec::{codec:?},\n\
         \x20       keep_last: {keep_last},\n\
         \x20       tiers: {tiers},\n\
         \x20       net: {net},\n\
         \x20       faults: {faults},\n\
         \x20       schedule: {schedule},\n\
         \x20   }};\n\
         \x20   let outcome = ftfuzz::run_campaign(&scenario, {plant_code});\n\
         \x20   assert!(\n\
         \x20       outcome.failure.is_none(),\n\
         \x20       \"{{}}\",\n\
         \x20       outcome.failure.unwrap()\n\
         \x20   );\n\
         }}\n",
        seed = sc.seed,
        nranks = sc.nranks,
        app = sc.app,
        interval = sc.interval,
        sync_io = sc.sync_io,
        incremental = sc.incremental,
        compression = sc.compression,
        chunker = fmt_chunker(&sc.chunker),
        codec = sc.codec,
        keep_last = sc.keep_last,
        tiers = fmt_tiers(&sc.tiers),
        net = fmt_net(&sc.net),
        faults = fmt_faults(&sc.faults),
        schedule = fmt_schedule(&sc.schedule),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::AppChoice;

    fn lively() -> Scenario {
        Scenario {
            seed: 0x51,
            nranks: 4,
            app: AppChoice::Laplace { n: 16, iters: 32 },
            interval: Some(8),
            sync_io: false,
            incremental: true,
            compression: true,
            chunker: c3_core::Chunker::cdc(1024),
            codec: c3_core::Codec::Lz4,
            keep_last: 2,
            tiers: Some(c3_core::TierTopology::partner(1)),
            net: NetCond::perfect().with_dup_ppm(10_000),
            faults: ckptstore::FaultPlan::none().fail_n(1),
            schedule: FailureSchedule::single(1, 40),
        }
    }

    #[test]
    fn shrink_returns_none_for_a_passing_scenario() {
        let sc = Scenario {
            schedule: FailureSchedule::none(),
            net: NetCond::perfect(),
            faults: ckptstore::FaultPlan::none(),
            tiers: None,
            keep_last: 1,
            ..lively()
        };
        assert!(shrink(&sc, None, 50).is_none());
    }

    #[test]
    fn proposals_only_simplify() {
        let sc = lively();
        let props = proposals(&sc);
        assert!(props.len() >= 6, "rich scenario, many moves");
        for p in &props {
            assert_ne!(p, &sc, "a proposal must change something");
            assert!(p.nranks >= 2);
            for &(rank, _) in &p.schedule.injections {
                assert!(rank < p.nranks, "kills stay in range");
            }
        }
        // A fully minimal scenario proposes almost nothing.
        let minimal = Scenario {
            seed: 0,
            nranks: 2,
            app: AppChoice::Laplace { n: 8, iters: 8 },
            interval: Some(8),
            sync_io: true,
            incremental: false,
            compression: false,
            chunker: c3_core::Chunker::fixed(4096),
            codec: c3_core::Codec::PackBits,
            keep_last: 1,
            tiers: None,
            net: NetCond::perfect(),
            faults: ckptstore::FaultPlan::none(),
            schedule: FailureSchedule::none(),
        };
        assert!(proposals(&minimal).is_empty());
    }

    #[test]
    fn reproducer_snippet_is_self_contained() {
        let sc = lively();
        let code = reproducer(
            &sc,
            Some(Plant::HoistCommitBeforeDrain),
            &FuzzFailure::JobError("boom".into()),
        );
        assert!(code.contains("#[test]"));
        assert!(code.contains("fn ftfuzz_repro_seed_51()"));
        assert!(code.contains("ftfuzz::Scenario {"));
        assert!(code.contains("nranks: 4"));
        assert!(code.contains("Plant::HoistCommitBeforeDrain"));
        assert!(code.contains("injections: vec![(1, 40)]"));
        assert!(code.contains("fail_first_puts: 1"));
        assert!(code.contains("dup_ppm: 10000"));
        assert!(code.contains("TierTopology::partner(1)"));
        assert!(code.contains(
            "c3_core::Chunker::Cdc { min: 256, avg: 1024, max: 4096 }"
        ));
        assert!(code.contains("c3_core::Codec::Lz4"));
        assert!(code.contains("outcome.failure.is_none()"));
    }
}
