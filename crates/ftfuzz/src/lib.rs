//! `ftfuzz` — a seeded long-horizon crash-recovery fuzzer for the C³
//! protocol stack.
//!
//! One `u64` seed derives a whole adversarial *campaign*
//! ([`Scenario::from_seed`]): world size, application (Dense CG or
//! Laplace), checkpoint cadence (including back-to-back lines), a
//! [`simmpi::NetCond`] loss/reorder/partition wire profile, a
//! [`ckptstore::FaultPlan`] of storage faults and latency, a tier
//! topology, and a composed [`ftsim::FailureSchedule`] of rank kills —
//! during async checkpoint writes, during tier drains, and during
//! recovery itself (attempt-gated double failures).
//!
//! [`run_campaign`] runs the scenario to completion against a
//! failure-free reference, asserts recovery to a correct committed
//! line, and pipes the recorded trace through the `c3verify` analyzer
//! (I1..I14 + T0), the happens-before race checker (R0..R6), and the
//! `c3obs` metrics health check. Any discrepancy becomes a
//! [`FuzzFailure`].
//!
//! On failure, [`shrink`] runs delta debugging over the scenario
//! dimensions — fewer kills, weaker network, quieter storage, fewer
//! ranks, shorter horizon — re-running the campaign at every step and
//! keeping only candidates that preserve the failure. The result is
//! rendered by [`reproducer`] as a self-contained `#[test]`-shaped
//! snippet plus the shrunk scenario.
//!
//! Entry points: `cargo xtask fuzz` (sweeps a seed range and the
//! checked-in corpus under `tests/fuzz_corpus/`), and the library API
//! used by the `fuzz_matrix` integration suite.

pub mod campaign;
pub mod corpus;
pub mod scenario;
pub mod shrink;

pub use campaign::{
    canonicalize, run_campaign, CampaignOutcome, FuzzFailure, Plant,
};
pub use corpus::{load_seeds, parse_seeds};
pub use scenario::{AppChoice, Scenario};
pub use shrink::{reproducer, shrink, ShrinkOutcome};
