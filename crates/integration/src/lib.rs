//! Host package for the workspace-level integration tests in the
//! repository-root `tests/` directory. Contains no library code.
