//! `cargo xtask` — repo-local developer tasks.
//!
//! Two tasks: `lint`, a static pass over the workspace source enforcing
//! repo-specific rules that clippy cannot express, and `fuzz`, the
//! driver loop of the `ftfuzz` seeded crash-recovery fuzzer.
//!
//! ```text
//! cargo xtask lint            # lint the workspace (CI runs this)
//! cargo xtask fuzz --seeds 64 # fuzz 64 seeded campaigns (see fuzz.rs)
//! ```
//!
//! # Rules
//!
//! * **instant-now** — no direct `Instant::now()` calls outside the
//!   files allowlisted in `crates/xtask/lint-allow.txt`. The repo's
//!   observability contract is *zero cost when off*: timing reads are
//!   only allowed behind the c3obs sampling mask or in the transport's
//!   explicitly time-based pacing paths.
//! * **hot-path-unwrap** — `unwrap()` / `expect()` in protocol hot-path
//!   files is budgeted per file (a ratchet): the allowlist records the
//!   current count, the lint fails when a file grows beyond it, and the
//!   budget is lowered as call sites are converted to typed errors.
//! * **trace-pairing** — the trace vocabulary stays analyzable: every
//!   `TraceEvent` variant declared in `crates/core/src/trace.rs` must be
//!   matched somewhere in `crates/c3verify/src/analyzer.rs` (an emitted
//!   event the analyzer ignores is an invariant hole), and any file that
//!   emits one side of a send/recv event pair (`ControlSent` /
//!   `ControlRecv`, `SuppressSent` / `SuppressRecv`) must emit the
//!   other (a component that records sends but not receipts produces
//!   traces the happens-before checker cannot order).
//!
//! Test modules are exempt: each file is scanned only up to its first
//! `#[cfg(test)]` marker, and `tests/` / `benches/` directories are not
//! scanned at all. Exit status: 0 clean, 1 findings, 2 usage/IO errors.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod fuzz;

/// Event pairs whose emitters must record both sides (rule
/// trace-pairing).
const EVENT_PAIRS: &[(&str, &str)] = &[
    ("ControlSent", "ControlRecv"),
    ("SuppressSent", "SuppressRecv"),
    ("TierDrained", "TierRecovered"),
];

/// Files whose unwrap/expect count is budgeted (rule hot-path-unwrap).
/// Directories (trailing `/`) cover every file beneath them.
const HOT_PATHS: &[&str] = &[
    "crates/core/src/process.rs",
    "crates/core/src/job.rs",
    "crates/simmpi/src/rank.rs",
    "crates/simmpi/src/netsim.rs",
    "crates/ckptpipe/src/",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {}
        Some("fuzz") => return fuzz::fuzz_cmd(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("usage: cargo xtask <lint|fuzz> [args]");
            return ExitCode::from(if args.is_empty() { 2 } else { 0 });
        }
        Some(other) => {
            eprintln!("xtask: unknown task {other}");
            return ExitCode::from(2);
        }
    }
    let root = workspace_root();
    let allow_path = root.join("crates/xtask/lint-allow.txt");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match Allow::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("xtask lint: {}: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!("xtask lint: {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
    };
    match lint(&root, &allow) {
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
        Ok(findings) if findings.is_empty() => {
            println!("xtask lint: OK");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("xtask lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: xtask always lives at `<root>/crates/xtask`.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

/// Parsed `lint-allow.txt`.
#[derive(Debug, Default)]
struct Allow {
    /// Files allowed to call `Instant::now()`.
    instant: BTreeSet<String>,
    /// Per-file unwrap/expect budget.
    unwrap_budget: BTreeMap<String, usize>,
}

impl Allow {
    fn parse(text: &str) -> Result<Allow, String> {
        let mut allow = Allow::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let rule = parts.next().unwrap_or_default();
            let path = parts
                .next()
                .ok_or_else(|| format!("line {}: missing path", lineno + 1))?;
            match rule {
                "instant-now" => {
                    allow.instant.insert(path.to_string());
                }
                "hot-path-unwrap" => {
                    let budget: usize = parts
                        .next()
                        .ok_or_else(|| {
                            format!("line {}: missing budget", lineno + 1)
                        })?
                        .parse()
                        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                    allow.unwrap_budget.insert(path.to_string(), budget);
                }
                other => {
                    return Err(format!(
                        "line {}: unknown rule {other}",
                        lineno + 1
                    ));
                }
            }
        }
        Ok(allow)
    }
}

/// Run every rule over the workspace at `root`. Returns one line per
/// finding (empty = clean).
fn lint(root: &Path, allow: &Allow) -> Result<Vec<String>, String> {
    let mut findings = Vec::new();
    let files = source_files(root)?;
    // The pattern is assembled at runtime so this file never contains
    // the literal it hunts for.
    let instant_needle = format!("Instant::{}()", "now");
    for (rel, content) in &files {
        let scanned = non_test_region(content);
        check_instant_now(rel, scanned, &instant_needle, allow, &mut findings);
        check_hot_path_unwrap(rel, scanned, allow, &mut findings);
        check_pair_emission(rel, scanned, &mut findings);
    }
    check_analyzer_coverage(root, &mut findings)?;
    Ok(findings)
}

/// All `.rs` files under `crates/*/src`, as (workspace-relative path,
/// content). `tests/`, `benches/`, generated `target/` trees, and xtask
/// itself are out of scope.
fn source_files(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates)
        .map_err(|e| format!("{}: {e}", crates.display()))?;
    for entry in entries {
        let dir = entry.map_err(|e| e.to_string())?.path();
        if dir.file_name().is_some_and(|n| n == "xtask") {
            continue;
        }
        let src = dir.join("src");
        if src.is_dir() {
            walk(&src, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(
    dir: &Path,
    root: &Path,
    out: &mut Vec<(String, String)>,
) -> Result<(), String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let content = std::fs::read_to_string(&path)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            out.push((rel, content));
        }
    }
    Ok(())
}

/// The part of a file before its first `#[cfg(test)]` marker.
fn non_test_region(content: &str) -> &str {
    match content.find("#[cfg(test)]") {
        Some(pos) => &content[..pos],
        None => content,
    }
}

fn check_instant_now(
    rel: &str,
    scanned: &str,
    needle: &str,
    allow: &Allow,
    findings: &mut Vec<String>,
) {
    if allow.instant.contains(rel) {
        return;
    }
    for (lineno, line) in scanned.lines().enumerate() {
        if line.contains(needle) && !line.trim_start().starts_with("//") {
            findings.push(format!(
                "{rel}:{}: [instant-now] direct {needle} outside a sampled \
                 obs path (allowlist: crates/xtask/lint-allow.txt)",
                lineno + 1
            ));
        }
    }
}

fn check_hot_path_unwrap(
    rel: &str,
    scanned: &str,
    allow: &Allow,
    findings: &mut Vec<String>,
) {
    let hot = HOT_PATHS.iter().any(|h| {
        if let Some(dir) = h.strip_suffix('/') {
            rel.starts_with(dir)
        } else {
            rel == *h
        }
    });
    if !hot {
        return;
    }
    let count = scanned
        .lines()
        .filter(|l| !l.trim_start().starts_with("//"))
        .map(|l| {
            l.matches(".unwrap()").count() + l.matches(".expect(").count()
        })
        .sum::<usize>();
    let budget = allow.unwrap_budget.get(rel).copied().unwrap_or(0);
    if count > budget {
        findings.push(format!(
            "{rel}: [hot-path-unwrap] {count} unwrap/expect site(s) in a \
             protocol hot path, budget {budget} (convert to typed errors \
             or raise the ratchet in crates/xtask/lint-allow.txt)"
        ));
    }
}

/// Events this file emits (via `record(TraceEvent::X` or
/// `trace_event(TraceEvent::X`), whitespace-insensitively.
fn emitted_events(scanned: &str) -> BTreeSet<String> {
    let flat: String =
        scanned.chars().filter(|c| !c.is_whitespace()).collect();
    let mut out = BTreeSet::new();
    for marker in ["record(TraceEvent::", "trace_event(TraceEvent::"] {
        let mut rest = flat.as_str();
        while let Some(pos) = rest.find(marker) {
            rest = &rest[pos + marker.len()..];
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            if !name.is_empty() {
                out.insert(name);
            }
        }
    }
    out
}

fn check_pair_emission(rel: &str, scanned: &str, findings: &mut Vec<String>) {
    let emitted = emitted_events(scanned);
    if emitted.is_empty() {
        return;
    }
    for &(a, b) in EVENT_PAIRS {
        let (has_a, has_b) = (emitted.contains(a), emitted.contains(b));
        if has_a != has_b {
            let (present, missing) = if has_a { (a, b) } else { (b, a) };
            findings.push(format!(
                "{rel}: [trace-pairing] emits TraceEvent::{present} but \
                 never TraceEvent::{missing} — one-sided emission leaves \
                 the happens-before graph unordered"
            ));
        }
    }
}

/// Every `TraceEvent` variant must be matched by the analyzer. Skipped
/// when the workspace layout is absent (fixture roots in tests).
fn check_analyzer_coverage(
    root: &Path,
    findings: &mut Vec<String>,
) -> Result<(), String> {
    let trace = root.join("crates/core/src/trace.rs");
    let analyzer = root.join("crates/c3verify/src/analyzer.rs");
    if !trace.is_file() || !analyzer.is_file() {
        return Ok(());
    }
    let trace_src = std::fs::read_to_string(&trace)
        .map_err(|e| format!("{}: {e}", trace.display()))?;
    let analyzer_src = std::fs::read_to_string(&analyzer)
        .map_err(|e| format!("{}: {e}", analyzer.display()))?;
    for variant in trace_event_variants(&trace_src) {
        if !analyzer_src.contains(&format!("TraceEvent::{variant}")) {
            findings.push(format!(
                "crates/core/src/trace.rs: [trace-pairing] TraceEvent::\
                 {variant} is never matched in crates/c3verify/src/\
                 analyzer.rs — an emitted event the analyzer ignores is \
                 an invariant hole"
            ));
        }
    }
    Ok(())
}

/// Variant names of `enum TraceEvent` (4-space-indented idents inside
/// the enum block — fields are indented deeper).
fn trace_event_variants(trace_src: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut in_enum = false;
    for line in trace_src.lines() {
        if line.starts_with("pub enum TraceEvent") {
            in_enum = true;
            continue;
        }
        if !in_enum {
            continue;
        }
        if line == "}" {
            break;
        }
        let Some(body) = line.strip_prefix("    ") else {
            continue;
        };
        if body.starts_with(' ') || body.starts_with('/') {
            continue;
        }
        let name: String = body
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        if !name.is_empty()
            && name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        {
            variants.push(name);
        }
    }
    variants
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a throwaway workspace at `<tmp>/<name>` with the given
    /// `crates/<crate>/src/<file>` contents.
    struct Fixture {
        root: PathBuf,
    }

    impl Fixture {
        fn new(name: &str, files: &[(&str, &str)]) -> Fixture {
            let root = std::env::temp_dir()
                .join(format!("xtask-lint-{}-{name}", std::process::id()));
            std::fs::remove_dir_all(&root).ok();
            for (rel, content) in files {
                let path = root.join(rel);
                std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                std::fs::write(&path, content).unwrap();
            }
            std::fs::create_dir_all(root.join("crates")).unwrap();
            Fixture { root }
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.root).ok();
        }
    }

    fn needle_line() -> String {
        format!("    let t = std::time::Instant::{}();\n", "now")
    }

    #[test]
    fn clean_fixture_passes() {
        let fx = Fixture::new(
            "clean",
            &[("crates/demo/src/lib.rs", "pub fn f() -> u32 { 41 + 1 }\n")],
        );
        let findings = lint(&fx.root, &Allow::default()).unwrap();
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unallowlisted_instant_now_is_flagged() {
        let src = format!("pub fn f() {{\n{}}}\n", needle_line());
        let fx = Fixture::new(
            "instant",
            &[("crates/demo/src/lib.rs", src.as_str())],
        );
        let findings = lint(&fx.root, &Allow::default()).unwrap();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("[instant-now]"), "{findings:?}");

        let mut allow = Allow::default();
        allow.instant.insert("crates/demo/src/lib.rs".into());
        assert!(lint(&fx.root, &allow).unwrap().is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = format!(
            "pub fn f() {{}}\n#[cfg(test)]\nmod tests {{\n fn g() \
             {{\n{}}}\n}}\n",
            needle_line()
        );
        let fx = Fixture::new(
            "testexempt",
            &[("crates/demo/src/lib.rs", src.as_str())],
        );
        assert!(lint(&fx.root, &Allow::default()).unwrap().is_empty());
    }

    #[test]
    fn hot_path_unwrap_ratchet() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    \
                   x.unwrap()\n}\npub fn g(x: Option<u32>) -> u32 {\n    \
                   x.expect(\"set\")\n}\n";
        let fx =
            Fixture::new("unwrap", &[("crates/core/src/process.rs", src)]);
        let findings = lint(&fx.root, &Allow::default()).unwrap();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("[hot-path-unwrap]"), "{findings:?}");
        assert!(findings[0].contains("2 unwrap"), "{findings:?}");

        let mut allow = Allow::default();
        allow
            .unwrap_budget
            .insert("crates/core/src/process.rs".into(), 2);
        assert!(lint(&fx.root, &allow).unwrap().is_empty());
    }

    #[test]
    fn one_sided_pair_emission_is_flagged() {
        let src = "fn f(t: &mut Tracer) {\n    t.record(TraceEvent::\
                   ControlSent { dst: 0, kind: 0, arg: 0 });\n}\n";
        let fx = Fixture::new("pair", &[("crates/demo/src/lib.rs", src)]);
        let findings = lint(&fx.root, &Allow::default()).unwrap();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("[trace-pairing]"), "{findings:?}");
        assert!(findings[0].contains("ControlRecv"), "{findings:?}");
    }

    #[test]
    fn unanalyzed_trace_variant_is_flagged() {
        let trace =
            "pub enum TraceEvent {\n    /// Doc.\n    Commit {\n        \
                     ckpt: u64,\n    },\n    Mystery,\n}\n";
        let analyzer = "fn scan(e: &TraceEvent) {\n    if let TraceEvent::\
                        Commit { .. } = e {}\n}\n";
        let fx = Fixture::new(
            "coverage",
            &[
                ("crates/core/src/trace.rs", trace),
                ("crates/c3verify/src/analyzer.rs", analyzer),
            ],
        );
        let findings = lint(&fx.root, &Allow::default()).unwrap();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("Mystery"), "{findings:?}");
    }

    #[test]
    fn allowlist_parser_rejects_unknown_rules() {
        assert!(Allow::parse("bogus-rule path").is_err());
        assert!(Allow::parse("hot-path-unwrap path notanumber").is_err());
        let allow = Allow::parse(
            "# comment\ninstant-now a/b.rs\nhot-path-unwrap c/d.rs 3\n",
        )
        .unwrap();
        assert!(allow.instant.contains("a/b.rs"));
        assert_eq!(allow.unwrap_budget.get("c/d.rs"), Some(&3));
    }

    /// The real workspace must lint clean — this is the same invocation
    /// CI runs.
    #[test]
    fn workspace_lints_clean() {
        let root = workspace_root();
        let allow_text =
            std::fs::read_to_string(root.join("crates/xtask/lint-allow.txt"))
                .unwrap();
        let allow = Allow::parse(&allow_text).unwrap();
        let findings = lint(&root, &allow).unwrap();
        assert!(findings.is_empty(), "{findings:#?}");
    }
}
