//! `cargo xtask fuzz` — the driver loop of the `ftfuzz` crash-recovery
//! fuzzer.
//!
//! For each seed in the range (or in a `--corpus` file) it derives a
//! [`ftfuzz::Scenario`], runs the campaign, and on failure runs the
//! delta-debugging shrinker and prints a minimal reproducer — a
//! self-contained `#[test]`-shaped snippet plus the shrunk scenario's
//! seed. `--plant hoist-commit` injects the known protocol bug into
//! every recorded trace, which is how CI proves the fuzzer can actually
//! find and shrink one.
//!
//! ```text
//! cargo xtask fuzz                       # 32 seeds starting at 0
//! cargo xtask fuzz --seeds 64            # the PR acceptance run
//! cargo xtask fuzz --start 1000 --seeds 8
//! cargo xtask fuzz --corpus tests/fuzz_corpus/seeds.txt
//! cargo xtask fuzz --plant hoist-commit --seeds 4
//! cargo xtask fuzz --budget-secs 600     # stop cleanly at the budget
//! ```
//!
//! Exit status: 0 every campaign clean, 1 any failure, 2 usage errors.
//! Note `Instant::now()` is fine here: xtask is a host-side tool, exempt
//! from the repo's zero-cost-when-off timing lint.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use ftfuzz::{reproducer, run_campaign, shrink, Plant, Scenario};

const USAGE: &str = "usage: cargo xtask fuzz [--seeds N] [--start S] \
                     [--corpus PATH] [--plant hoist-commit] \
                     [--shrink-runs N] [--budget-secs T]";

struct Opts {
    seeds: u64,
    start: u64,
    corpus: Option<PathBuf>,
    plant: Option<Plant>,
    shrink_runs: usize,
    budget_secs: Option<u64>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        seeds: 32,
        start: 0,
        corpus: None,
        plant: None,
        shrink_runs: 200,
        budget_secs: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--seeds" => {
                opts.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?;
            }
            "--start" => {
                opts.start = value("--start")?
                    .parse()
                    .map_err(|e| format!("--start: {e}"))?;
            }
            "--corpus" => {
                opts.corpus = Some(PathBuf::from(value("--corpus")?));
            }
            "--plant" => match value("--plant")?.as_str() {
                "hoist-commit" => {
                    opts.plant = Some(Plant::HoistCommitBeforeDrain);
                }
                other => {
                    return Err(format!(
                        "--plant: unknown bug {other:?} (known: hoist-commit)"
                    ))
                }
            },
            "--shrink-runs" => {
                opts.shrink_runs = value("--shrink-runs")?
                    .parse()
                    .map_err(|e| format!("--shrink-runs: {e}"))?;
            }
            "--budget-secs" => {
                opts.budget_secs = Some(
                    value("--budget-secs")?
                        .parse()
                        .map_err(|e| format!("--budget-secs: {e}"))?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

pub fn fuzz_cmd(args: &[String]) -> ExitCode {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) if e.is_empty() => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("xtask fuzz: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let seeds: Vec<u64> = match &opts.corpus {
        Some(path) => match ftfuzz::load_seeds(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask fuzz: {e}");
                return ExitCode::from(2);
            }
        },
        None => (opts.start..opts.start + opts.seeds).collect(),
    };

    let started = Instant::now();
    let mut failures = 0usize;
    let mut ran = 0usize;
    for &seed in &seeds {
        if let Some(budget) = opts.budget_secs {
            if started.elapsed().as_secs() >= budget {
                println!(
                    "xtask fuzz: budget of {budget}s reached after {ran} of \
                     {} seeds; stopping",
                    seeds.len()
                );
                break;
            }
        }
        let scenario = Scenario::from_seed(seed);
        let outcome = run_campaign(&scenario, opts.plant);
        ran += 1;
        match outcome.failure {
            None => {
                println!(
                    "seed {seed:#018x}: clean ({} ranks, {} kills, {} \
                     storage faults, {} restarts, committed line {:?})",
                    scenario.nranks,
                    scenario.fault_count(),
                    outcome.storage_faults,
                    outcome.restarts,
                    outcome.last_committed,
                );
            }
            Some(failure) => {
                failures += 1;
                println!("seed {seed:#018x}: FAIL [{}]", failure.label());
                println!("{failure}");
                println!("seed {seed:#018x}: shrinking...");
                match shrink(&scenario, opts.plant, opts.shrink_runs) {
                    Some(s) => {
                        println!(
                            "seed {seed:#018x}: shrunk to {} ranks, {} \
                             kills in {} runs ({} proposals accepted)",
                            s.scenario.nranks,
                            s.scenario.fault_count(),
                            s.runs,
                            s.accepted,
                        );
                        println!("--- minimal reproducer ---");
                        print!(
                            "{}",
                            reproducer(&s.scenario, opts.plant, &s.failure)
                        );
                        println!("--- end reproducer ---");
                    }
                    // The failure did not reproduce on the re-run — a
                    // flaky verdict is itself worth reporting.
                    None => println!(
                        "seed {seed:#018x}: failure did not reproduce when \
                         re-run (flaky verdict — investigate)"
                    ),
                }
            }
        }
    }

    println!(
        "xtask fuzz: {ran} campaign(s), {failures} failure(s), {}s",
        started.elapsed().as_secs(),
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
