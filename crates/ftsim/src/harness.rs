//! Chaos harness: run an application under many failure schedules and
//! verify output equivalence with a failure-free reference run.

use c3_core::{run_job, C3App, C3Config, C3Result};

use crate::schedule::FailureSchedule;

/// Outcome of a chaos campaign.
#[derive(Debug)]
pub struct ChaosReport {
    /// Schedules exercised.
    pub runs: usize,
    /// Total full rollback/restarts observed across all runs.
    pub total_restarts: usize,
    /// Total completed localized splices (online repairs without a
    /// global rollback) across all runs.
    pub total_splices: usize,
    /// Per-run recovery checkpoint ids (flattened).
    pub recoveries: Vec<u64>,
}

/// Run `app` once failure-free as the reference, then once per schedule,
/// asserting every run reproduces the reference outputs exactly.
///
/// Returns the campaign report; errors if any run fails to complete, and
/// panics (with context) if outputs diverge — divergence is a protocol
/// correctness bug, not an operational error.
pub fn chaos_check<A>(
    nprocs: usize,
    base_cfg: &C3Config,
    app: &A,
    schedules: &[FailureSchedule],
) -> C3Result<ChaosReport>
where
    A: C3App,
    A::Output: PartialEq + std::fmt::Debug,
{
    let reference = run_job(nprocs, base_cfg, None, app)?;
    assert_eq!(reference.restarts, 0, "reference run must be failure-free");
    let mut total_restarts = 0;
    let mut total_splices = 0;
    let mut recoveries = Vec::new();
    for (idx, schedule) in schedules.iter().enumerate() {
        let cfg = schedule.apply(base_cfg.clone());
        let report = run_job(nprocs, &cfg, None, app)?;
        assert_eq!(
            report.outputs, reference.outputs,
            "schedule #{idx} ({schedule:?}) diverged from the reference"
        );
        total_restarts += report.restarts;
        total_splices += report.splices;
        recoveries.extend(report.recovered_from.iter().copied());
    }
    Ok(ChaosReport {
        runs: schedules.len(),
        total_restarts,
        total_splices,
        recoveries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use c3_core::{C3Result, Process, ReduceOp};
    use ckptstore::impl_saveload_struct;

    struct StencilApp {
        iters: u64,
    }
    struct St {
        i: u64,
        x: Vec<f64>,
    }
    impl_saveload_struct!(St { i: u64, x: Vec<f64> });

    impl C3App for StencilApp {
        type State = St;
        type Output = u64;

        fn init(&self, p: &mut Process<'_>) -> C3Result<St> {
            Ok(St {
                i: 0,
                x: (0..16).map(|k| (k + p.rank()) as f64).collect(),
            })
        }

        fn run(&self, p: &mut Process<'_>, s: &mut St) -> C3Result<u64> {
            let world = p.world();
            let n = p.size();
            let right = (p.rank() + 1) % n;
            let left = (p.rank() + n - 1) % n;
            while s.i < self.iters {
                let edge = [s.x[0], s.x[15]];
                let got = p.sendrecv(
                    world,
                    right,
                    4,
                    &simmpi::MpiType::slice_to_bytes(&edge),
                    left,
                    4,
                )?;
                let halo: Vec<f64> =
                    simmpi::MpiType::bytes_to_vec(&got.payload).unwrap();
                for k in 0..16 {
                    s.x[k] = 0.5 * s.x[k] + 0.25 * halo[0] + 0.25 * halo[1];
                }
                if s.i.is_multiple_of(5) {
                    let norm: f64 = s.x.iter().map(|v| v * v).sum();
                    let total =
                        p.allreduce_t::<f64>(world, ReduceOp::Sum, &[norm])?;
                    s.x[0] += total[0].sqrt() * 1e-6;
                }
                s.i += 1;
                p.potential_checkpoint(s)?;
            }
            // Bit-stable digest of the state.
            Ok(s.x
                .iter()
                .fold(0u64, |h, v| h.wrapping_mul(31) ^ v.to_bits()))
        }
    }

    #[test]
    fn chaos_campaign_small() {
        let schedules: Vec<FailureSchedule> = (0..4)
            .map(|seed| FailureSchedule::random(seed, 3, 1, 20..80))
            .collect();
        let report = chaos_check(
            3,
            &C3Config::every_ops(15),
            &StencilApp { iters: 25 },
            &schedules,
        )
        .unwrap();
        assert_eq!(report.runs, 4);
        assert!(report.total_restarts >= 1);
    }

    #[test]
    fn chaos_with_double_failures() {
        let schedules: Vec<FailureSchedule> = (10..13)
            .map(|seed| FailureSchedule::random(seed, 3, 2, 20..120))
            .collect();
        chaos_check(
            3,
            &C3Config::every_ops(12),
            &StencilApp { iters: 30 },
            &schedules,
        )
        .unwrap();
    }
}
