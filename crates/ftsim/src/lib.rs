//! `ftsim` — failure simulation and verification harness.
//!
//! The paper's problem statement (Section 1.1) assumes unreliable
//! processors that "can fail silently at any time". This crate provides the
//! machinery to *simulate that adversary* and to verify the protocol's
//! guarantee against it:
//!
//! * [`schedule`] — seeded random failure schedules (which rank dies at
//!   which operation count), so chaos tests are reproducible;
//! * [`harness`] — run an application under many failure schedules and
//!   check that every run's outputs equal the failure-free reference
//!   (the observable definition of "the program makes progress in spite of
//!   these faults");
//! * [`metrics`] — recovery accounting: lost work, restart counts, and
//!   wall-clock overhead versus a failure-free run, used by the recovery
//!   benchmarks;
//! * [`optimum`] — Young's checkpoint-interval approximation and the
//!   first-order efficiency model it optimizes, for comparing the
//!   simulator's measured interval trade-off against theory.

#![deny(missing_docs)]

pub mod harness;
pub mod metrics;
pub mod optimum;
pub mod schedule;

pub use harness::{chaos_check, ChaosReport};
pub use metrics::RecoveryMetrics;
pub use optimum::{best_interval, expected_efficiency, young_interval};
pub use schedule::FailureSchedule;
