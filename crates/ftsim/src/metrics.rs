//! Recovery accounting for the fault-tolerance experiments.

use std::time::Duration;

use c3_core::JobReport;

/// Derived metrics comparing a faulty run against a failure-free baseline.
#[derive(Debug, Clone)]
pub struct RecoveryMetrics {
    /// Full rollback/restarts performed.
    pub restarts: usize,
    /// Completed localized splices (online repairs, no global rollback).
    pub splices: usize,
    /// Checkpoints the final attempt recovered from.
    pub recovered_from: Vec<u64>,
    /// Wall-clock time of the faulty run.
    pub faulty_elapsed: Duration,
    /// Wall-clock time of the baseline run.
    pub baseline_elapsed: Duration,
    /// `faulty / baseline` wall-clock ratio (≥ 1 in expectation).
    pub slowdown: f64,
    /// Bytes written to stable storage during the faulty run.
    pub storage_bytes: u64,
}

impl RecoveryMetrics {
    /// Compute metrics from a faulty-run report and a baseline report.
    pub fn from_reports<O>(
        faulty: &JobReport<O>,
        baseline: &JobReport<O>,
    ) -> Self {
        let slowdown = faulty.elapsed.as_secs_f64()
            / baseline.elapsed.as_secs_f64().max(1e-9);
        RecoveryMetrics {
            restarts: faulty.restarts,
            splices: faulty.splices,
            recovered_from: faulty.recovered_from.clone(),
            faulty_elapsed: faulty.elapsed,
            baseline_elapsed: baseline.elapsed,
            slowdown,
            storage_bytes: faulty.storage_bytes_written,
        }
    }

    /// One-line human-readable summary (used by the benchmark binaries).
    pub fn summary(&self) -> String {
        format!(
            "restarts={} splices={} recovered_from={:?} elapsed={:.3}s \
             baseline={:.3}s slowdown={:.2}x storage={}B",
            self.restarts,
            self.splices,
            self.recovered_from,
            self.faulty_elapsed.as_secs_f64(),
            self.baseline_elapsed.as_secs_f64(),
            self.slowdown,
            self.storage_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c3_core::ProcStats;

    fn report(elapsed_ms: u64, restarts: usize) -> JobReport<u64> {
        JobReport {
            outputs: vec![0],
            restarts,
            splices: 0,
            recovered_from: vec![1; restarts],
            stats: vec![ProcStats::default()],
            elapsed: Duration::from_millis(elapsed_ms),
            storage_bytes_written: 1024,
            last_committed: Some(3),
        }
    }

    #[test]
    fn slowdown_ratio() {
        let m =
            RecoveryMetrics::from_reports(&report(300, 2), &report(100, 0));
        assert_eq!(m.restarts, 2);
        assert!((m.slowdown - 3.0).abs() < 0.05);
        assert!(m.summary().contains("restarts=2"));
    }
}
