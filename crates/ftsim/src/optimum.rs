//! Checkpoint-interval analysis: Young's approximation and empirical
//! efficiency.
//!
//! The paper's configuration fixes a 30-second interval; the classic
//! follow-up question — *what interval minimizes expected lost time?* — is
//! answered to first order by Young's 1974 approximation
//! `τ* ≈ sqrt(2 · C · MTBF)` for checkpoint cost `C`. This module provides
//! the formula, the corresponding expected-efficiency model, and a helper
//! that sweeps measured runs across intervals so the model can be compared
//! against the simulator (used by the recovery benchmarks).

/// Young's first-order optimal checkpoint interval: `sqrt(2 · C · MTBF)`.
///
/// `checkpoint_cost` and `mtbf` may be in any single consistent unit
/// (seconds, protocol operations, ...); the result is in the same unit.
pub fn young_interval(checkpoint_cost: f64, mtbf: f64) -> f64 {
    assert!(checkpoint_cost >= 0.0 && mtbf > 0.0);
    (2.0 * checkpoint_cost * mtbf).sqrt()
}

/// First-order expected efficiency (useful work / wall time) of periodic
/// checkpointing with interval `tau`, checkpoint cost `c`, restart cost
/// `r`, and exponential failures with the given `mtbf`:
///
/// * checkpoint overhead: `c / (tau + c)` of every period is non-work;
/// * failure loss: a failure costs on average `tau / 2` of redone work
///   plus `r` of restart, and failures arrive every `mtbf`.
pub fn expected_efficiency(tau: f64, c: f64, r: f64, mtbf: f64) -> f64 {
    assert!(tau > 0.0 && c >= 0.0 && r >= 0.0 && mtbf > 0.0);
    let ckpt_overhead = c / (tau + c);
    let failure_loss = (tau / 2.0 + r) / mtbf;
    (1.0 - ckpt_overhead) * (1.0 - failure_loss).max(0.0)
}

/// Sweep [`expected_efficiency`] over candidate intervals and return the
/// best `(tau, efficiency)` pair.
pub fn best_interval(
    candidates: &[f64],
    c: f64,
    r: f64,
    mtbf: f64,
) -> (f64, f64) {
    assert!(!candidates.is_empty());
    candidates
        .iter()
        .map(|&tau| (tau, expected_efficiency(tau, c, r, mtbf)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty candidates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_matches_hand_values() {
        // C = 2 s, MTBF = 3600 s → τ* = sqrt(14400) = 120 s.
        assert_eq!(young_interval(2.0, 3600.0), 120.0);
        // Zero-cost checkpoints → checkpoint continuously.
        assert_eq!(young_interval(0.0, 1000.0), 0.0);
    }

    #[test]
    fn efficiency_is_maximized_near_youngs_interval() {
        let (c, r, mtbf) = (2.0, 5.0, 3600.0);
        let tau_star = young_interval(c, mtbf);
        let e_star = expected_efficiency(tau_star, c, r, mtbf);
        // Efficiency at τ*/4 and 4τ* must both be worse.
        assert!(expected_efficiency(tau_star / 4.0, c, r, mtbf) < e_star);
        assert!(expected_efficiency(tau_star * 4.0, c, r, mtbf) < e_star);
        // And a dense sweep's argmax lands within a factor of ~2 of τ*
        // (Young's formula is a first-order approximation).
        let candidates: Vec<f64> = (1..400).map(|k| k as f64).collect();
        let (best_tau, _) = best_interval(&candidates, c, r, mtbf);
        assert!(
            best_tau > tau_star / 2.0 && best_tau < tau_star * 2.0,
            "sweep argmax {best_tau} vs Young {tau_star}"
        );
    }

    #[test]
    fn efficiency_degrades_toward_zero_under_heavy_failures() {
        // MTBF comparable to the interval: almost no useful work.
        let e = expected_efficiency(100.0, 5.0, 20.0, 90.0);
        assert!(e < 0.4, "got {e}");
        // Failure-free limit: efficiency approaches 1 - c/(tau+c).
        let e = expected_efficiency(100.0, 5.0, 20.0, 1e12);
        assert!((e - (1.0 - 5.0 / 105.0)).abs() < 1e-6);
    }
}
