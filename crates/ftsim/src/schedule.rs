//! Seeded random failure schedules.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use c3_core::C3Config;

/// A reproducible plan of stopping failures for a job, optionally paired
/// with the network conditions the job runs under. Keeping the wire in the
/// schedule lets a chaos campaign sweep process faults and network faults
/// as one reproducible unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureSchedule {
    /// `(rank, at_op)` pairs; each fires at most once across attempts.
    pub injections: Vec<(usize, u64)>,
    /// `(rank, at_op)` pairs gated to attempt ≥ 2: the per-attempt op
    /// counter restarts at zero, so a small `at_op` here lands inside
    /// the replay/suppression window of the first restart — a failure
    /// *during recovery* (the double-failure case).
    pub recovery_kills: Vec<(usize, u64)>,
    /// Simulated interconnect conditions; `None` leaves the config's wire
    /// untouched (the perfect wire, unless the caller set one).
    pub net: Option<simmpi::NetCond>,
    /// Run the job under [`c3_core::RecoveryMode::Localized`]: rank
    /// deaths are repaired by online spare-rank substitution, falling
    /// back to full rollback only when a splice policy escalates.
    pub localized: bool,
}

impl FailureSchedule {
    /// No failures.
    pub fn none() -> Self {
        FailureSchedule {
            injections: Vec::new(),
            recovery_kills: Vec::new(),
            net: None,
            localized: false,
        }
    }

    /// A single failure.
    pub fn single(rank: usize, at_op: u64) -> Self {
        FailureSchedule {
            injections: vec![(rank, at_op)],
            ..FailureSchedule::none()
        }
    }

    /// Run this schedule's failures over the given simulated network.
    pub fn with_net(mut self, net: simmpi::NetCond) -> Self {
        self.net = Some(net);
        self
    }

    /// Repair this schedule's failures by online splice instead of
    /// global rollback (where the splice policy allows it).
    pub fn with_localized(mut self) -> Self {
        self.localized = true;
        self
    }

    /// A kill aimed at the online-splice path: one seeded-random
    /// *non-initiator* rank dies at an op drawn from `op_range`, and the
    /// schedule opts into localized recovery — under the default splice
    /// policy the death is repaired by respawn-and-replay while the
    /// survivors keep running. (Initiator deaths escalate to a full
    /// rollback by policy, so rank 0 is excluded to keep the schedule on
    /// the splice path.)
    pub fn kill_then_splice(
        seed: u64,
        nranks: usize,
        op_range: std::ops::Range<u64>,
    ) -> Self {
        assert!(nranks > 1 && !op_range.is_empty());
        let mut rng = StdRng::seed_from_u64(seed);
        let rank = rng.random_range(1..nranks);
        let at_op = rng.random_range(op_range);
        FailureSchedule::single(rank, at_op).with_localized()
    }

    /// Add one failure, keeping the plan sorted by op.
    pub fn with_injection(mut self, rank: usize, at_op: u64) -> Self {
        self.injections.push((rank, at_op));
        self.injections.sort_by_key(|&(_, op)| op);
        self
    }

    /// Merge another schedule into this one: injections and recovery
    /// kills are unioned (kept sorted by op); `other`'s wire wins when
    /// both carry one. This is what lets a campaign compose
    /// [`FailureSchedule::kill_during_async_write`],
    /// [`FailureSchedule::kill_during_tier_drain`] and
    /// [`FailureSchedule::kill_during_recovery`] into one plan.
    pub fn and(mut self, other: FailureSchedule) -> Self {
        self.injections.extend(other.injections);
        self.injections.sort_by_key(|&(_, op)| op);
        self.recovery_kills.extend(other.recovery_kills);
        self.recovery_kills.sort_by_key(|&(_, op)| op);
        if other.net.is_some() {
            self.net = other.net;
        }
        self.localized |= other.localized;
        self
    }

    /// Fold any number of schedules into one via [`FailureSchedule::and`].
    pub fn compose<I>(parts: I) -> Self
    where
        I: IntoIterator<Item = FailureSchedule>,
    {
        parts
            .into_iter()
            .fold(FailureSchedule::none(), FailureSchedule::and)
    }

    /// `count` failures at random ranks and operation counts drawn
    /// uniformly from `op_range`, reproducible from `seed`.
    pub fn random(
        seed: u64,
        nranks: usize,
        count: usize,
        op_range: std::ops::Range<u64>,
    ) -> Self {
        assert!(nranks > 0 && !op_range.is_empty());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut injections: Vec<(usize, u64)> = (0..count)
            .map(|_| {
                (
                    rng.random_range(0..nranks),
                    rng.random_range(op_range.clone()),
                )
            })
            .collect();
        // Sort by op so earlier failures fire on earlier attempts; a rank
        // can appear multiple times (repeated failures of one node).
        injections.sort_by_key(|&(_, op)| op);
        FailureSchedule {
            injections,
            ..FailureSchedule::none()
        }
    }

    /// A failure aimed at the asynchronous checkpoint-write window.
    ///
    /// With a checkpoint initiated every `interval` protocol operations,
    /// round `round`'s blobs are staged shortly after op
    /// `round * interval` and written by the pipeline's background
    /// threads while the application keeps running. The returned schedule
    /// kills one seeded-random rank a few ops into that window — while
    /// the round's writes may still be in flight — so recovery must come
    /// from the *previous committed* checkpoint, never from the
    /// half-written one.
    pub fn kill_during_async_write(
        seed: u64,
        nranks: usize,
        interval: u64,
        round: u64,
    ) -> Self {
        assert!(nranks > 0 && interval > 1 && round > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let rank = rng.random_range(0..nranks);
        let offset = rng.random_range(1..interval / 2 + 2);
        FailureSchedule::single(rank, round * interval + offset)
    }

    /// A failure aimed at the asynchronous *tier-drain* window.
    ///
    /// On a multi-level store the initiator hands each committed
    /// checkpoint to the tier mover right after commit; the mover
    /// promotes the checkpoint's keys to the partner and erasure tiers
    /// in the background while the application computes the next round.
    /// The returned schedule kills one seeded-random rank a little
    /// *later* into the round than [`kill_during_async_write`] — after
    /// round `round`'s commit, while its promotions may still be in
    /// flight — so recovery exercises the tier fall-through (the local
    /// staging copy of the committed line is intact, but deeper tiers
    /// may hold any prefix of the promotion).
    pub fn kill_during_tier_drain(
        seed: u64,
        nranks: usize,
        interval: u64,
        round: u64,
    ) -> Self {
        assert!(nranks > 0 && interval > 1 && round > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let rank = rng.random_range(0..nranks);
        let offset = rng.random_range(interval / 2..interval - 1);
        FailureSchedule::single(rank, round * interval + offset)
    }

    /// A double failure: a first kill at `first_at_op`, then a second
    /// kill aimed at the *recovery* from the first.
    ///
    /// The second kill is attempt-gated (it cannot fire before the job
    /// is restarting) and lands a seeded-random handful of ops into the
    /// restarted attempt — while the recovering ranks are still inside
    /// the replay/suppression window — so recovery must itself be
    /// restartable. Both ranks are seeded-random; the second may equal
    /// the first (the same node failing twice).
    pub fn kill_during_recovery(
        seed: u64,
        nranks: usize,
        first_at_op: u64,
    ) -> Self {
        assert!(nranks > 0 && first_at_op > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let first = rng.random_range(0..nranks);
        let second = rng.random_range(0..nranks);
        let early_op = rng.random_range(2u64..8);
        FailureSchedule {
            injections: vec![(first, first_at_op)],
            recovery_kills: vec![(second, early_op)],
            ..FailureSchedule::none()
        }
    }

    /// Geometric inter-failure gaps with the given expected spacing in
    /// protocol operations — a discrete stand-in for an exponential MTBF.
    /// Failures keep arriving until `horizon_ops`.
    pub fn mtbf(
        seed: u64,
        nranks: usize,
        mean_ops_between_failures: u64,
        horizon_ops: u64,
    ) -> Self {
        assert!(mean_ops_between_failures > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut injections = Vec::new();
        let mut t = 0u64;
        loop {
            // Geometric draw via inverse CDF on a uniform.
            let u: f64 = rng.random();
            let gap = ((1.0 - u).ln()
                / (1.0 - 1.0 / mean_ops_between_failures as f64).ln())
            .ceil()
            .max(1.0) as u64;
            t = t.saturating_add(gap);
            if t >= horizon_ops {
                break;
            }
            injections.push((rng.random_range(0..nranks), t));
        }
        FailureSchedule {
            injections,
            ..FailureSchedule::none()
        }
    }

    /// Apply this schedule to a configuration.
    pub fn apply(&self, mut cfg: C3Config) -> C3Config {
        for &(rank, at_op) in &self.injections {
            cfg = cfg.with_failure(rank, at_op);
        }
        for &(rank, at_op) in &self.recovery_kills {
            cfg = cfg.with_failure_from(rank, at_op, 2);
        }
        if let Some(net) = &self.net {
            cfg = cfg.with_net(net.clone());
        }
        if self.localized {
            cfg = cfg.with_recovery(c3_core::RecoveryMode::Localized);
        }
        cfg
    }

    /// Number of injections (recovery kills included).
    pub fn len(&self) -> usize {
        self.injections.len() + self.recovery_kills.len()
    }

    /// True if the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty() && self.recovery_kills.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_reproducible() {
        let a = FailureSchedule::random(42, 4, 5, 10..100);
        let b = FailureSchedule::random(42, 4, 5, 10..100);
        assert_eq!(a, b);
        let c = FailureSchedule::random(43, 4, 5, 10..100);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn random_respects_bounds() {
        let s = FailureSchedule::random(7, 3, 50, 10..20);
        assert_eq!(s.len(), 50);
        for &(rank, op) in &s.injections {
            assert!(rank < 3);
            assert!((10..20).contains(&op));
        }
        assert!(s.injections.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn kill_during_async_write_targets_the_write_window() {
        let a = FailureSchedule::kill_during_async_write(5, 4, 20, 3);
        let b = FailureSchedule::kill_during_async_write(5, 4, 20, 3);
        assert_eq!(a, b, "same seed must reproduce the schedule");
        assert_eq!(a.len(), 1);
        let (rank, op) = a.injections[0];
        assert!(rank < 4);
        assert!(
            (61..=71).contains(&op),
            "kill at op {op} must land just after the round-3 trigger"
        );
    }

    #[test]
    fn kill_during_tier_drain_lands_late_in_the_round() {
        let a = FailureSchedule::kill_during_tier_drain(5, 4, 20, 3);
        let b = FailureSchedule::kill_during_tier_drain(5, 4, 20, 3);
        assert_eq!(a, b, "same seed must reproduce the schedule");
        assert_eq!(a.len(), 1);
        let (rank, op) = a.injections[0];
        assert!(rank < 4);
        assert!(
            (70..79).contains(&op),
            "kill at op {op} must land in the back half of round 3"
        );
    }

    #[test]
    fn kill_during_recovery_is_a_gated_double_failure() {
        let a = FailureSchedule::kill_during_recovery(9, 4, 50);
        assert_eq!(a, FailureSchedule::kill_during_recovery(9, 4, 50));
        assert_eq!(a.injections, vec![(a.injections[0].0, 50)]);
        assert_eq!(a.recovery_kills.len(), 1);
        let (rank, op) = a.recovery_kills[0];
        assert!(rank < 4);
        assert!((2..8).contains(&op), "early in the restarted attempt");
        assert_eq!(a.len(), 2);
        let cfg = a.apply(C3Config::default());
        assert_eq!(cfg.failures.len(), 2);
        assert_eq!(cfg.failures[0].min_attempt, 1);
        assert_eq!(cfg.failures[1].min_attempt, 2, "gated to the restart");
    }

    #[test]
    fn compose_unions_schedules_and_keeps_them_sorted() {
        let a =
            FailureSchedule::single(0, 70).with_net(simmpi::NetCond::lossy(1));
        let b = FailureSchedule::single(2, 30);
        let c = FailureSchedule::kill_during_recovery(3, 4, 90);
        let all = FailureSchedule::compose([a, b, c.clone()]);
        let ops: Vec<u64> = all.injections.iter().map(|&(_, op)| op).collect();
        assert_eq!(ops, vec![30, 70, 90], "sorted by op");
        assert_eq!(all.recovery_kills, c.recovery_kills);
        assert_eq!(all.net, Some(simmpi::NetCond::lossy(1)));
        assert_eq!(all.len(), 4);
        assert!(!all.is_empty());
        // `and` prefers the right-hand wire when both are set.
        let w = FailureSchedule::none()
            .with_net(simmpi::NetCond::lossy(1))
            .and(FailureSchedule::none().with_net(simmpi::NetCond::lossy(2)));
        assert_eq!(w.net, Some(simmpi::NetCond::lossy(2)));
        // with_injection keeps the plan sorted too.
        let s = FailureSchedule::single(1, 50).with_injection(0, 10);
        assert_eq!(s.injections, vec![(0, 10), (1, 50)]);
    }

    #[test]
    fn kill_then_splice_avoids_the_initiator_and_sets_the_mode() {
        let a = FailureSchedule::kill_then_splice(11, 4, 30..90);
        assert_eq!(a, FailureSchedule::kill_then_splice(11, 4, 30..90));
        assert_eq!(a.injections.len(), 1);
        let (rank, op) = a.injections[0];
        assert!((1..4).contains(&rank), "initiator deaths escalate");
        assert!((30..90).contains(&op));
        assert!(a.localized);
        let cfg = a.apply(C3Config::default());
        assert_eq!(cfg.recovery, c3_core::RecoveryMode::Localized);
        // Composition is sticky: one localized part opts the union in.
        let all = FailureSchedule::single(0, 10).and(a);
        assert!(all.localized);
    }

    #[test]
    fn mtbf_spacing_is_roughly_mean() {
        let s = FailureSchedule::mtbf(1, 4, 100, 100_000);
        assert!(s.len() > 500, "expect ~1000 failures, got {}", s.len());
        assert!(s.len() < 2000);
    }

    #[test]
    fn apply_builds_config() {
        let cfg = FailureSchedule::single(2, 30).apply(C3Config::default());
        assert_eq!(cfg.failures.len(), 1);
        assert_eq!(cfg.failures[0].rank, 2);
        assert!(cfg.net.is_perfect(), "no net in schedule leaves the wire");
    }

    #[test]
    fn apply_installs_network_conditions() {
        let sched =
            FailureSchedule::single(1, 40).with_net(simmpi::NetCond::lossy(9));
        assert_eq!(sched, sched.clone(), "schedule stays comparable");
        let cfg = sched.apply(C3Config::default());
        assert_eq!(cfg.net, simmpi::NetCond::lossy(9));
        // A pre-set wire survives a schedule that carries none.
        let cfg2 = FailureSchedule::none()
            .apply(C3Config::default().with_net(simmpi::NetCond::lossy(7)));
        assert_eq!(cfg2.net, simmpi::NetCond::lossy(7));
    }
}
