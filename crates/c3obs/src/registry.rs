//! The metrics registry and its recording handles.
//!
//! A [`Registry`] is a cheaply-clonable handle to shared interior
//! state. Registering a metric (by name plus an optional label set)
//! takes a mutex and may allocate; re-registering the same name and
//! labels returns a handle to the *same* cells, so components on
//! different threads can share a counter without coordination.
//! Recording through a handle is lock-free: a [`Counter`] add is one
//! relaxed atomic op, a [`Histogram`] record is three. Span recording
//! ([`Registry::record_span`]) takes a mutex and allocates, which is
//! acceptable because spans mark protocol *phases* (a handful per
//! epoch), never per-message events.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{bucket_index, BUCKETS};
use crate::snapshot::{HistogramSnapshot, MetricValue, Snapshot, SpanRecord};

/// Source of unique registry ids, used by downstream caches to notice
/// when a different registry has been attached.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// A metric's identity: name plus sorted label pairs.
type Key = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut ls: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    ls.sort();
    (name.to_string(), ls)
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a signed value that can move both ways.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `d` (may be negative) to the gauge.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared cells backing one histogram.
#[derive(Debug)]
struct HistCells {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistCells {
    fn new() -> Self {
        HistCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A log2-bucketed histogram handle (see [`crate::bucket_index`]).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCells>);

impl Histogram {
    /// Record one observation — three relaxed atomic adds, no floats.
    #[inline]
    pub fn record(&self, v: u64) {
        let c = &self.0;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Tables {
    counters: BTreeMap<Key, Arc<AtomicU64>>,
    gauges: BTreeMap<Key, Arc<AtomicI64>>,
    hists: BTreeMap<Key, Arc<HistCells>>,
}

#[derive(Debug)]
struct Inner {
    id: u64,
    tables: Mutex<Tables>,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A registry of metrics and spans. Clone freely: all clones share the
/// same cells. Equality is identity (same shared interior), so config
/// structs holding an optional registry can still derive `PartialEq`.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl PartialEq for Registry {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Registry {
    /// Create an empty registry with a fresh unique [`Registry::id`].
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                tables: Mutex::new(Tables::default()),
                spans: Mutex::new(Vec::new()),
            }),
        }
    }

    /// This registry's process-unique id. Downstream caches key their
    /// registered handle bundles on it to detect registry swaps.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Register (or look up) an unlabeled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Register (or look up) a labeled counter.
    pub fn counter_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Counter {
        let mut t = self.inner.tables.lock().unwrap();
        let cell = t
            .counters
            .entry(key(name, labels))
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(cell))
    }

    /// Register (or look up) an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Register (or look up) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut t = self.inner.tables.lock().unwrap();
        let cell = t
            .gauges
            .entry(key(name, labels))
            .or_insert_with(|| Arc::new(AtomicI64::new(0)));
        Gauge(Arc::clone(cell))
    }

    /// Register (or look up) an unlabeled histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Register (or look up) a labeled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Histogram {
        let mut t = self.inner.tables.lock().unwrap();
        let cell = t
            .hists
            .entry(key(name, labels))
            .or_insert_with(|| Arc::new(HistCells::new()));
        Histogram(Arc::clone(cell))
    }

    /// Record a completed span: a named protocol phase on `rank`
    /// during `epoch` that took `nanos` nanoseconds.
    pub fn record_span(&self, name: &str, rank: u32, epoch: u64, nanos: u64) {
        self.inner.spans.lock().unwrap().push(SpanRecord {
            name: name.to_string(),
            rank,
            epoch,
            nanos,
        });
    }

    /// A point-in-time copy of every metric and span.
    pub fn snapshot(&self) -> Snapshot {
        let t = self.inner.tables.lock().unwrap();
        let counters = t
            .counters
            .iter()
            .map(|((name, labels), cell)| MetricValue {
                name: name.clone(),
                labels: labels.clone(),
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        let gauges = t
            .gauges
            .iter()
            .map(|((name, labels), cell)| MetricValue {
                name: name.clone(),
                labels: labels.clone(),
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        let histograms = t
            .hists
            .iter()
            .map(|((name, labels), cell)| {
                let buckets = cell
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n > 0).then_some((i as u8, n))
                    })
                    .collect();
                HistogramSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    count: cell.count.load(Ordering::Relaxed),
                    sum: cell.sum.load(Ordering::Relaxed),
                    buckets,
                }
            })
            .collect();
        drop(t);
        let spans = self.inner.spans.lock().unwrap().clone();
        Snapshot {
            counters,
            gauges,
            histograms,
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_dedups_by_name_and_labels() {
        let r = Registry::new();
        let a = r.counter_with("hits_total", &[("rank", "0")]);
        let b = r.counter_with("hits_total", &[("rank", "0")]);
        let c = r.counter_with("hits_total", &[("rank", "1")]);
        a.add(3);
        b.add(4);
        c.inc();
        assert_eq!(a.value(), 7, "same key shares one cell");
        assert_eq!(c.value(), 1, "different labels are distinct");
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 2);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        let a = r.counter_with("x", &[("a", "1"), ("b", "2")]);
        let b = r.counter_with("x", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.value(), 1);
    }

    #[test]
    fn histogram_counts_land_in_log2_buckets() {
        let r = Registry::new();
        let h = r.histogram("lat_ns");
        for v in [0, 1, 2, 3, 900, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 2953);
        let snap = r.snapshot();
        let hs = &snap.histograms[0];
        let get = |i: u8| {
            hs.buckets
                .iter()
                .find(|(b, _)| *b == i)
                .map(|(_, n)| *n)
                .unwrap_or(0)
        };
        assert_eq!(get(0), 1, "v=0");
        assert_eq!(get(1), 1, "v=1");
        assert_eq!(get(2), 2, "v=2,3");
        assert_eq!(get(10), 2, "v=900,1023");
        assert_eq!(get(11), 1, "v=1024");
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(g.value(), 3);
    }

    #[test]
    fn registry_identity_and_ids() {
        let r1 = Registry::new();
        let r2 = r1.clone();
        let r3 = Registry::new();
        assert_eq!(r1, r2);
        assert_ne!(r1, r3);
        assert_eq!(r1.id(), r2.id());
        assert_ne!(r1.id(), r3.id());
    }

    #[test]
    fn spans_are_recorded_in_order() {
        let r = Registry::new();
        r.record_span("local_checkpoint", 0, 1, 1000);
        r.record_span("commit", 0, 1, 2000);
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].name, "local_checkpoint");
        assert_eq!(snap.spans[1].nanos, 2000);
    }
}
