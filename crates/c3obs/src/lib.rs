//! `c3obs` — a lock-light observability layer for the C³ stack.
//!
//! The paper's entire evaluation is an overhead argument, so the
//! instrumentation that measures the protocol must not itself perturb
//! it. This crate provides exactly the primitives the rest of the
//! workspace needs and nothing more:
//!
//! * a [`Registry`] of named **counters**, **gauges**, and fixed-bucket
//!   **log2 latency histograms** — registration takes a mutex and may
//!   allocate, but recording through a pre-registered handle is a
//!   handful of relaxed atomic increments: no locks, no floats, no
//!   allocation;
//! * lightweight **span** records ([`Registry::record_span`]) for
//!   low-frequency protocol phases (initiator phases, local-checkpoint
//!   duration, log drain, recovery replay) tagged with rank and epoch;
//! * a [`Snapshot`] of everything, exportable as a JSON document
//!   (following the `c3_bench::report` flat-scalar conventions) and as
//!   an OpenMetrics/Prometheus text exposition, with hand-rolled
//!   parsers for both so round-trips can be tested without external
//!   dependencies;
//! * a `c3obs` CLI binary that renders a per-rank, per-epoch phase
//!   table from a snapshot file.
//!
//! The crate is dependency-free; downstream crates gate their use of it
//! behind an `obs` cargo feature so the entire layer compiles out.

#![deny(missing_docs)]

mod hist;
mod openmetrics;
mod registry;
mod snapshot;

pub use hist::{bucket_bound, bucket_index, Stopwatch, BUCKETS};
pub use openmetrics::{parse as parse_openmetrics, Family, FamilyKind};
pub use registry::{Counter, Gauge, Histogram, Registry};
pub use snapshot::{HistogramSnapshot, MetricValue, Snapshot, SpanRecord};
