//! `c3obs` — snapshot sub-summarizer.
//!
//! ```text
//! c3obs summarize <snapshot.json>   per-rank, per-epoch phase table
//! c3obs export    <snapshot.json>   OpenMetrics text exposition
//! ```
//!
//! Exit codes: 0 success, 1 read/parse failure, 2 usage error.

use std::collections::BTreeMap;
use std::process::ExitCode;

use c3obs::Snapshot;

fn usage() -> ExitCode {
    eprintln!("usage: c3obs <summarize|export> <snapshot.json>");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Snapshot, String> {
    let doc = std::fs::read_to_string(path)
        .map_err(|e| format!("read {path}: {e}"))?;
    Snapshot::from_json(&doc).map_err(|e| format!("parse {path}: {e}"))
}

fn fmt_us(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

fn summarize(snap: &Snapshot) {
    // Phase columns in order of first appearance; one row per
    // (rank, epoch); cells are total span time in microseconds.
    let mut phases: Vec<String> = Vec::new();
    let mut cells: BTreeMap<(u32, u64), BTreeMap<String, u64>> =
        BTreeMap::new();
    for s in &snap.spans {
        if !phases.contains(&s.name) {
            phases.push(s.name.clone());
        }
        *cells
            .entry((s.rank, s.epoch))
            .or_default()
            .entry(s.name.clone())
            .or_insert(0) += s.nanos;
    }
    if cells.is_empty() {
        println!("no spans recorded");
    } else {
        let mut widths: Vec<usize> =
            phases.iter().map(|p| p.len().max(10)).collect();
        for row in cells.values() {
            for (i, p) in phases.iter().enumerate() {
                if let Some(n) = row.get(p) {
                    widths[i] = widths[i].max(fmt_us(*n).len());
                }
            }
        }
        print!("{:>4} {:>5}", "rank", "epoch");
        for (p, w) in phases.iter().zip(&widths) {
            print!("  {p:>w$}");
        }
        println!("  (column unit: us)");
        for ((rank, epoch), row) in &cells {
            print!("{rank:>4} {epoch:>5}");
            for (p, w) in phases.iter().zip(&widths) {
                match row.get(p) {
                    Some(n) => print!("  {:>w$}", fmt_us(*n)),
                    None => print!("  {:>w$}", "-"),
                }
            }
            println!();
        }
    }
    if !snap.counters.is_empty() {
        println!();
        println!("counters (summed over labels):");
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        for c in &snap.counters {
            *totals.entry(c.name.as_str()).or_insert(0) += c.value;
        }
        for (name, total) in totals {
            println!("  {name:<40} {total}");
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (cmd, path) = match (args.get(1), args.get(2)) {
        (Some(c), Some(p)) if args.len() == 3 => (c.as_str(), p),
        _ => return usage(),
    };
    let snap = match load(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("c3obs: {e}");
            return ExitCode::from(1);
        }
    };
    let bad = snap.self_check();
    if !bad.is_empty() {
        eprintln!("c3obs: snapshot fails self-check:");
        for b in bad {
            eprintln!("  {b}");
        }
        return ExitCode::from(1);
    }
    match cmd {
        "summarize" => {
            summarize(&snap);
            ExitCode::SUCCESS
        }
        "export" => {
            print!("{}", snap.to_openmetrics());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
