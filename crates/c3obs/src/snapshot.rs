//! Point-in-time snapshots and their JSON document form.
//!
//! The JSON layout follows the `c3_bench::report` conventions: a
//! shallow document whose arrays contain only *flat objects of
//! scalars*, so downstream tooling can read any section with a
//! two-level loop. Structured fields are packed into scalar strings —
//! labels as `"k=v,k=v"`, histogram buckets as `"idx:count,..."`:
//!
//! ```json
//! {
//!   "schema": "c3obs-snapshot-v1",
//!   "counters":   [ {"name": "...", "labels": "rank=0", "value": 3} ],
//!   "gauges":     [ {"name": "...", "labels": "", "value": -1} ],
//!   "histograms": [ {"name": "...", "labels": "", "count": 7,
//!                    "sum": 2953, "buckets": "0:1,2:2"} ],
//!   "spans":      [ {"name": "...", "rank": 0, "epoch": 1,
//!                    "nanos": 1200} ]
//! }
//! ```
//!
//! [`Snapshot::from_json`] is a full hand-rolled parser (no external
//! dependency) so the CLI and the round-trip tests can read the files
//! back; [`Snapshot::self_check`] verifies internal consistency
//! (bucket sums match counts, bucket indices in range) and is part of
//! the chaos-matrix health invariants.

use crate::hist::BUCKETS;

/// One completed phase span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name (e.g. `"local_checkpoint"`).
    pub name: String,
    /// World rank the phase ran on.
    pub rank: u32,
    /// Checkpoint epoch the phase belongs to.
    pub epoch: u64,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u64,
}

/// A counter or gauge reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricValue<T> {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: T,
}

/// A histogram reading. `buckets` holds only the non-empty buckets as
/// `(bucket index, observation count)` pairs; see
/// [`crate::bucket_index`] for the value-to-bucket mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty `(bucket index, count)` pairs in ascending order.
    pub buckets: Vec<(u8, u64)>,
}

/// A point-in-time copy of a [`crate::Registry`]'s contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All counters, in deterministic (name, labels) order.
    pub counters: Vec<MetricValue<u64>>,
    /// All gauges, in deterministic (name, labels) order.
    pub gauges: Vec<MetricValue<i64>>,
    /// All histograms, in deterministic (name, labels) order.
    pub histograms: Vec<HistogramSnapshot>,
    /// All spans, in recording order.
    pub spans: Vec<SpanRecord>,
}

/// Schema tag written into (and required from) every snapshot file.
pub const SCHEMA: &str = "c3obs-snapshot-v1";

fn labels_to_str(labels: &[(String, String)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn labels_from_str(s: &str) -> Result<Vec<(String, String)>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|pair| {
            pair.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .ok_or_else(|| format!("bad label pair {pair:?}"))
        })
        .collect()
}

fn buckets_to_str(buckets: &[(u8, u64)]) -> String {
    buckets
        .iter()
        .map(|(i, n)| format!("{i}:{n}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn buckets_from_str(s: &str) -> Result<Vec<(u8, u64)>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|pair| {
            let (i, n) = pair
                .split_once(':')
                .ok_or_else(|| format!("bad bucket pair {pair:?}"))?;
            let i: u8 =
                i.parse().map_err(|_| format!("bad bucket index {i:?}"))?;
            let n: u64 =
                n.parse().map_err(|_| format!("bad bucket count {n:?}"))?;
            Ok((i, n))
        })
        .collect()
}

fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32))
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, val: &str, first: bool) {
    if !first {
        out.push_str(", ");
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\": \"");
    escape_into(out, val);
    out.push('"');
}

fn push_int_field(out: &mut String, key: &str, val: i128, first: bool) {
    if !first {
        out.push_str(", ");
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\": ");
    out.push_str(&val.to_string());
}

impl Snapshot {
    /// Serialize to the canonical snapshot JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"");
        out.push_str(SCHEMA);
        out.push_str("\",\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n    {" } else { ",\n    {" });
            push_str_field(&mut out, "name", &c.name, true);
            push_str_field(
                &mut out,
                "labels",
                &labels_to_str(&c.labels),
                false,
            );
            push_int_field(&mut out, "value", c.value as i128, false);
            out.push('}');
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n    {" } else { ",\n    {" });
            push_str_field(&mut out, "name", &g.name, true);
            push_str_field(
                &mut out,
                "labels",
                &labels_to_str(&g.labels),
                false,
            );
            push_int_field(&mut out, "value", g.value as i128, false);
            out.push('}');
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n    {" } else { ",\n    {" });
            push_str_field(&mut out, "name", &h.name, true);
            push_str_field(
                &mut out,
                "labels",
                &labels_to_str(&h.labels),
                false,
            );
            push_int_field(&mut out, "count", h.count as i128, false);
            push_int_field(&mut out, "sum", h.sum as i128, false);
            push_str_field(
                &mut out,
                "buckets",
                &buckets_to_str(&h.buckets),
                false,
            );
            out.push('}');
        }
        out.push_str("\n  ],\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n    {" } else { ",\n    {" });
            push_str_field(&mut out, "name", &s.name, true);
            push_int_field(&mut out, "rank", s.rank as i128, false);
            push_int_field(&mut out, "epoch", s.epoch as i128, false);
            push_int_field(&mut out, "nanos", s.nanos as i128, false);
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a snapshot document produced by [`Snapshot::to_json`].
    pub fn from_json(doc: &str) -> Result<Snapshot, String> {
        let mut p = Parser {
            bytes: doc.as_bytes(),
            pos: 0,
        };
        let top = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        let obj = top.as_obj("top level")?;
        match get(obj, "schema")? {
            JVal::Str(s) if s == SCHEMA => {}
            other => {
                return Err(format!(
                    "unsupported schema {other:?}; want {SCHEMA:?}"
                ))
            }
        }
        let mut snap = Snapshot::default();
        for item in get(obj, "counters")?.as_arr("counters")? {
            let o = item.as_obj("counter")?;
            snap.counters.push(MetricValue {
                name: get(o, "name")?.as_str("name")?.to_string(),
                labels: labels_from_str(get(o, "labels")?.as_str("labels")?)?,
                value: get(o, "value")?.as_u64("value")?,
            });
        }
        for item in get(obj, "gauges")?.as_arr("gauges")? {
            let o = item.as_obj("gauge")?;
            snap.gauges.push(MetricValue {
                name: get(o, "name")?.as_str("name")?.to_string(),
                labels: labels_from_str(get(o, "labels")?.as_str("labels")?)?,
                value: get(o, "value")?.as_i64("value")?,
            });
        }
        for item in get(obj, "histograms")?.as_arr("histograms")? {
            let o = item.as_obj("histogram")?;
            snap.histograms.push(HistogramSnapshot {
                name: get(o, "name")?.as_str("name")?.to_string(),
                labels: labels_from_str(get(o, "labels")?.as_str("labels")?)?,
                count: get(o, "count")?.as_u64("count")?,
                sum: get(o, "sum")?.as_u64("sum")?,
                buckets: buckets_from_str(
                    get(o, "buckets")?.as_str("buckets")?,
                )?,
            });
        }
        for item in get(obj, "spans")?.as_arr("spans")? {
            let o = item.as_obj("span")?;
            snap.spans.push(SpanRecord {
                name: get(o, "name")?.as_str("name")?.to_string(),
                rank: u32::try_from(get(o, "rank")?.as_u64("rank")?)
                    .map_err(|_| "rank out of range".to_string())?,
                epoch: get(o, "epoch")?.as_u64("epoch")?,
                nanos: get(o, "nanos")?.as_u64("nanos")?,
            });
        }
        Ok(snap)
    }

    /// Internal-consistency violations (empty when healthy): every
    /// histogram's bucket counts must sum to its `count`, bucket
    /// indices must be in range and strictly ascending, and `sum`
    /// must be zero whenever `count` is zero.
    pub fn self_check(&self) -> Vec<String> {
        let mut bad = Vec::new();
        for h in &self.histograms {
            let total: u64 = self.buckets_sum(h);
            if total != h.count {
                bad.push(format!(
                    "histogram {}: bucket sum {} != count {}",
                    h.name, total, h.count
                ));
            }
            if h.count == 0 && h.sum != 0 {
                bad.push(format!(
                    "histogram {}: empty but sum {}",
                    h.name, h.sum
                ));
            }
            let mut prev: Option<u8> = None;
            for &(i, n) in &h.buckets {
                if usize::from(i) >= BUCKETS {
                    bad.push(format!(
                        "histogram {}: bucket index {} out of range",
                        h.name, i
                    ));
                }
                if n == 0 {
                    bad.push(format!(
                        "histogram {}: empty bucket {} recorded",
                        h.name, i
                    ));
                }
                if let Some(p) = prev {
                    if i <= p {
                        bad.push(format!(
                            "histogram {}: bucket order {} after {}",
                            h.name, i, p
                        ));
                    }
                }
                prev = Some(i);
            }
        }
        bad
    }

    fn buckets_sum(&self, h: &HistogramSnapshot) -> u64 {
        h.buckets.iter().map(|(_, n)| *n).sum()
    }

    /// The value of one specific counter, if registered.
    pub fn counter_value(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<u64> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        self.counters
            .iter()
            .find(|c| c.name == name && c.labels == want)
            .map(|c| c.value)
    }

    /// Sum of a counter across all its label sets (0 if absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Total observation count of a histogram across label sets.
    pub fn histogram_count_total(&self, name: &str) -> u64 {
        self.histograms
            .iter()
            .filter(|h| h.name == name)
            .map(|h| h.count)
            .sum()
    }

    /// All spans with the given name, in recording order.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }
}

// ---------------------------------------------------------------------
// A minimal recursive-descent JSON reader, just deep enough for the
// snapshot document. No external parser dependency.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum JVal {
    Obj(Vec<(String, JVal)>),
    Arr(Vec<JVal>),
    Str(String),
    Int(i128),
}

impl JVal {
    fn as_obj(&self, what: &str) -> Result<&[(String, JVal)], String> {
        match self {
            JVal::Obj(o) => Ok(o),
            _ => Err(format!("{what}: expected object")),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[JVal], String> {
        match self {
            JVal::Arr(a) => Ok(a),
            _ => Err(format!("{what}: expected array")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            JVal::Str(s) => Ok(s),
            _ => Err(format!("{what}: expected string")),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            JVal::Int(i) => u64::try_from(*i)
                .map_err(|_| format!("{what}: out of u64 range")),
            _ => Err(format!("{what}: expected integer")),
        }
    }

    fn as_i64(&self, what: &str) -> Result<i64, String> {
        match self {
            JVal::Int(i) => i64::try_from(*i)
                .map_err(|_| format!("{what}: out of i64 range")),
            _ => Err(format!("{what}: expected integer")),
        }
    }
}

fn get<'a>(obj: &'a [(String, JVal)], key: &str) -> Result<&'a JVal, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key {key:?}"))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "dangling escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(
                                &self.bytes[self.pos..self.pos + 4],
                            )
                            .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or("bad \\u code point")?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "unsupported escape '\\{}'",
                                other as char
                            ))
                        }
                    }
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let ch = rest.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<JVal, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JVal::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JVal::Obj(fields));
                        }
                        other => {
                            return Err(format!(
                                "expected ',' or '}}', found {:?}",
                                other.map(|c| c as char)
                            ))
                        }
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JVal::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JVal::Arr(items));
                        }
                        other => {
                            return Err(format!(
                                "expected ',' or ']', found {:?}",
                                other.map(|c| c as char)
                            ))
                        }
                    }
                }
            }
            Some(b'"') => self.parse_string().map(JVal::Str),
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                if b == b'-' {
                    self.pos += 1;
                }
                while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false)
                {
                    self.pos += 1;
                }
                let text =
                    std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                text.parse::<i128>()
                    .map(JVal::Int)
                    .map_err(|_| format!("bad integer {text:?}"))
            }
            other => Err(format!(
                "unexpected byte {:?} at {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter_with("c3_commits_total", &[("rank", "0")]).add(3);
        r.counter_with("c3_commits_total", &[("rank", "1")]).add(3);
        r.gauge("io_queue_depth").set(-2);
        let h = r.histogram_with("io_write_ns", &[("kind", "chunk")]);
        for v in [0, 5, 900, 1023, 70_000] {
            h.record(v);
        }
        r.record_span("local_checkpoint", 1, 2, 48_000);
        r.snapshot()
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let snap = sample();
        let doc = snap.to_json();
        let back = Snapshot::from_json(&doc).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn self_check_accepts_real_snapshots() {
        assert!(sample().self_check().is_empty());
    }

    #[test]
    fn self_check_flags_corruption() {
        let mut snap = sample();
        snap.histograms[0].count += 1;
        let bad = snap.self_check();
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("bucket sum"), "{bad:?}");
    }

    #[test]
    fn query_helpers_see_labels() {
        let snap = sample();
        assert_eq!(
            snap.counter_value("c3_commits_total", &[("rank", "0")]),
            Some(3)
        );
        assert_eq!(snap.counter_total("c3_commits_total"), 6);
        assert_eq!(snap.counter_total("absent_total"), 0);
        assert_eq!(snap.histogram_count_total("io_write_ns"), 5);
        let spans = snap.spans_named("local_checkpoint");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].epoch, 2);
    }

    #[test]
    fn from_json_rejects_malformed() {
        for (doc, why) in [
            ("", "empty"),
            ("{}", "missing schema"),
            ("{\"schema\": \"other\"}", "wrong schema"),
            (
                "{\"schema\": \"c3obs-snapshot-v1\", \
                 \"counters\": [], \"gauges\": [], \
                 \"histograms\": [], \"spans\": []} x",
                "trailing garbage",
            ),
            (
                "{\"schema\": \"c3obs-snapshot-v1\", \
                 \"counters\": [{\"name\": \"a\", \
                 \"labels\": \"oops\", \"value\": 1}], \
                 \"gauges\": [], \"histograms\": [], \"spans\": []}",
                "bad label pair",
            ),
            (
                "{\"schema\": \"c3obs-snapshot-v1\", \
                 \"counters\": [{\"name\": \"a\", \
                 \"labels\": \"\", \"value\": -1}], \
                 \"gauges\": [], \"histograms\": [], \"spans\": []}",
                "negative counter",
            ),
        ] {
            assert!(Snapshot::from_json(doc).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = Snapshot::default();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
        assert!(back.self_check().is_empty());
    }
}
