//! Log2 histogram bucket layout and a nanosecond stopwatch.
//!
//! A histogram has [`BUCKETS`] fixed buckets; a recorded value `v`
//! lands in the bucket whose index is the *bit length* of `v`
//! (`64 - v.leading_zeros()`, with `v == 0` in bucket 0). Bucket `i`
//! therefore covers the half-open power-of-two range
//! `[2^(i-1), 2^i - 1]` and its inclusive upper bound is `2^i - 1`
//! — which is exactly the cumulative `le` boundary the OpenMetrics
//! exposition emits. The mapping is a single `leading_zeros`
//! instruction: no floats, no search, no branches beyond the atomic
//! increments themselves.

use std::time::Instant;

/// Number of buckets in every histogram: one per possible bit length
/// of a `u64` (0 through 64).
pub const BUCKETS: usize = 65;

/// The bucket index a value lands in: its bit length.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`; saturates to
/// `u64::MAX` for the last bucket).
pub fn bucket_bound(i: usize) -> u64 {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A nanosecond stopwatch for span and latency timing.
///
/// Thin wrapper over [`Instant`] that clamps to `u64` nanoseconds so
/// histogram recording stays integer-only.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bounds_bracket_their_bucket() {
        for i in 1..BUCKETS - 1 {
            let ub = bucket_bound(i);
            assert_eq!(bucket_index(ub), i, "upper bound stays inside");
            assert_eq!(bucket_index(ub + 1), i + 1, "successor leaves");
        }
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
    }
}
