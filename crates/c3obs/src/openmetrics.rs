//! OpenMetrics/Prometheus text exposition, plus a hand-rolled parser
//! used by tests to validate the exposition (the same spirit as
//! `c3_bench::report::validate` for the JSON artifacts).
//!
//! The emitter writes one family per metric name: a `# TYPE` line
//! followed by one sample line per label set. Histograms expand into
//! the conventional `<name>_bucket{le="..."}` cumulative series (the
//! `le` bounds are the inclusive log2 bucket bounds, `2^i - 1`, plus
//! `+Inf`), along with `<name>_sum` and `<name>_count`. Spans are
//! aggregated into per-(name, rank) histograms named
//! `c3_span_<name>_ns` so phase timing survives into scrape-shaped
//! output. The document ends with `# EOF`.

use std::collections::BTreeMap;

use crate::hist::{bucket_bound, BUCKETS};
use crate::snapshot::Snapshot;

/// The kind of a metric family in an exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyKind {
    /// Monotonic counter.
    Counter,
    /// Bidirectional gauge.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
}

/// One sample line of an exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name (e.g. `io_write_ns_bucket`).
    pub name: String,
    /// Label pairs in source order (including `le` for buckets).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// A parsed metric family: its `# TYPE` declaration plus samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Family name as declared.
    pub name: String,
    /// Declared kind.
    pub kind: FamilyKind,
    /// Samples belonging to the family, in source order.
    pub samples: Vec<Sample>,
}

fn escape_label(v: &str) -> String {
    let mut out = String::new();
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{body}}}")
}

fn label_block_with_le(labels: &[(String, String)], le: &str) -> String {
    let mut body = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect::<Vec<_>>();
    body.push(format!("le=\"{le}\""));
    format!("{{{}}}", body.join(","))
}

/// A span name sanitized into a metric-name segment.
fn span_metric_name(span: &str) -> String {
    let seg: String = span
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("c3_span_{seg}_ns")
}

struct HistAccum {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

fn emit_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    dense: &[u64; BUCKETS],
    count: u64,
    sum: u64,
) {
    let mut cum = 0u64;
    for (i, n) in dense.iter().enumerate() {
        if *n == 0 {
            continue;
        }
        cum += n;
        out.push_str(&format!(
            "{name}_bucket{} {cum}\n",
            label_block_with_le(labels, &bucket_bound(i).to_string())
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{} {cum}\n",
        label_block_with_le(labels, "+Inf")
    ));
    out.push_str(&format!("{name}_sum{} {sum}\n", label_block(labels)));
    out.push_str(&format!("{name}_count{} {count}\n", label_block(labels)));
}

impl Snapshot {
    /// Render the snapshot as an OpenMetrics text exposition.
    pub fn to_openmetrics(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for c in &self.counters {
            if c.name != last_family {
                out.push_str(&format!("# TYPE {} counter\n", c.name));
                last_family = c.name.clone();
            }
            out.push_str(&format!(
                "{}{} {}\n",
                c.name,
                label_block(&c.labels),
                c.value
            ));
        }
        last_family.clear();
        for g in &self.gauges {
            if g.name != last_family {
                out.push_str(&format!("# TYPE {} gauge\n", g.name));
                last_family = g.name.clone();
            }
            out.push_str(&format!(
                "{}{} {}\n",
                g.name,
                label_block(&g.labels),
                g.value
            ));
        }
        last_family.clear();
        for h in &self.histograms {
            if h.name != last_family {
                out.push_str(&format!("# TYPE {} histogram\n", h.name));
                last_family = h.name.clone();
            }
            let mut dense = [0u64; BUCKETS];
            for &(i, n) in &h.buckets {
                dense[usize::from(i)] = n;
            }
            emit_histogram(
                &mut out, &h.name, &h.labels, &dense, h.count, h.sum,
            );
        }
        // Spans, aggregated per (name, rank).
        let mut agg: BTreeMap<(String, u32), HistAccum> = BTreeMap::new();
        for s in &self.spans {
            let a = agg
                .entry((span_metric_name(&s.name), s.rank))
                .or_insert_with(|| HistAccum {
                    buckets: [0; BUCKETS],
                    count: 0,
                    sum: 0,
                });
            a.buckets[crate::hist::bucket_index(s.nanos)] += 1;
            a.count += 1;
            a.sum = a.sum.saturating_add(s.nanos);
        }
        last_family.clear();
        for ((name, rank), a) in &agg {
            if *name != last_family {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                last_family = name.clone();
            }
            let labels = vec![("rank".to_string(), rank.to_string())];
            emit_histogram(
                &mut out, name, &labels, &a.buckets, a.count, a.sum,
            );
        }
        out.push_str("# EOF\n");
        out
    }
}

// ---------------------------------------------------------------------
// Parser / validator
// ---------------------------------------------------------------------

type LabelPairs = Vec<(String, String)>;

fn parse_labels(s: &str) -> Result<(LabelPairs, &str), String> {
    // `s` starts just after '{'. Returns labels and the rest after '}'.
    let mut labels = Vec::new();
    let mut rest = s;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = rest[..eq].to_string();
        rest = &rest[eq + 1..];
        let mut chars = rest.char_indices();
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("label value not quoted: {rest:?}")),
        }
        let mut val = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                match c {
                    'n' => val.push('\n'),
                    '\\' => val.push('\\'),
                    '"' => val.push('"'),
                    other => {
                        return Err(format!("bad label escape '\\{other}'"))
                    }
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                val.push(c);
            }
        }
        let end = end.ok_or_else(|| "unterminated label value".to_string())?;
        labels.push((key, val));
        rest = &rest[end + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if let Some(r) = rest.strip_prefix('}') {
            return Ok((labels, r));
        } else {
            return Err(format!("expected ',' or '}}': {rest:?}"));
        }
    }
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn histogram_series_ok(family: &Family, errors: &mut Vec<String>) {
    // Group bucket samples by their labels-minus-le key.
    type Series = Vec<(f64, f64)>;
    let mut buckets: BTreeMap<String, Series> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    let fname = &family.name;
    for s in &family.samples {
        let base: Vec<&(String, String)> =
            s.labels.iter().filter(|(k, _)| k != "le").collect();
        let key = base
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",");
        if s.name == format!("{fname}_bucket") {
            let le = s.labels.iter().find(|(k, _)| k == "le");
            let le = match le {
                Some((_, v)) if v == "+Inf" => f64::INFINITY,
                Some((_, v)) => match v.parse::<f64>() {
                    Ok(f) => f,
                    Err(_) => {
                        errors.push(format!("{fname}: unparsable le {v:?}"));
                        continue;
                    }
                },
                None => {
                    errors.push(format!("{fname}: bucket sample without le"));
                    continue;
                }
            };
            buckets.entry(key).or_default().push((le, s.value));
        } else if s.name == format!("{fname}_count") {
            counts.insert(key, s.value);
        } else if s.name == format!("{fname}_sum") {
            // Sums are free-form; nothing to cross-check without
            // the raw observations.
        } else {
            errors.push(format!("{fname}: unexpected sample name {}", s.name));
        }
    }
    for (key, series) in &buckets {
        for w in series.windows(2) {
            if w[1].0 <= w[0].0 {
                errors.push(format!(
                    "{fname}{{{key}}}: le bounds not increasing"
                ));
            }
            if w[1].1 < w[0].1 {
                errors.push(format!(
                    "{fname}{{{key}}}: cumulative counts decrease"
                ));
            }
        }
        match series.last() {
            Some((le, last)) if le.is_infinite() => {
                if let Some(count) = counts.get(key) {
                    if count != last {
                        errors.push(format!(
                            "{fname}{{{key}}}: +Inf bucket {last} \
                             != count {count}"
                        ));
                    }
                } else {
                    errors.push(format!(
                        "{fname}{{{key}}}: missing _count sample"
                    ));
                }
            }
            _ => errors.push(format!("{fname}{{{key}}}: missing +Inf bucket")),
        }
    }
}

/// Parse and validate an OpenMetrics text exposition.
///
/// Checks: every sample belongs to a family declared by a preceding
/// `# TYPE` line; family names are declared once and are valid metric
/// names; counter samples are non-negative; histogram bucket series
/// have increasing `le` bounds, non-decreasing cumulative counts, and
/// a `+Inf` bucket equal to the `_count` sample; the document ends
/// with `# EOF`. Returns the parsed families on success.
pub fn parse(doc: &str) -> Result<Vec<Family>, String> {
    let mut families: Vec<Family> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    let mut saw_eof = false;
    for (lineno, line) in doc.lines().enumerate() {
        let n = lineno + 1;
        if saw_eof && !line.trim().is_empty() {
            errors.push(format!("line {n}: content after # EOF"));
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if rest == "EOF" {
                saw_eof = true;
            } else if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().unwrap_or("").to_string();
                let kind = match parts.next() {
                    Some("counter") => FamilyKind::Counter,
                    Some("gauge") => FamilyKind::Gauge,
                    Some("histogram") => FamilyKind::Histogram,
                    other => {
                        errors
                            .push(format!("line {n}: unknown TYPE {other:?}"));
                        continue;
                    }
                };
                if !valid_metric_name(&name) {
                    errors.push(format!(
                        "line {n}: invalid family name {name:?}"
                    ));
                }
                if families.iter().any(|f| f.name == name) {
                    errors
                        .push(format!("line {n}: duplicate TYPE for {name}"));
                    continue;
                }
                families.push(Family {
                    name,
                    kind,
                    samples: Vec::new(),
                });
            } else if rest.starts_with("HELP ") {
                // HELP lines are legal and ignored.
            } else {
                errors
                    .push(format!("line {n}: unrecognized comment {line:?}"));
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name, rest) = match line.find(['{', ' ']) {
            Some(i) => (line[..i].to_string(), &line[i..]),
            None => {
                errors.push(format!("line {n}: sample without value"));
                continue;
            }
        };
        if !valid_metric_name(&name) {
            errors.push(format!("line {n}: invalid sample name {name:?}"));
            continue;
        }
        let (labels, rest) = if let Some(r) = rest.strip_prefix('{') {
            match parse_labels(r) {
                Ok(ok) => ok,
                Err(e) => {
                    errors.push(format!("line {n}: {e}"));
                    continue;
                }
            }
        } else {
            (Vec::new(), rest)
        };
        let value_text = rest.trim();
        let value: f64 = match value_text.parse() {
            Ok(v) => v,
            Err(_) => {
                errors.push(format!("line {n}: bad value {value_text:?}"));
                continue;
            }
        };
        // Attribute the sample to its family: exact name match for
        // counters/gauges, suffixed names for histograms.
        let fam = families.iter_mut().find(|f| match f.kind {
            FamilyKind::Counter | FamilyKind::Gauge => f.name == name,
            FamilyKind::Histogram => {
                name == f.name
                    || name == format!("{}_bucket", f.name)
                    || name == format!("{}_sum", f.name)
                    || name == format!("{}_count", f.name)
            }
        });
        match fam {
            Some(f) => {
                if f.kind == FamilyKind::Counter && value < 0.0 {
                    errors.push(format!("line {n}: negative counter {name}"));
                }
                f.samples.push(Sample {
                    name,
                    labels,
                    value,
                });
            }
            None => errors.push(format!(
                "line {n}: sample {name} has no TYPE declaration"
            )),
        }
    }
    if !saw_eof {
        errors.push("missing # EOF terminator".to_string());
    }
    for f in &families {
        if f.kind == FamilyKind::Histogram {
            histogram_series_ok(f, &mut errors);
        }
    }
    if errors.is_empty() {
        Ok(families)
    } else {
        Err(errors.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter_with("mpi_msgs_sent_total", &[("rank", "0")])
            .add(10);
        r.counter_with("mpi_msgs_sent_total", &[("rank", "1")])
            .add(12);
        r.gauge("io_queue_depth").set(3);
        let h = r.histogram_with("io_write_ns", &[("kind", "chunk")]);
        for v in [3, 900, 1023, 1024, 70_000] {
            h.record(v);
        }
        r.record_span("local_checkpoint", 0, 1, 50_000);
        r.record_span("local_checkpoint", 0, 2, 61_000);
        r.record_span("commit", 0, 1, 9_000);
        r
    }

    #[test]
    fn exposition_parses_and_validates() {
        let doc = sample_registry().snapshot().to_openmetrics();
        let families = parse(&doc).unwrap();
        let counter = families
            .iter()
            .find(|f| f.name == "mpi_msgs_sent_total")
            .expect("counter family");
        assert_eq!(counter.kind, FamilyKind::Counter);
        assert_eq!(counter.samples.len(), 2);
        let hist = families
            .iter()
            .find(|f| f.name == "io_write_ns")
            .expect("histogram family");
        assert_eq!(hist.kind, FamilyKind::Histogram);
        let count = hist
            .samples
            .iter()
            .find(|s| s.name == "io_write_ns_count")
            .unwrap();
        assert_eq!(count.value, 5.0);
        // Spans surface as per-(name, rank) histograms.
        let span = families
            .iter()
            .find(|f| f.name == "c3_span_local_checkpoint_ns")
            .expect("span family");
        let c = span
            .samples
            .iter()
            .find(|s| s.name == "c3_span_local_checkpoint_ns_count")
            .unwrap();
        assert_eq!(c.value, 2.0);
    }

    #[test]
    fn buckets_are_cumulative_with_inclusive_log2_bounds() {
        let r = Registry::new();
        let h = r.histogram("lat");
        h.record(1); // bucket 1, le 1
        h.record(3); // bucket 2, le 3
        h.record(3);
        let doc = r.snapshot().to_openmetrics();
        assert!(doc.contains("lat_bucket{le=\"1\"} 1\n"), "{doc}");
        assert!(doc.contains("lat_bucket{le=\"3\"} 3\n"), "{doc}");
        assert!(doc.contains("lat_bucket{le=\"+Inf\"} 3\n"), "{doc}");
        assert!(doc.contains("lat_sum 7\n"), "{doc}");
        assert!(doc.contains("lat_count 3\n"), "{doc}");
    }

    #[test]
    fn rejects_malformed_expositions() {
        for (doc, why) in [
            ("x 1\n# EOF\n", "sample without TYPE"),
            ("# TYPE x counter\nx 1\n", "missing EOF"),
            ("# TYPE x counter\nx -1\n# EOF\n", "negative counter"),
            (
                "# TYPE x counter\n# TYPE x counter\nx 1\n# EOF\n",
                "duplicate TYPE",
            ),
            (
                "# TYPE h histogram\n\
                 h_bucket{le=\"3\"} 2\n\
                 h_bucket{le=\"1\"} 1\n\
                 h_bucket{le=\"+Inf\"} 2\n\
                 h_count 2\nh_sum 4\n# EOF\n",
                "le bounds not increasing",
            ),
            (
                "# TYPE h histogram\n\
                 h_bucket{le=\"1\"} 2\n\
                 h_bucket{le=\"+Inf\"} 1\n\
                 h_count 1\nh_sum 2\n# EOF\n",
                "cumulative counts decrease",
            ),
            (
                "# TYPE h histogram\n\
                 h_bucket{le=\"1\"} 1\n\
                 h_bucket{le=\"+Inf\"} 1\n\
                 h_count 2\nh_sum 1\n# EOF\n",
                "+Inf bucket disagrees with count",
            ),
            (
                "# TYPE h histogram\n\
                 h_bucket{le=\"1\"} 1\n\
                 h_count 1\nh_sum 1\n# EOF\n",
                "missing +Inf bucket",
            ),
            ("# TYPE x counter\nx 1\n# EOF\nx 2\n", "content after EOF"),
        ] {
            assert!(parse(doc).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn label_escapes_roundtrip() {
        let r = Registry::new();
        r.counter_with("weird_total", &[("tag", "a\"b\\c\nd")])
            .inc();
        let doc = r.snapshot().to_openmetrics();
        let families = parse(&doc).unwrap();
        let s = &families[0].samples[0];
        assert_eq!(s.labels[0].1, "a\"b\\c\nd");
    }

    #[test]
    fn empty_snapshot_is_a_valid_exposition() {
        let doc = crate::Snapshot::default().to_openmetrics();
        assert_eq!(doc, "# EOF\n");
        assert!(parse(&doc).unwrap().is_empty());
    }
}
