//! The checkpoint write pipeline.
//!
//! One [`CheckpointPipeline`] is shared by every rank of a job (it is
//! cheaply clonable). Ranks call [`CheckpointPipeline::stage`] at
//! `potentialCheckpoint` / `finalizeLog` time with an owned byte blob and
//! return to computing; writer threads chunk, deduplicate, compress and
//! store the blob with retry on transient faults. The initiator calls
//! [`CheckpointPipeline::drain`] in phase 4 — the per-checkpoint
//! [`WriteTicket`] barrier — before `CheckpointStore::commit`, so the
//! two-phase commit invariant survives asynchrony: **no checkpoint is
//! committed while any of its blobs is still in flight**, and a crash
//! mid-write recovers from the previous committed checkpoint.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use bytes::Bytes;
use ckptstore::manifest::{ChunkRef, Manifest};
use ckptstore::{
    CheckpointStore, CkptId, Codec, RankBlobKind, StorageBackend, StoreError,
    StoreResult,
};

use crate::config::{PipelineConfig, WriteMode};

/// One staged blob write. The payload is a refcounted [`Bytes`] so the
/// protocol layer can stage a checkpoint blob it still holds a view of
/// without copying it into the pipeline.
struct Job {
    ckpt: CkptId,
    rank: usize,
    kind: RankBlobKind,
    bytes: Bytes,
}

/// Per-checkpoint barrier state: how many staged blobs are still in
/// flight, and the first write error if any. The initiator's
/// [`CheckpointPipeline::drain`] waits on this before commit.
#[derive(Default)]
struct WriteTicket {
    staged: u64,
    outstanding: u64,
    error: Option<StoreError>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    /// Chunk-batch subtasks split off a blob currently being written.
    /// Workers prefer these over whole blobs so an in-flight blob's
    /// hashing/compression fans out across the pool instead of queueing
    /// behind other blobs.
    subtasks: VecDeque<ChunkTask>,
    shutdown: bool,
}

/// One contiguous span of a blob's chunks, to be hashed and encoded on
/// whichever thread picks it up (a pool worker, or the owning writer
/// helping drain its own batch). Pure CPU work: subtasks never touch
/// storage and never block, so helping cannot deadlock.
struct ChunkTask {
    /// The whole staged blob (refcounted; cloning is free).
    bytes: Bytes,
    /// Chunk boundaries of the blob, as `(start, end)` byte offsets.
    ranges: Arc<Vec<(usize, usize)>>,
    /// This task prepares `ranges[lo..hi]`.
    lo: usize,
    hi: usize,
    /// Stored forms from the previous manifest of this `(rank, kind)`
    /// stream: hits skip hashing's follow-up compression entirely.
    prev: Arc<PrevChunkMap>,
    batch: Arc<BatchState>,
}

/// Rendezvous between a blob's owner and the workers preparing its
/// chunk batches.
struct BatchState {
    inner: Mutex<BatchInner>,
    done: Condvar,
}

struct BatchInner {
    /// One slot per chunk, filled as tasks complete (manifest order is
    /// the slot order, independent of task completion order).
    results: Vec<Option<Prepared>>,
    /// Tasks still running.
    remaining: usize,
}

/// A chunk after parallel preparation: its manifest reference, plus the
/// encoded payload when the previous-manifest dedup set did not already
/// cover it (`None` = prev-set hit, nothing to store).
struct Prepared {
    chunk: ChunkRef,
    stored: Option<Vec<u8>>,
}

/// State of the async tier-drain mover: checkpoints queued for
/// promotion down the storage hierarchy, the one being drained right
/// now, and the `(ckpt, tier)` pairs already fully promoted (consumed
/// by [`CheckpointPipeline::flush_tier_drains`]).
#[derive(Default)]
struct MoverState {
    queue: VecDeque<CkptId>,
    inflight: bool,
    shutdown: bool,
    done: Vec<(CkptId, u8)>,
    errors: u64,
}

/// Cumulative pipeline counters (all monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Blobs accepted by `stage`.
    pub blobs_staged: u64,
    /// Raw bytes accepted by `stage`.
    pub bytes_staged: u64,
    /// Chunks physically written to storage.
    pub chunks_written: u64,
    /// Chunks skipped because an identical chunk was already stored.
    pub chunks_deduped: u64,
    /// Raw bytes the deduplicated chunks would have cost.
    pub bytes_deduped: u64,
    /// Chunks stored in compressed form.
    pub chunks_compressed: u64,
    /// Retries performed after transient storage faults.
    pub retries: u64,
}

#[derive(Default)]
struct StatCells {
    blobs_staged: AtomicU64,
    bytes_staged: AtomicU64,
    chunks_written: AtomicU64,
    chunks_deduped: AtomicU64,
    bytes_deduped: AtomicU64,
    chunks_compressed: AtomicU64,
    retries: AtomicU64,
}

/// Stored form `(stored_len, codec)` of each chunk address
/// `(hash128, len)` in one previously written manifest. A dedup hit
/// against this map yields the manifest entry directly — no
/// recompression needed to reconstruct what the first writer chose.
type PrevChunkMap = HashMap<(u128, u32), (u32, Codec)>;

/// The most recent [`PrevChunkMap`] per `(rank, kind)` stream, tagged
/// with the checkpoint that wrote it: the fast-path dedup set. The tag
/// lets [`CheckpointPipeline::gc_keeping`] drop sets whose manifest was
/// just collected, so dedup never trusts a chunk that only a dead
/// checkpoint referenced.
type PrevChunkSets = HashMap<(usize, u8), (CkptId, PrevChunkMap)>;

struct Shared {
    store: CheckpointStore,
    cfg: PipelineConfig,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    tickets: Mutex<HashMap<CkptId, WriteTicket>>,
    drained: Condvar,
    // Keys accepted via `stage_once`, for duplicate suppression when a
    // respawned rank re-executes an attempt against this still-running
    // pipeline (localized recovery).
    staged_once: Mutex<HashSet<(CkptId, usize, RankBlobKind)>>,
    // Dedup misses fall back to `CheckpointStore::has_chunk`, which also
    // catches chunks written by earlier job attempts.
    prev_chunks: Mutex<PrevChunkSets>,
    // Writer-vs-GC gate. A blob write holds it shared from its first
    // chunk probe to its manifest put, so chunks and the manifest that
    // makes them live become visible to GC atomically; `gc_keeping`
    // holds it exclusively so the orphan sweep can neither delete a
    // chunk a writer just deduplicated against nor reap chunks whose
    // manifest is still in flight.
    gc_gate: RwLock<()>,
    stats: StatCells,
    // Async tier-drain mover bookkeeping (empty and idle on single-tier
    // backends, where no mover thread is spawned).
    mover: Mutex<MoverState>,
    mover_cv: Condvar,
    #[cfg(feature = "obs")]
    obs: Option<crate::obs::PipeObs>,
}

/// Joins the writer threads when the last pipeline clone drops, after
/// processing everything still queued (staged blobs are never silently
/// discarded — an uncommitted checkpoint's blobs are garbage-collected by
/// the store, not by losing writes).
struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl WorkerPool {
    fn shutdown(&self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        {
            let mut m = self.shared.mover();
            m.shutdown = true;
        }
        self.shared.mover_cv.notify_all();
        for handle in self.handles.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Handle to the job-wide checkpoint write pipeline. Clones share state;
/// each rank thread and the initiator hold one.
#[derive(Clone)]
pub struct CheckpointPipeline {
    shared: Arc<Shared>,
    pool: Arc<WorkerPool>,
}

impl CheckpointPipeline {
    /// Create a pipeline over `store`, spawning writer threads when the
    /// mode is asynchronous.
    pub fn new(store: CheckpointStore, cfg: PipelineConfig) -> Self {
        #[cfg(feature = "obs")]
        let obs = cfg.obs.as_ref().map(crate::obs::PipeObs::register);
        let shared = Arc::new(Shared {
            store,
            cfg,
            #[cfg(feature = "obs")]
            obs,
            queue: Mutex::new(QueueState::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            tickets: Mutex::new(HashMap::new()),
            drained: Condvar::new(),
            staged_once: Mutex::new(HashSet::new()),
            prev_chunks: Mutex::new(HashMap::new()),
            gc_gate: RwLock::new(()),
            stats: StatCells::default(),
            mover: Mutex::new(MoverState::default()),
            mover_cv: Condvar::new(),
        });
        let mut handles = Vec::new();
        if let WriteMode::Async { writers, .. } = shared.cfg.mode {
            for _ in 0..writers.max(1) {
                let shared = Arc::clone(&shared);
                handles.push(std::thread::spawn(move || worker_loop(&shared)));
            }
        }
        // One mover thread whenever the store sits on a multi-tier
        // hierarchy (found through any decorator stack via as_tiered).
        // Sync-mode pipelines get one too: promotion is asynchronous by
        // design regardless of how staging writes happen.
        let tiered = shared
            .store
            .backend()
            .as_tiered()
            .is_some_and(|t| t.num_tiers() > 1);
        if tiered {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || mover_loop(&shared)));
        }
        CheckpointPipeline {
            pool: Arc::new(WorkerPool {
                shared: Arc::clone(&shared),
                handles: Mutex::new(handles),
            }),
            shared,
        }
    }

    /// The store this pipeline writes through.
    pub fn store(&self) -> &CheckpointStore {
        &self.shared.store
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.shared.cfg
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> PipelineStats {
        let s = &self.shared.stats;
        PipelineStats {
            blobs_staged: s.blobs_staged.load(Ordering::Relaxed),
            bytes_staged: s.bytes_staged.load(Ordering::Relaxed),
            chunks_written: s.chunks_written.load(Ordering::Relaxed),
            chunks_deduped: s.chunks_deduped.load(Ordering::Relaxed),
            bytes_deduped: s.bytes_deduped.load(Ordering::Relaxed),
            chunks_compressed: s.chunks_compressed.load(Ordering::Relaxed),
            retries: s.retries.load(Ordering::Relaxed),
        }
    }

    /// Stage one rank blob of checkpoint `ckpt` for writing.
    ///
    /// Sync mode writes on the calling thread and returns the result.
    /// Async mode enqueues (blocking only when the queue is full) and
    /// returns immediately; write errors surface at [`Self::drain`].
    pub fn stage(
        &self,
        ckpt: CkptId,
        rank: usize,
        kind: RankBlobKind,
        bytes: impl Into<Bytes>,
    ) -> StoreResult<()> {
        #[cfg(feature = "obs")]
        let timer =
            self.shared.obs.as_ref().map(|_| c3obs::Stopwatch::start());
        let res = self.stage_inner(ckpt, rank, kind, bytes.into());
        #[cfg(feature = "obs")]
        if let (Some(o), Some(t)) = (self.shared.obs.as_ref(), timer) {
            o.stage_ns.record(t.elapsed_ns());
        }
        res
    }

    /// Stage one rank blob at most once per pipeline lifetime: a repeat
    /// call for a `(ckpt, rank, kind)` this pipeline already accepted is
    /// dropped, returning `false`. A respawned rank re-executing an
    /// attempt under localized recovery re-stages blobs its dead
    /// predecessor already handed to this (shared, still-running)
    /// pipeline; writing them again would double-count blobs at the
    /// drain barrier and spend write bandwidth on bit-identical bytes.
    pub fn stage_once(
        &self,
        ckpt: CkptId,
        rank: usize,
        kind: RankBlobKind,
        bytes: impl Into<Bytes>,
    ) -> StoreResult<bool> {
        if !self
            .shared
            .staged_once
            .lock()
            .unwrap()
            .insert((ckpt, rank, kind))
        {
            return Ok(false);
        }
        match self.stage(ckpt, rank, kind, bytes) {
            Ok(()) => Ok(true),
            Err(e) => {
                // The blob never entered the queue; let a retry re-stage.
                self.shared
                    .staged_once
                    .lock()
                    .unwrap()
                    .remove(&(ckpt, rank, kind));
                Err(e)
            }
        }
    }

    fn stage_inner(
        &self,
        ckpt: CkptId,
        rank: usize,
        kind: RankBlobKind,
        bytes: Bytes,
    ) -> StoreResult<()> {
        let shared = &self.shared;
        #[cfg(feature = "obs")]
        if let Some(o) = &shared.obs {
            o.staged_bytes.add(bytes.len() as u64);
        }
        shared.stats.blobs_staged.fetch_add(1, Ordering::Relaxed);
        shared
            .stats
            .bytes_staged
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        {
            let mut tickets = shared.tickets.lock().unwrap();
            let t = tickets.entry(ckpt).or_default();
            t.staged += 1;
            t.outstanding += 1;
        }
        let job = Job {
            ckpt,
            rank,
            kind,
            bytes,
        };
        match shared.cfg.mode {
            WriteMode::Sync => {
                // The ticket is updated either way so drain sees sync and
                // async writes identically; the caller additionally gets
                // the error directly (in sync mode the write *is* on the
                // rank's critical path).
                match shared.write_blob(&job) {
                    Ok(()) => {
                        shared.complete_job(ckpt, Ok(()));
                        Ok(())
                    }
                    Err(e) => {
                        shared.complete_job(ckpt, Err(clone_error(&e)));
                        Err(e)
                    }
                }
            }
            WriteMode::Async { queue_depth, .. } => {
                let mut q = shared.queue.lock().unwrap();
                while q.jobs.len() >= queue_depth.max(1) && !q.shutdown {
                    q = shared.not_full.wait(q).unwrap();
                }
                if q.shutdown {
                    drop(q);
                    shared.complete_job(
                        ckpt,
                        Err(StoreError::Commit(
                            "checkpoint pipeline is shut down".into(),
                        )),
                    );
                    return Err(StoreError::Commit(
                        "checkpoint pipeline is shut down".into(),
                    ));
                }
                q.jobs.push_back(job);
                drop(q);
                shared.not_empty.notify_one();
                Ok(())
            }
        }
    }

    /// The drain barrier: block until every blob staged for `ckpt` — by
    /// any rank — has reached storage, then retire the ticket. Returns
    /// the number of blobs drained; propagates the first write error (a
    /// transient fault that exhausted its retries, or a permanent one),
    /// in which case the initiator must not commit `ckpt`.
    pub fn drain(&self, ckpt: CkptId) -> StoreResult<u64> {
        #[cfg(feature = "obs")]
        let timer =
            self.shared.obs.as_ref().map(|_| c3obs::Stopwatch::start());
        let res = self.drain_inner(ckpt);
        #[cfg(feature = "obs")]
        if let (Some(o), Some(t)) = (self.shared.obs.as_ref(), timer) {
            o.drain_ns.record(t.elapsed_ns());
        }
        res
    }

    fn drain_inner(&self, ckpt: CkptId) -> StoreResult<u64> {
        let mut tickets = self.shared.tickets.lock().unwrap();
        loop {
            let t = tickets.entry(ckpt).or_default();
            // Wait for every in-flight writer even when an error has
            // already been recorded: retiring the ticket while a write
            // is still outstanding would let that writer's completion
            // resurrect it at count zero and underflow `outstanding`.
            if t.outstanding == 0 {
                let mut t = tickets.remove(&ckpt).expect("entry exists");
                return match t.error.take() {
                    Some(err) => Err(err),
                    None => Ok(t.staged),
                };
            }
            tickets = self.shared.drained.wait(tickets).unwrap();
        }
    }

    /// Garbage-collect through the pipeline: run
    /// [`CheckpointStore::gc_keeping`] while no blob write is in flight.
    ///
    /// Calling the store's GC directly while background writers run is
    /// unsound: a writer that deduplicated against (or just wrote) a
    /// chunk whose referencing manifest is not yet on storage would see
    /// that chunk swept as an orphan, and the checkpoint later commits
    /// with a manifest naming a deleted chunk. The exclusive gate here
    /// serializes the sweep against each whole blob write, and dedup
    /// sets recorded by collected checkpoints' manifests are dropped so
    /// they cannot vouch for chunks the sweep removed.
    pub fn gc_keeping(&self, keep: CkptId) -> StoreResult<()> {
        let _gate = self.shared.gc_gate.write().unwrap();
        self.shared.store.gc_keeping(keep)?;
        self.shared
            .prev_chunks
            .lock()
            .unwrap()
            .retain(|_, (ckpt, _)| *ckpt >= keep);
        Ok(())
    }

    /// Hand a committed checkpoint to the async tier-drain mover, which
    /// will promote every one of its keys (blobs, manifests, their
    /// chunks, and the `COMMIT` record) down the storage hierarchy
    /// under the writer-vs-GC gate. No-op on a single-tier backend.
    ///
    /// Called by the initiator right after commit; never blocks on
    /// storage, so commit latency stays tier-local.
    pub fn schedule_tier_drain(&self, ckpt: CkptId) {
        let tiered = self
            .shared
            .store
            .backend()
            .as_tiered()
            .is_some_and(|t| t.num_tiers() > 1);
        if !tiered {
            return;
        }
        let mut m = self.shared.mover();
        if m.shutdown {
            return;
        }
        m.queue.push_back(ckpt);
        drop(m);
        self.shared.mover_cv.notify_all();
    }

    /// Block until the mover is idle, then take the `(ckpt, tier)`
    /// pairs fully promoted since the last flush, sorted. Rank 0 calls
    /// this at finalize to emit `TierDrained` trace events
    /// deterministically; tests call it to wait for the hierarchy to
    /// settle. Returns an empty list on single-tier backends.
    pub fn flush_tier_drains(&self) -> Vec<(CkptId, u8)> {
        let mut m = self.shared.mover();
        while !m.queue.is_empty() || m.inflight {
            m = self.shared.mover_cv.wait(m).unwrap();
        }
        let mut done = std::mem::take(&mut m.done);
        drop(m);
        done.sort_unstable();
        done
    }

    /// Promotions that failed permanently (retries exhausted) since the
    /// pipeline was created. A nonzero count never fails the job —
    /// commit already covered tier-local durability — but tests assert
    /// zero on healthy schedules.
    pub fn tier_drain_errors(&self) -> u64 {
        self.shared.mover().errors
    }

    /// Shut the pipeline down explicitly: finish every queued write and
    /// join the writer threads (including the tier mover). Also happens
    /// automatically when the last clone drops.
    pub fn shutdown(&self) {
        self.pool.shutdown();
    }
}

/// Work a pool thread can pick up: a chunk-preparation subtask (always
/// preferred — it unblocks a blob already in flight) or a whole blob.
enum Work {
    Chunk(ChunkTask),
    Blob(Job),
}

fn worker_loop(shared: &Shared) {
    loop {
        let work = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(task) = q.subtasks.pop_front() {
                    break Some(Work::Chunk(task));
                }
                if let Some(job) = q.jobs.pop_front() {
                    shared.not_full.notify_all();
                    break Some(Work::Blob(job));
                }
                if q.shutdown {
                    break None;
                }
                q = shared.not_empty.wait(q).unwrap();
            }
        };
        match work {
            Some(Work::Chunk(task)) => shared.run_chunk_task(task),
            Some(Work::Blob(job)) => {
                let result = shared.write_blob(&job);
                shared.complete_job(job.ckpt, result);
            }
            None => return,
        }
    }
}

fn mover_loop(shared: &Shared) {
    loop {
        let ckpt = {
            let mut m = shared.mover();
            loop {
                if let Some(ckpt) = m.queue.pop_front() {
                    m.inflight = true;
                    break ckpt;
                }
                if m.shutdown {
                    return;
                }
                m = shared.mover_cv.wait(m).unwrap();
            }
        };
        let outcome = shared.drain_checkpoint_tiers(ckpt);
        let mut m = shared.mover();
        match outcome {
            Ok(done) => m.done.extend(done),
            Err(_) => m.errors += 1,
        }
        m.inflight = false;
        drop(m);
        shared.mover_cv.notify_all();
    }
}

impl Shared {
    /// Lock the mover state (lock poisoning is fatal, as for every
    /// pipeline lock).
    fn mover(&self) -> std::sync::MutexGuard<'_, MoverState> {
        self.mover.lock().unwrap()
    }

    /// Promote every key of checkpoint `ckpt` to each lower tier, in
    /// tier order, under the shared side of the writer-vs-GC gate (so
    /// GC cannot sweep a chunk between the manifest read and its
    /// promotion). Returns the tiers fully drained. A checkpoint whose
    /// keys are already gone (collected by a later commit's GC) drains
    /// vacuously and reports nothing.
    fn drain_checkpoint_tiers(
        &self,
        ckpt: CkptId,
    ) -> StoreResult<Vec<(CkptId, u8)>> {
        let _gate = self.gc_gate.read().unwrap();
        let backend = self.store.backend();
        let Some(t) = backend.as_tiered() else {
            return Ok(Vec::new());
        };
        // The checkpoint's own keys, plus every chunk its manifests
        // reference (chunks may predate this checkpoint: promoting per
        // manifest makes each line whole on each tier by itself).
        let mut keys = t.list(&format!("ckpt/{ckpt:08}/"))?;
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let mut chunk_keys = std::collections::BTreeSet::new();
        for key in &keys {
            if !key.ends_with(".m") {
                continue;
            }
            let sealed = match t.get(key) {
                Ok(b) => b,
                Err(StoreError::Missing(_)) => continue,
                Err(e) => return Err(e),
            };
            let Some(payload) = ckptstore::unseal(&sealed) else {
                continue; // undecodable manifest: nothing to promote
            };
            if let Ok(manifest) = Manifest::decode(payload) {
                chunk_keys.extend(manifest.chunks.iter().map(ChunkRef::key));
            }
        }
        keys.extend(chunk_keys);
        let mut done = Vec::new();
        for tier in 1..t.num_tiers() {
            for key in &keys {
                self.retrying(|| t.promote(key, tier))?;
            }
            done.push((ckpt, tier as u8));
        }
        Ok(done)
    }

    fn complete_job(&self, ckpt: CkptId, result: StoreResult<()>) {
        let mut tickets = self.tickets.lock().unwrap();
        // `stage` registers the job before any writer can complete it,
        // and `drain` retires a ticket only once outstanding == 0, so
        // the ticket exists here. Tolerate (rather than resurrect) a
        // missing one: recreating it via or_default would decrement a
        // fresh counter from zero.
        if let Some(t) = tickets.get_mut(&ckpt) {
            t.outstanding = t.outstanding.saturating_sub(1);
            if let Err(err) = result {
                if t.error.is_none() {
                    t.error = Some(err);
                }
            }
        }
        drop(tickets);
        self.drained.notify_all();
    }

    fn write_blob(&self, job: &Job) -> StoreResult<()> {
        #[cfg(feature = "obs")]
        let timer = self.obs.as_ref().map(|_| c3obs::Stopwatch::start());
        let res = self.write_blob_inner(job);
        #[cfg(feature = "obs")]
        if let (Some(o), Some(t)) = (self.obs.as_ref(), timer) {
            o.write_ns.record(t.elapsed_ns());
        }
        res
    }

    fn write_blob_inner(&self, job: &Job) -> StoreResult<()> {
        // Shared side of the writer-vs-GC gate: everything this write
        // stores (chunks, then the manifest that makes them live) lands
        // atomically with respect to `CheckpointPipeline::gc_keeping`.
        let _gate = self.gc_gate.read().unwrap();
        if !self.cfg.incremental {
            return self.retrying(|| {
                self.store
                    .put_rank_blob(job.ckpt, job.rank, job.kind, &job.bytes)
            });
        }
        let mut manifest = Manifest::for_blob(&job.bytes);
        let dedup_slot = (job.rank, kind_tag(job.kind));
        let prev: Arc<PrevChunkMap> = Arc::new(
            self.prev_chunks
                .lock()
                .unwrap()
                .get(&dedup_slot)
                .map(|(_, map)| map.clone())
                .unwrap_or_default(),
        );
        // Cut first (cheap, sequential by nature: each CDC boundary
        // determines where the next chunk starts), then hash + encode
        // the pieces in parallel across the writer pool.
        let mut ranges = Vec::new();
        let mut off = 0;
        for piece in self.cfg.chunker.cut(&job.bytes) {
            ranges.push((off, off + piece.len()));
            off += piece.len();
        }
        let prepared = self.prepare_all(&job.bytes, ranges, &prev);

        // Assemble in manifest order. Fresh chunks accumulate into one
        // batched put; `batch_seen` catches within-blob duplicates,
        // which the store probe no longer can (nothing lands until the
        // batch goes out).
        let mut fresh: Vec<(ChunkRef, Vec<u8>)> = Vec::new();
        let mut batch_seen: HashSet<(u128, u32)> = HashSet::new();
        for p in prepared {
            let chunk = p.chunk;
            let addr = (chunk.hash, chunk.len);
            let known = match &p.stored {
                None => true, // previous-manifest hit, nothing encoded
                Some(_) => {
                    batch_seen.contains(&addr)
                        || self.store.has_chunk(&chunk)?
                }
            };
            if known {
                self.stats.chunks_deduped.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_deduped
                    .fetch_add(u64::from(chunk.len), Ordering::Relaxed);
                #[cfg(feature = "obs")]
                if let Some(o) = &self.obs {
                    o.dedup_hits.inc();
                }
            } else {
                #[cfg(feature = "obs")]
                if let Some(o) = &self.obs {
                    o.dedup_misses.inc();
                }
                batch_seen.insert(addr);
                fresh.push((chunk, p.stored.expect("miss carries payload")));
            }
            manifest.chunks.push(chunk);
        }
        if !fresh.is_empty() {
            let compressed =
                fresh.iter().filter(|(c, _)| c.codec != Codec::None).count()
                    as u64;
            self.put_chunk_batch(&fresh)?;
            self.stats
                .chunks_written
                .fetch_add(fresh.len() as u64, Ordering::Relaxed);
            self.stats
                .chunks_compressed
                .fetch_add(compressed, Ordering::Relaxed);
        }
        self.retrying(|| {
            self.store
                .put_rank_manifest(job.ckpt, job.rank, job.kind, &manifest)
        })?;
        self.prev_chunks.lock().unwrap().insert(
            dedup_slot,
            (
                job.ckpt,
                manifest
                    .chunks
                    .iter()
                    .map(|c| ((c.hash, c.len), (c.stored_len, c.codec)))
                    .collect(),
            ),
        );
        Ok(())
    }

    /// Hash and encode every chunk of a blob, fanning the work out
    /// across the writer pool when there is one and the blob is big
    /// enough to amortize the handoff. Results come back in manifest
    /// order regardless of which thread prepared what.
    fn prepare_all(
        &self,
        bytes: &Bytes,
        ranges: Vec<(usize, usize)>,
        prev: &Arc<PrevChunkMap>,
    ) -> Vec<Prepared> {
        let writers = match self.cfg.mode {
            WriteMode::Async { writers, .. } => writers.max(1),
            WriteMode::Sync => 0,
        };
        // Spans below this many chunks are prepared inline: the lock
        // traffic of a handoff costs more than hashing a few pieces.
        const MIN_SPAN: usize = 8;
        let n = ranges.len();
        if writers <= 1 || n < 2 * MIN_SPAN {
            return ranges
                .iter()
                .map(|&(s, e)| self.prepare_chunk(&bytes[s..e], prev))
                .collect();
        }
        let span = ((n + writers) / (writers + 1)).max(MIN_SPAN);
        let batches = n.div_ceil(span);
        let ranges = Arc::new(ranges);
        let batch = Arc::new(BatchState {
            inner: Mutex::new(BatchInner {
                results: std::iter::repeat_with(|| None).take(n).collect(),
                remaining: batches,
            }),
            done: Condvar::new(),
        });
        let task = |b: usize| ChunkTask {
            bytes: bytes.clone(),
            ranges: Arc::clone(&ranges),
            lo: b * span,
            hi: ((b + 1) * span).min(n),
            prev: Arc::clone(prev),
            batch: Arc::clone(&batch),
        };
        {
            let mut q = self.queue.lock().unwrap();
            for b in 1..batches {
                q.subtasks.push_back(task(b));
            }
        }
        self.not_empty.notify_all();
        // Work the first span ourselves, then help drain the subtask
        // queue (ours or anyone's — subtasks are pure CPU and cannot
        // block) until our batch is fully prepared.
        self.run_chunk_task(task(0));
        loop {
            if batch.inner.lock().unwrap().remaining == 0 {
                break;
            }
            let stolen = self.queue.lock().unwrap().subtasks.pop_front();
            match stolen {
                Some(t) => self.run_chunk_task(t),
                None => {
                    let mut inner = batch.inner.lock().unwrap();
                    while inner.remaining > 0 {
                        inner = batch.done.wait(inner).unwrap();
                    }
                    break;
                }
            }
        }
        let mut inner = batch.inner.lock().unwrap();
        std::mem::take(&mut inner.results)
            .into_iter()
            .map(|p| p.expect("all batches completed"))
            .collect()
    }

    /// Run one chunk-preparation subtask and publish its results.
    fn run_chunk_task(&self, task: ChunkTask) {
        let mut out = Vec::with_capacity(task.hi - task.lo);
        for idx in task.lo..task.hi {
            let (s, e) = task.ranges[idx];
            out.push(self.prepare_chunk(&task.bytes[s..e], &task.prev));
        }
        let mut inner = task.batch.inner.lock().unwrap();
        for (idx, p) in (task.lo..task.hi).zip(out) {
            inner.results[idx] = Some(p);
        }
        inner.remaining -= 1;
        let done = inner.remaining == 0;
        drop(inner);
        if done {
            task.batch.done.notify_all();
        }
    }

    /// Hash one chunk and work out its stored form: from the
    /// previous-manifest dedup map when possible (skipping compression
    /// altogether), by encoding otherwise.
    fn prepare_chunk(&self, piece: &[u8], prev: &PrevChunkMap) -> Prepared {
        let mut chunk = ChunkRef::for_piece(piece);
        #[cfg(feature = "obs")]
        if let Some(o) = &self.obs {
            o.chunk_bytes.record(piece.len() as u64);
        }
        if let Some(&(stored_len, codec)) = prev.get(&(chunk.hash, chunk.len))
        {
            chunk.stored_len = stored_len;
            chunk.codec = codec;
            return Prepared {
                chunk,
                stored: None,
            };
        }
        let (stored, codec) = self.stored_form(piece);
        chunk.stored_len = stored.len() as u32;
        chunk.codec = codec;
        #[cfg(feature = "obs")]
        if let Some(o) = &self.obs {
            o.precompress_bytes.add(piece.len() as u64);
            o.postcompress_bytes.add(stored.len() as u64);
        }
        Prepared {
            chunk,
            stored: Some(stored),
        }
    }

    /// Deterministic stored representation of a chunk: encoded with the
    /// configured codec iff compression is enabled and the encoding
    /// actually shrinks it, raw otherwise. Under [`Codec::Lz4`],
    /// RLE-friendly pages still go through PackBits (smaller and much
    /// cheaper on long runs). Must stay a pure function of the piece:
    /// dedup is first-writer-wins, so every writer has to agree on what
    /// the stored form of a given piece looks like.
    fn stored_form(&self, piece: &[u8]) -> (Vec<u8>, Codec) {
        if self.cfg.compression && self.cfg.codec != Codec::None {
            let codec = match self.cfg.codec {
                Codec::Lz4 if ckptstore::compress::rle_friendly(piece) => {
                    Codec::PackBits
                }
                c => c,
            };
            if let Some(enc) = codec.encode(piece) {
                if enc.len() < piece.len() {
                    return (enc, codec);
                }
            }
        }
        (piece.to_vec(), Codec::None)
    }

    /// Store a batch of fresh chunks: one `put_many` round-trip on the
    /// happy path. A transient batch failure falls back to per-chunk
    /// retried puts rather than retrying the whole batch — under an
    /// injected per-key fault rate `p`, a batch of `n` fails with
    /// probability `1 - (1-p)^n`, so whole-batch retry could spin
    /// near-forever while per-chunk retry converges. Chunk puts are
    /// idempotent (content-addressed, immutable), so re-putting the
    /// prefix the failed batch already landed is harmless.
    fn put_chunk_batch(
        &self,
        fresh: &[(ChunkRef, Vec<u8>)],
    ) -> StoreResult<()> {
        match self.store.put_chunks(fresh) {
            Ok(()) => Ok(()),
            Err(e) if e.is_transient() => {
                // The fallback is the batch's retry: count it as one.
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "obs")]
                if let Some(o) = &self.obs {
                    o.retries.inc();
                }
                for (chunk, stored) in fresh {
                    self.retrying(|| self.store.put_chunk(chunk, stored))?;
                }
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn retrying<T>(&self, op: impl Fn() -> StoreResult<T>) -> StoreResult<T> {
        let mut attempt: u32 = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e)
                    if e.is_transient()
                        && attempt < self.cfg.retry.max_retries =>
                {
                    let delay = self.cfg.retry.delay_ms(attempt);
                    attempt += 1;
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    #[cfg(feature = "obs")]
                    if let Some(o) = &self.obs {
                        o.retries.inc();
                    }
                    std::thread::sleep(std::time::Duration::from_millis(
                        delay,
                    ));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn kind_tag(kind: RankBlobKind) -> u8 {
    match kind {
        RankBlobKind::State => 0,
        RankBlobKind::Log => 1,
        RankBlobKind::MpiObjects => 2,
    }
}

// `StoreError` is not `Clone` (it can wrap `std::io::Error`); sync-mode
// staging needs the outcome both on the ticket and in the caller's hands.
fn clone_error(e: &StoreError) -> StoreError {
    match e {
        StoreError::Missing(k) => StoreError::Missing(k.clone()),
        StoreError::Corrupt { key, detail } => StoreError::Corrupt {
            key: key.clone(),
            detail: detail.clone(),
        },
        StoreError::Io(io) => {
            StoreError::Io(std::io::Error::new(io.kind(), io.to_string()))
        }
        StoreError::Commit(m) => StoreError::Commit(m.clone()),
        StoreError::Transient(m) => StoreError::Transient(m.clone()),
    }
}
