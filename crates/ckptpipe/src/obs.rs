//! Observability handles for the write pipeline (feature `obs`).
//!
//! One [`PipeObs`] bundle is registered per pipeline (job-wide, not
//! per-rank: writer threads serve every rank, so rank attribution of a
//! write would be arbitrary). Stage/write/drain operations happen at
//! checkpoint frequency — orders of magnitude rarer than messages — so
//! every one is timed; no sampling is needed to stay inside the
//! overhead budget.

use c3obs::{Counter, Histogram, Registry};

/// Job-wide metric handles of the checkpoint write pipeline.
pub(crate) struct PipeObs {
    /// `io_stage_ns` — latency of `stage` as seen by the calling rank
    /// (queue backpressure included; in sync mode this is the write).
    pub stage_ns: Histogram,
    /// `io_write_ns` — latency of one whole blob write (chunking,
    /// dedup probes, compression, storage puts, retries).
    pub write_ns: Histogram,
    /// `io_drain_ns` — time the initiator blocks in the drain barrier.
    pub drain_ns: Histogram,
    /// `io_retries_total` — storage operations retried after a
    /// transient fault.
    pub retries: Counter,
    /// `io_staged_bytes_total` — raw bytes accepted by `stage`.
    pub staged_bytes: Counter,
    /// `io_dedup_hits_total` — chunks not written because an identical
    /// chunk was already stored (previous-manifest set, within-blob
    /// duplicate, or store probe).
    pub dedup_hits: Counter,
    /// `io_dedup_misses_total` — chunks that had to be written.
    pub dedup_misses: Counter,
    /// `io_precompress_bytes_total` — raw bytes fed to the chunk codec
    /// (dedup hits skip compression and are not counted).
    pub precompress_bytes: Counter,
    /// `io_postcompress_bytes_total` — stored bytes those chunks came
    /// out as; the ratio against `io_precompress_bytes_total` is the
    /// achieved compression ratio.
    pub postcompress_bytes: Counter,
    /// `io_chunk_bytes` — raw size distribution of the cut chunks
    /// (interesting under content-defined chunking, where sizes vary).
    pub chunk_bytes: Histogram,
}

impl PipeObs {
    /// Register the pipeline's handle bundle in `reg`.
    pub fn register(reg: &Registry) -> Self {
        PipeObs {
            stage_ns: reg.histogram("io_stage_ns"),
            write_ns: reg.histogram("io_write_ns"),
            drain_ns: reg.histogram("io_drain_ns"),
            retries: reg.counter("io_retries_total"),
            staged_bytes: reg.counter("io_staged_bytes_total"),
            dedup_hits: reg.counter("io_dedup_hits_total"),
            dedup_misses: reg.counter("io_dedup_misses_total"),
            precompress_bytes: reg.counter("io_precompress_bytes_total"),
            postcompress_bytes: reg.counter("io_postcompress_bytes_total"),
            chunk_bytes: reg.histogram("io_chunk_bytes"),
        }
    }
}
