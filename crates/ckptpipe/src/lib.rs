//! Asynchronous, incremental checkpoint I/O for the c3rs system.
//!
//! The PPoPP 2003 protocol is *non-blocking* precisely so that useful
//! work overlaps checkpointing — but a synchronous full-snapshot write at
//! `potentialCheckpoint` time puts the entire storage cost back on the
//! rank's critical path (it dominates the paper's Figure 8 overhead at
//! 40 MB/s stable storage). This crate moves that cost off the critical
//! path without weakening the recovery guarantee:
//!
//! * **Staging** — a rank hands its snapshot bytes to
//!   [`CheckpointPipeline::stage`] and returns immediately (async mode);
//!   a bounded queue applies backpressure instead of buffering without
//!   limit.
//! * **Chunking + dedup** — writer threads cut the blob into chunks —
//!   fixed-size, or content-defined FastCDC cuts that keep dedup working
//!   when state shifts (see [`Chunker`]) — addressed by a 128-bit content
//!   hash + length, and skip chunks already stored by a previous
//!   checkpoint (incremental / delta checkpoints, per the
//!   differential-checkpointing line of work). Surviving chunks are
//!   compressed per the configured [`Codec`] (PackBits RLE or an
//!   LZ4-class block codec). Hashing and compression of one blob fan out
//!   across the writer pool as subtasks, and fresh chunks land in one
//!   batched put per blob.
//! * **Retry** — transient storage faults (see
//!   `ckptstore::FaultInjectingBackend`) are retried with exponential
//!   backoff.
//! * **Drain before commit** — the initiator calls
//!   [`CheckpointPipeline::drain`] in phase 4 of the protocol and only
//!   then `CheckpointStore::commit`. A crash mid-write therefore leaves
//!   an uncommitted, invisible checkpoint and recovery falls back to the
//!   previous committed one. The offline analyzer (`c3verify`) checks
//!   this ordering on recorded traces.
//! * **GC through the pipeline** — the initiator's post-commit
//!   [`CheckpointPipeline::gc_keeping`] serializes the store's orphan
//!   sweep against in-flight blob writes, so a chunk a writer just wrote
//!   or deduplicated against is never swept before its manifest lands.

#![deny(missing_docs)]

pub mod config;
#[cfg(feature = "obs")]
pub(crate) mod obs;
pub mod pipeline;

pub use config::{PipelineConfig, RetryPolicy, TierTopology, WriteMode};
pub use pipeline::{CheckpointPipeline, PipelineStats};

// The chunking/codec knobs live in ckptstore (the store owns the chunk
// wire format); re-exported here so pipeline users configure everything
// from one crate.
pub use ckptstore::{Chunker, Codec};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ckptstore::{
        CheckpointStore, ChunkRef, FaultInjectingBackend, FaultPlan,
        MemoryBackend, RankBlobKind, StorageBackend,
    };

    use super::*;

    fn mem_store(nranks: usize) -> (Arc<MemoryBackend>, CheckpointStore) {
        let backend = Arc::new(MemoryBackend::new());
        (backend.clone(), CheckpointStore::new(backend, nranks))
    }

    fn blob(seed: u8, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| seed.wrapping_add((i % 61) as u8))
            .collect()
    }

    fn stage_full_checkpoint(
        pipe: &CheckpointPipeline,
        ckpt: u64,
        payloads: &[Vec<u8>],
    ) {
        for (rank, payload) in payloads.iter().enumerate() {
            pipe.stage(ckpt, rank, RankBlobKind::State, payload.clone())
                .unwrap();
            pipe.stage(ckpt, rank, RankBlobKind::Log, b"log".to_vec())
                .unwrap();
        }
    }

    #[test]
    fn sync_full_mode_matches_legacy_blob_writes() {
        let (_, store) = mem_store(2);
        let pipe = CheckpointPipeline::new(
            store.clone(),
            PipelineConfig::sync_full(),
        );
        let payloads = vec![blob(1, 500), blob(2, 500)];
        stage_full_checkpoint(&pipe, 1, &payloads);
        assert_eq!(pipe.drain(1).unwrap(), 4);
        store.commit(1).unwrap();
        for (rank, payload) in payloads.iter().enumerate() {
            assert_eq!(
                store.get_rank_blob(1, rank, RankBlobKind::State).unwrap(),
                *payload
            );
        }
    }

    #[test]
    fn async_incremental_round_trips_and_dedups() {
        let (backend, store) = mem_store(1);
        let cfg = PipelineConfig::default().with_chunk_size(128);
        let pipe = CheckpointPipeline::new(store.clone(), cfg);
        let v1 = blob(7, 4096);
        pipe.stage(1, 0, RankBlobKind::State, v1.clone()).unwrap();
        pipe.stage(1, 0, RankBlobKind::Log, b"l1".to_vec()).unwrap();
        assert_eq!(pipe.drain(1).unwrap(), 2);
        store.commit(1).unwrap();
        let after_first = backend.bytes_written();

        // Second checkpoint: mutate one chunk's worth of data.
        let mut v2 = v1.clone();
        v2[200] ^= 0xFF;
        pipe.stage(2, 0, RankBlobKind::State, v2.clone()).unwrap();
        pipe.stage(2, 0, RankBlobKind::Log, b"l2".to_vec()).unwrap();
        pipe.drain(2).unwrap();
        store.commit(2).unwrap();
        let delta = backend.bytes_written() - after_first;
        // The delta is one rewritten 128-byte chunk plus the new manifest
        // (25 bytes per chunk entry for the 128-bit content address) —
        // far below rewriting the 4 KiB blob.
        assert!(
            delta < v2.len() as u64 / 3,
            "checkpoint 2 should be a small delta, wrote {delta} bytes"
        );
        let stats = pipe.stats();
        assert!(stats.chunks_deduped >= 31, "stats: {stats:?}");
        assert_eq!(
            store.get_rank_blob(2, 0, RankBlobKind::State).unwrap(),
            v2
        );
        pipe.gc_keeping(2).unwrap();
        assert_eq!(
            store.get_rank_blob(2, 0, RankBlobKind::State).unwrap(),
            v2
        );
    }

    #[test]
    fn drain_blocks_until_slow_writes_finish() {
        let (_, _) = mem_store(1);
        let backend: Arc<dyn StorageBackend> =
            Arc::new(FaultInjectingBackend::new(
                Arc::new(MemoryBackend::new()),
                FaultPlan::none().slow_ms(5),
            ));
        let store = CheckpointStore::new(backend, 2);
        let pipe = CheckpointPipeline::new(
            store.clone(),
            PipelineConfig::default().with_mode(WriteMode::Async {
                writers: 2,
                queue_depth: 4,
            }),
        );
        let payloads = vec![blob(3, 2000), blob(4, 2000)];
        stage_full_checkpoint(&pipe, 1, &payloads);
        // The barrier: after drain, commit must find every blob present.
        assert_eq!(pipe.drain(1).unwrap(), 4);
        store.commit(1).unwrap();
        assert_eq!(
            store.get_rank_blob(1, 1, RankBlobKind::State).unwrap(),
            payloads[1]
        );
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        let inject = Arc::new(FaultInjectingBackend::new(
            Arc::new(MemoryBackend::new()),
            FaultPlan::none().fail_n(3),
        ));
        let store =
            CheckpointStore::new(inject.clone() as Arc<dyn StorageBackend>, 1);
        let pipe = CheckpointPipeline::new(
            store.clone(),
            PipelineConfig::default().with_chunk_size(256),
        );
        pipe.stage(1, 0, RankBlobKind::State, blob(9, 1000))
            .unwrap();
        pipe.stage(1, 0, RankBlobKind::Log, b"log".to_vec())
            .unwrap();
        pipe.drain(1).unwrap();
        store.commit(1).unwrap();
        assert!(inject.faults_injected() >= 3);
        assert!(pipe.stats().retries >= 3, "stats: {:?}", pipe.stats());
    }

    #[test]
    fn exhausted_retries_surface_at_drain_and_block_commit() {
        let inject = Arc::new(FaultInjectingBackend::new(
            Arc::new(MemoryBackend::new()),
            FaultPlan::none().fail_n(1000),
        ));
        let store =
            CheckpointStore::new(inject.clone() as Arc<dyn StorageBackend>, 1);
        let pipe = CheckpointPipeline::new(
            store.clone(),
            PipelineConfig::default().with_retry(RetryPolicy {
                max_retries: 2,
                backoff_base_ms: 0,
            }),
        );
        pipe.stage(1, 0, RankBlobKind::State, blob(1, 100)).unwrap();
        let err = pipe.drain(1).unwrap_err();
        assert!(err.is_transient(), "{err}");
        // The checkpoint has no complete blob set; commit refuses.
        assert!(store.commit(1).is_err());
    }

    #[test]
    fn drain_error_with_in_flight_writes_leaves_pipeline_usable() {
        // Regression: drain used to retire the ticket as soon as it saw
        // an error, even with writes still outstanding; the straggling
        // writer's completion then resurrected the ticket at count zero
        // and underflowed it (panic + poisoned mutex in debug builds, a
        // wrapped counter and a hung later drain in release builds).
        // First two puts fail: blob 1's write and its only retry. The
        // slow-put keeps blobs 2 and 3 in flight long enough that drain
        // reliably observes the error while outstanding > 0.
        let inject = Arc::new(FaultInjectingBackend::new(
            Arc::new(MemoryBackend::new()),
            FaultPlan::none().fail_n(2).slow_ms(5),
        ));
        let store =
            CheckpointStore::new(inject.clone() as Arc<dyn StorageBackend>, 1);
        let pipe = CheckpointPipeline::new(
            store.clone(),
            PipelineConfig::default()
                .with_mode(WriteMode::Async {
                    writers: 1,
                    queue_depth: 8,
                })
                .with_incremental(false)
                .with_retry(RetryPolicy {
                    max_retries: 1,
                    backoff_base_ms: 0,
                }),
        );
        // Three staged blobs, one writer: when the first write fails,
        // the other two are still queued/in flight at drain time.
        for kind in [
            RankBlobKind::State,
            RankBlobKind::Log,
            RankBlobKind::MpiObjects,
        ] {
            pipe.stage(1, 0, kind, blob(5, 400)).unwrap();
        }
        assert!(pipe.drain(1).is_err());
        assert!(inject.faults_injected() >= 2);
        // The next checkpoint must succeed on the same pipeline, with no
        // panic, poisoned lock, or hung drain.
        pipe.stage(2, 0, RankBlobKind::State, blob(6, 400)).unwrap();
        pipe.stage(2, 0, RankBlobKind::Log, b"log".to_vec())
            .unwrap();
        assert_eq!(pipe.drain(2).unwrap(), 2);
        store.commit(2).unwrap();
        assert_eq!(
            store.get_rank_blob(2, 0, RankBlobKind::State).unwrap(),
            blob(6, 400)
        );
    }

    #[test]
    fn gc_does_not_break_dedup_of_resurrected_chunks() {
        // A chunk whose only references were in collected checkpoints is
        // swept by GC; if the same content reappears later, the dedup
        // path must notice the chunk is gone and write it again rather
        // than trusting a stale dedup set (which would commit a manifest
        // naming a deleted chunk — unrecoverable).
        let (backend, store) = mem_store(1);
        let cfg = PipelineConfig::default()
            .with_mode(WriteMode::Sync)
            .with_chunk_size(64)
            .with_compression(false);
        let pipe = CheckpointPipeline::new(store.clone(), cfg);
        let a = vec![0xAAu8; 64];
        let b = vec![0xBBu8; 64];
        let ab: Vec<u8> = [a.clone(), b.clone()].concat();
        let aa: Vec<u8> = [a.clone(), a.clone()].concat();
        // Checkpoint 1 stores chunks A and B; checkpoint 2 drops B.
        for (ckpt, state) in [(1u64, &ab), (2u64, &aa)] {
            pipe.stage(ckpt, 0, RankBlobKind::State, state.clone())
                .unwrap();
            pipe.stage(ckpt, 0, RankBlobKind::Log, b"log".to_vec())
                .unwrap();
            pipe.drain(ckpt).unwrap();
            store.commit(ckpt).unwrap();
        }
        pipe.gc_keeping(2).unwrap();
        // B's only reference was checkpoint 1's manifest: it is gone
        // (chunk A and the log blob's chunk survive).
        assert!(!store.has_chunk(&ChunkRef::for_piece(&b)).unwrap());
        assert_eq!(backend.list("chunk/").unwrap().len(), 2);
        // Checkpoint 3 resurrects content B. It must round-trip after a
        // GC that keeps only checkpoint 3.
        let ba: Vec<u8> = [b.clone(), a.clone()].concat();
        pipe.stage(3, 0, RankBlobKind::State, ba.clone()).unwrap();
        pipe.stage(3, 0, RankBlobKind::Log, b"log".to_vec())
            .unwrap();
        pipe.drain(3).unwrap();
        store.commit(3).unwrap();
        pipe.gc_keeping(3).unwrap();
        assert_eq!(
            store.get_rank_blob(3, 0, RankBlobKind::State).unwrap(),
            ba
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn pipeline_records_obs_metrics() {
        let reg = c3obs::Registry::new();
        let (_, store) = mem_store(1);
        let pipe = CheckpointPipeline::new(
            store.clone(),
            PipelineConfig::default().with_obs(reg.clone()),
        );
        pipe.stage(1, 0, RankBlobKind::State, blob(1, 2048))
            .unwrap();
        pipe.stage(1, 0, RankBlobKind::Log, b"log".to_vec())
            .unwrap();
        pipe.drain(1).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter_total("io_staged_bytes_total"), 2048 + 3);
        assert_eq!(snap.histogram_count_total("io_stage_ns"), 2);
        assert_eq!(snap.histogram_count_total("io_write_ns"), 2);
        assert_eq!(snap.histogram_count_total("io_drain_ns"), 1);
        assert_eq!(snap.counter_total("io_retries_total"), 0);
        assert!(snap.self_check().is_empty());
    }

    #[test]
    fn shutdown_finishes_queued_writes() {
        let (_, store) = mem_store(1);
        let pipe = CheckpointPipeline::new(
            store.clone(),
            PipelineConfig::default().with_mode(WriteMode::Async {
                writers: 1,
                queue_depth: 16,
            }),
        );
        for k in 0..8u64 {
            pipe.stage(1, 0, RankBlobKind::State, blob(k as u8, 300))
                .unwrap();
        }
        drop(pipe);
        // Every staged write must have landed even though drain was never
        // called (a failed attempt's pipeline is dropped, not drained).
        assert_eq!(
            store.get_rank_blob(1, 0, RankBlobKind::State).unwrap(),
            blob(7, 300)
        );
    }

    #[test]
    fn stage_after_shutdown_is_an_error() {
        let (_, store) = mem_store(1);
        let pipe = CheckpointPipeline::new(store, PipelineConfig::default());
        pipe.shutdown();
        assert!(pipe
            .stage(1, 0, RankBlobKind::State, vec![1, 2, 3])
            .is_err());
    }

    #[test]
    fn compression_shrinks_runs() {
        let (backend, store) = mem_store(1);
        let pipe = CheckpointPipeline::new(
            store.clone(),
            PipelineConfig::default()
                .with_mode(WriteMode::Sync)
                .with_chunk_size(1024),
        );
        // Highly compressible state: long zero runs.
        let v = vec![0u8; 64 * 1024];
        pipe.stage(1, 0, RankBlobKind::State, v.clone()).unwrap();
        pipe.drain(1).unwrap();
        assert!(
            backend.bytes_written() < 8 * 1024,
            "compressed zeros still cost {} bytes",
            backend.bytes_written()
        );
        assert_eq!(store.get_rank_blob(1, 0, RankBlobKind::State).unwrap(), v);
        assert!(pipe.stats().chunks_compressed > 0);
    }

    #[test]
    fn cdc_dedup_survives_a_front_insertion() {
        // The FastCDC win over fixed-size chunking: insert bytes at the
        // front of the state and every fixed chunk boundary shifts (full
        // rewrite), while content-defined cuts re-align after the edit.
        let mut base = Vec::with_capacity(256 * 1024);
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        while base.len() < 256 * 1024 {
            x = x.wrapping_mul(0xD120_2E87_82B9_029D).wrapping_add(1);
            base.extend_from_slice(&x.to_le_bytes());
        }
        let mut shifted = vec![0x5Au8; 97];
        shifted.extend_from_slice(&base);

        let written_delta = |chunker: Chunker| {
            let (backend, store) = mem_store(1);
            let cfg = PipelineConfig::default()
                .with_mode(WriteMode::Sync)
                .with_chunker(chunker)
                .with_codec(Codec::Lz4);
            let pipe = CheckpointPipeline::new(store.clone(), cfg);
            pipe.stage(1, 0, RankBlobKind::State, base.clone()).unwrap();
            pipe.stage(1, 0, RankBlobKind::Log, b"log".to_vec())
                .unwrap();
            pipe.drain(1).unwrap();
            store.commit(1).unwrap();
            let before = backend.bytes_written();
            pipe.stage(2, 0, RankBlobKind::State, shifted.clone())
                .unwrap();
            pipe.stage(2, 0, RankBlobKind::Log, b"log".to_vec())
                .unwrap();
            pipe.drain(2).unwrap();
            store.commit(2).unwrap();
            assert_eq!(
                store.get_rank_blob(2, 0, RankBlobKind::State).unwrap(),
                shifted
            );
            backend.bytes_written() - before
        };
        let fixed = written_delta(Chunker::fixed(4096));
        let cdc = written_delta(Chunker::cdc(4096));
        // Fixed-size rewrites nearly everything; CDC rewrites only the
        // chunks around the edit.
        assert!(
            cdc * 4 < fixed,
            "cdc delta {cdc} should be far below fixed delta {fixed}"
        );
    }

    #[test]
    fn parallel_preparation_preserves_manifest_order() {
        // A blob big enough to fan out across the writer pool as chunk
        // subtasks must still reassemble byte-identically (results land
        // in manifest order no matter which worker prepared them).
        let (_, store) = mem_store(1);
        let cfg = PipelineConfig::default()
            .with_mode(WriteMode::Async {
                writers: 4,
                queue_depth: 8,
            })
            .with_chunker(Chunker::cdc(1024))
            .with_codec(Codec::Lz4);
        let pipe = CheckpointPipeline::new(store.clone(), cfg);
        let v = blob(13, 512 * 1024);
        pipe.stage(1, 0, RankBlobKind::State, v.clone()).unwrap();
        pipe.stage(1, 0, RankBlobKind::Log, b"log".to_vec())
            .unwrap();
        assert_eq!(pipe.drain(1).unwrap(), 2);
        store.commit(1).unwrap();
        assert_eq!(store.get_rank_blob(1, 0, RankBlobKind::State).unwrap(), v);
        let stats = pipe.stats();
        assert!(stats.chunks_written > 0, "stats: {stats:?}");
    }

    #[test]
    fn dedup_hits_skip_recompression() {
        // An identical second checkpoint dedups every chunk against the
        // previous manifest's stored forms — no chunk is re-encoded.
        let (_, store) = mem_store(1);
        let cfg = PipelineConfig::default()
            .with_mode(WriteMode::Sync)
            .with_chunk_size(512)
            .with_codec(Codec::Lz4);
        let pipe = CheckpointPipeline::new(store.clone(), cfg);
        let v: Vec<u8> =
            (0..16 * 1024).map(|i| ((i / 7) % 251) as u8).collect();
        let mut after_first = 0;
        for ckpt in [1u64, 2] {
            pipe.stage(ckpt, 0, RankBlobKind::State, v.clone()).unwrap();
            pipe.stage(ckpt, 0, RankBlobKind::Log, b"log".to_vec())
                .unwrap();
            pipe.drain(ckpt).unwrap();
            store.commit(ckpt).unwrap();
            if ckpt == 1 {
                after_first = pipe.stats().chunks_compressed;
            }
        }
        let stats = pipe.stats();
        assert!(stats.chunks_deduped >= 32, "stats: {stats:?}");
        // Every chunk was compressed during checkpoint 1; checkpoint 2's
        // dedup hits reused the stored forms without re-encoding.
        assert!(after_first >= 32, "stats after first ckpt: {after_first}");
        assert_eq!(stats.chunks_compressed, after_first, "stats: {stats:?}");
        assert_eq!(store.get_rank_blob(2, 0, RankBlobKind::State).unwrap(), v);
    }

    #[test]
    fn tier_drain_promotes_committed_checkpoints() {
        use ckptstore::{TierSpec, TieredBackend};
        let local = Arc::new(MemoryBackend::new());
        let partner = Arc::new(MemoryBackend::new());
        let global = Arc::new(MemoryBackend::new());
        let tiered = Arc::new(TieredBackend::new(
            vec![
                TierSpec::direct(local.clone()),
                TierSpec::partner(partner, 1),
                TierSpec::erasure(global, 2, 1),
            ],
            2,
        ));
        let store =
            CheckpointStore::new(tiered.clone() as Arc<dyn StorageBackend>, 2);
        let pipe = CheckpointPipeline::new(
            store.clone(),
            PipelineConfig::default().with_chunk_size(256),
        );
        let payloads = vec![blob(11, 1500), blob(12, 1500)];
        stage_full_checkpoint(&pipe, 1, &payloads);
        pipe.drain(1).unwrap();
        store.commit(1).unwrap();
        // Commit covers tier-local durability only; the mover promotes in
        // the background and flush waits for it.
        pipe.schedule_tier_drain(1);
        let done = pipe.flush_tier_drains();
        assert_eq!(done, vec![(1, 1), (1, 2)], "both lower tiers drained");
        assert_eq!(pipe.tier_drain_errors(), 0);
        // The local staging tier can now vanish entirely and every rank
        // blob is still served from a replica or reconstructed shards.
        tiered.wipe_tier(0).unwrap();
        for (rank, payload) in payloads.iter().enumerate() {
            assert_eq!(
                store.get_rank_blob(1, rank, RankBlobKind::State).unwrap(),
                *payload
            );
        }
        // Flushing with nothing queued is an empty no-op, not a hang.
        assert!(pipe.flush_tier_drains().is_empty());
    }

    #[test]
    fn many_ranks_stage_concurrently() {
        let (_, store) = mem_store(8);
        let pipe =
            CheckpointPipeline::new(store.clone(), PipelineConfig::default());
        std::thread::scope(|scope| {
            for rank in 0..8 {
                let pipe = pipe.clone();
                scope.spawn(move || {
                    pipe.stage(
                        1,
                        rank,
                        RankBlobKind::State,
                        blob(rank as u8, 5000),
                    )
                    .unwrap();
                    pipe.stage(1, rank, RankBlobKind::Log, vec![rank as u8])
                        .unwrap();
                });
            }
        });
        assert_eq!(pipe.drain(1).unwrap(), 16);
        store.commit(1).unwrap();
        for rank in 0..8 {
            assert_eq!(
                store.get_rank_blob(1, rank, RankBlobKind::State).unwrap(),
                blob(rank as u8, 5000)
            );
        }
    }
}
