//! Pipeline tuning knobs.

/// How staged blobs reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Write on the staging rank's thread. `stage` returns only after the
    /// blob is on storage — the paper's original blocking behavior.
    Sync,
    /// Hand the blob to background writer threads; `stage` returns as
    /// soon as the blob is queued, and the initiator's drain barrier is
    /// what guarantees durability before commit.
    Async {
        /// Number of writer threads shared by all ranks of the job.
        writers: usize,
        /// Staged blobs the queue holds before `stage` applies
        /// backpressure (blocks the staging rank).
        queue_depth: usize,
    },
}

/// Retry discipline for transient storage faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = fail immediately).
    pub max_retries: u32,
    /// Sleep before retry `k` is `backoff_base_ms << k`, capped at
    /// 1024 × base.
    pub backoff_base_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            backoff_base_ms: 1,
        }
    }
}

/// Full pipeline configuration, embedded in the protocol layer's
/// `C3Config` as its `io` field.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Synchronous or background writing.
    pub mode: WriteMode,
    /// Write blobs as content-addressed chunk manifests, deduplicating
    /// chunks against previously stored checkpoints (delta
    /// checkpointing). When false, blobs are stored whole, as the paper
    /// does.
    pub incremental: bool,
    /// Chunk size for incremental mode, in bytes.
    pub chunk_size: usize,
    /// Run-length compress chunks that shrink from it.
    pub compression: bool,
    /// Transient-fault retry discipline.
    pub retry: RetryPolicy,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            mode: WriteMode::Async {
                writers: 2,
                queue_depth: 8,
            },
            incremental: true,
            chunk_size: 4096,
            compression: true,
            retry: RetryPolicy::default(),
        }
    }
}

impl PipelineConfig {
    /// The paper's original behavior: full blobs, written synchronously.
    pub fn sync_full() -> Self {
        PipelineConfig {
            mode: WriteMode::Sync,
            incremental: false,
            compression: false,
            ..PipelineConfig::default()
        }
    }

    /// Builder: set the write mode.
    pub fn with_mode(mut self, mode: WriteMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder: toggle incremental (chunked, deduplicated) writing.
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Builder: set the chunk size (bytes).
    pub fn with_chunk_size(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "chunk size must be positive");
        self.chunk_size = bytes;
        self
    }

    /// Builder: toggle chunk compression.
    pub fn with_compression(mut self, on: bool) -> Self {
        self.compression = on;
        self
    }

    /// Builder: set the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}
