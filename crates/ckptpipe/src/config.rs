//! Pipeline tuning knobs.

use ckptstore::{Chunker, Codec};

/// How staged blobs reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Write on the staging rank's thread. `stage` returns only after the
    /// blob is on storage — the paper's original blocking behavior.
    Sync,
    /// Hand the blob to background writer threads; `stage` returns as
    /// soon as the blob is queued, and the initiator's drain barrier is
    /// what guarantees durability before commit.
    Async {
        /// Number of writer threads shared by all ranks of the job.
        writers: usize,
        /// Staged blobs the queue holds before `stage` applies
        /// backpressure (blocks the staging rank).
        queue_depth: usize,
    },
}

/// Retry discipline for transient storage faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = fail immediately).
    pub max_retries: u32,
    /// Sleep before retry `k` is [`RetryPolicy::delay_ms`]`(k)`:
    /// `backoff_base_ms * 2^k`, capped at 1024 × base.
    pub backoff_base_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            backoff_base_ms: 1,
        }
    }
}

impl RetryPolicy {
    /// Exponent cap: delays saturate at `backoff_base_ms << 10`
    /// (1024 × base).
    const MAX_EXP: u32 = 10;

    /// Milliseconds to sleep before retry `attempt` (0-based).
    ///
    /// A plain `backoff_base_ms << attempt` would be a shift-overflow
    /// panic (debug) or silent wrap (release) once `attempt >= 64`,
    /// which an adversarial fault schedule can reach. The exponent is
    /// therefore clamped first and the multiply saturates — the same
    /// discipline as `simmpi::netsim`'s retransmit backoff.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let exp = attempt.min(Self::MAX_EXP);
        self.backoff_base_ms.saturating_mul(1u64 << exp)
    }
}

/// Topology of the multi-level storage hierarchy the job should run
/// over (SCR-style). When set on [`PipelineConfig::tiers`], `run_job`
/// wraps the provided backend as the local staging tier of a
/// `ckptstore::TieredBackend`, the pipeline spawns an async tier-drain
/// mover that promotes each committed checkpoint down the hierarchy,
/// and recovery falls through the tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierTopology {
    /// Replica slots on the partner tier (0 = no partner tier).
    pub partner_replicas: usize,
    /// `(data, parity)` Reed–Solomon geometry of the global
    /// erasure-coded tier (`None` = no global tier).
    pub erasure: Option<(u8, u8)>,
}

impl TierTopology {
    /// Partner tier only: each rank's blobs replicated onto `replicas`
    /// neighbor slots.
    pub fn partner(replicas: usize) -> Self {
        TierTopology {
            partner_replicas: replicas,
            erasure: None,
        }
    }

    /// Partner tier plus a global Reed–Solomon `(data, parity)` tier.
    pub fn partner_and_erasure(replicas: usize, data: u8, parity: u8) -> Self {
        TierTopology {
            partner_replicas: replicas,
            erasure: Some((data, parity)),
        }
    }

    /// Erasure-coded global tier only.
    pub fn erasure(data: u8, parity: u8) -> Self {
        TierTopology {
            partner_replicas: 0,
            erasure: Some((data, parity)),
        }
    }

    /// Number of tiers this topology adds below the staging tier.
    pub fn extra_tiers(&self) -> usize {
        usize::from(self.partner_replicas > 0)
            + usize::from(self.erasure.is_some())
    }
}

/// Full pipeline configuration, embedded in the protocol layer's
/// `C3Config` as its `io` field.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Synchronous or background writing.
    pub mode: WriteMode,
    /// Write blobs as content-addressed chunk manifests, deduplicating
    /// chunks against previously stored checkpoints (delta
    /// checkpointing). When false, blobs are stored whole, as the paper
    /// does.
    pub incremental: bool,
    /// How incremental mode splits a blob into chunks: fixed-size
    /// pieces, or FastCDC content-defined cuts that keep dedup working
    /// when state shifts (see [`Chunker`]).
    pub chunker: Chunker,
    /// Compress chunks that shrink from it.
    pub compression: bool,
    /// Preferred chunk codec when `compression` is on. [`Codec::Lz4`]
    /// still stores RLE-friendly pages as PackBits (the run-length form
    /// is both smaller and cheaper there); chunks that no codec shrinks
    /// are stored raw either way.
    pub codec: Codec,
    /// Transient-fault retry discipline.
    pub retry: RetryPolicy,
    /// Committed checkpoint lines to retain: the initiator GCs
    /// everything older than `latest_commit + 1 - keep_last`. The
    /// default 1 reproduces the paper's behavior (only the newest
    /// committed checkpoint survives); tiered configurations keep ≥ 2
    /// so that losing the newest line beyond repair still leaves a
    /// whole older line to fall back to.
    pub keep_last: u64,
    /// Storage-tier topology to run over (`None` = single-tier, the
    /// paper's flat stable storage).
    pub tiers: Option<TierTopology>,
    /// Metrics registry the pipeline records into (stage/write/drain
    /// latency, retry and byte counters). `None` disables recording;
    /// compiled out entirely without the `obs` feature.
    #[cfg(feature = "obs")]
    pub obs: Option<c3obs::Registry>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            mode: WriteMode::Async {
                writers: 2,
                queue_depth: 8,
            },
            incremental: true,
            chunker: Chunker::Fixed { size: 4096 },
            compression: true,
            codec: Codec::PackBits,
            retry: RetryPolicy::default(),
            keep_last: 1,
            tiers: None,
            #[cfg(feature = "obs")]
            obs: None,
        }
    }
}

impl PipelineConfig {
    /// The paper's original behavior: full blobs, written synchronously.
    pub fn sync_full() -> Self {
        PipelineConfig {
            mode: WriteMode::Sync,
            incremental: false,
            compression: false,
            ..PipelineConfig::default()
        }
    }

    /// Builder: set the write mode.
    pub fn with_mode(mut self, mode: WriteMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder: toggle incremental (chunked, deduplicated) writing.
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Builder: fixed-size chunking with the given piece size (bytes).
    /// Shorthand for `with_chunker(Chunker::fixed(bytes))`.
    pub fn with_chunk_size(self, bytes: usize) -> Self {
        self.with_chunker(Chunker::fixed(bytes))
    }

    /// Builder: set the chunking strategy (fixed-size or content-defined).
    pub fn with_chunker(mut self, chunker: Chunker) -> Self {
        self.chunker = chunker;
        self
    }

    /// Builder: toggle chunk compression.
    pub fn with_compression(mut self, on: bool) -> Self {
        self.compression = on;
        self
    }

    /// Builder: set the preferred chunk codec (used when compression is
    /// on; see [`PipelineConfig::codec`]).
    pub fn with_codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// Builder: set the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder: retain the last `n` committed checkpoint lines
    /// (`n >= 1`).
    pub fn with_keep_last(mut self, n: u64) -> Self {
        assert!(n >= 1, "must keep at least the newest committed line");
        self.keep_last = n;
        self
    }

    /// Builder: run over a multi-level storage hierarchy.
    pub fn with_tiers(mut self, topology: TierTopology) -> Self {
        self.tiers = Some(topology);
        self
    }

    /// Builder: record pipeline metrics into `reg`.
    #[cfg(feature = "obs")]
    pub fn with_obs(mut self, reg: c3obs::Registry) -> Self {
        self.obs = Some(reg);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_schedule_is_exponential_and_capped() {
        // Mirrors netsim's backoff_schedule_is_exponential_and_capped
        // for the storage-retry flavor of the same pattern.
        let p = RetryPolicy {
            max_retries: 64,
            backoff_base_ms: 3,
        };
        let schedule: Vec<u64> = (0..12).map(|k| p.delay_ms(k)).collect();
        assert_eq!(
            schedule,
            [
                3,
                6,
                12,
                24,
                48,
                96,
                192,
                384,
                768,
                1536,
                3 * 1024,
                3 * 1024
            ],
            "doubles per retry, then holds at 1024 x base"
        );
        // The old `base << attempt` panicked (debug) or wrapped
        // (release) here; the clamped saturating form must not.
        assert_eq!(p.delay_ms(u32::MAX), 3 * 1024);
        let huge = RetryPolicy {
            max_retries: 1,
            backoff_base_ms: u64::MAX,
        };
        assert_eq!(huge.delay_ms(u32::MAX), u64::MAX, "saturates");
    }

    #[test]
    fn chunker_and_codec_builders_plumb_through() {
        let cfg = PipelineConfig::default()
            .with_chunker(Chunker::cdc(1024))
            .with_codec(Codec::Lz4);
        assert_eq!(
            cfg.chunker,
            Chunker::Cdc {
                min: 256,
                avg: 1024,
                max: 4096
            }
        );
        assert_eq!(cfg.codec, Codec::Lz4);
        // `with_chunk_size` stays as the fixed-size shorthand.
        assert_eq!(
            PipelineConfig::default().with_chunk_size(512).chunker,
            Chunker::Fixed { size: 512 }
        );
        // Defaults preserve the pre-CDC behavior exactly.
        let d = PipelineConfig::default();
        assert_eq!(d.chunker, Chunker::Fixed { size: 4096 });
        assert_eq!(d.codec, Codec::PackBits);
    }
}
