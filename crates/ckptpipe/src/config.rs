//! Pipeline tuning knobs.

/// How staged blobs reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Write on the staging rank's thread. `stage` returns only after the
    /// blob is on storage — the paper's original blocking behavior.
    Sync,
    /// Hand the blob to background writer threads; `stage` returns as
    /// soon as the blob is queued, and the initiator's drain barrier is
    /// what guarantees durability before commit.
    Async {
        /// Number of writer threads shared by all ranks of the job.
        writers: usize,
        /// Staged blobs the queue holds before `stage` applies
        /// backpressure (blocks the staging rank).
        queue_depth: usize,
    },
}

/// Retry discipline for transient storage faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = fail immediately).
    pub max_retries: u32,
    /// Sleep before retry `k` is [`RetryPolicy::delay_ms`]`(k)`:
    /// `backoff_base_ms * 2^k`, capped at 1024 × base.
    pub backoff_base_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            backoff_base_ms: 1,
        }
    }
}

impl RetryPolicy {
    /// Exponent cap: delays saturate at `backoff_base_ms << 10`
    /// (1024 × base).
    const MAX_EXP: u32 = 10;

    /// Milliseconds to sleep before retry `attempt` (0-based).
    ///
    /// A plain `backoff_base_ms << attempt` would be a shift-overflow
    /// panic (debug) or silent wrap (release) once `attempt >= 64`,
    /// which an adversarial fault schedule can reach. The exponent is
    /// therefore clamped first and the multiply saturates — the same
    /// discipline as `simmpi::netsim`'s retransmit backoff.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let exp = attempt.min(Self::MAX_EXP);
        self.backoff_base_ms.saturating_mul(1u64 << exp)
    }
}

/// Full pipeline configuration, embedded in the protocol layer's
/// `C3Config` as its `io` field.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Synchronous or background writing.
    pub mode: WriteMode,
    /// Write blobs as content-addressed chunk manifests, deduplicating
    /// chunks against previously stored checkpoints (delta
    /// checkpointing). When false, blobs are stored whole, as the paper
    /// does.
    pub incremental: bool,
    /// Chunk size for incremental mode, in bytes.
    pub chunk_size: usize,
    /// Run-length compress chunks that shrink from it.
    pub compression: bool,
    /// Transient-fault retry discipline.
    pub retry: RetryPolicy,
    /// Metrics registry the pipeline records into (stage/write/drain
    /// latency, retry and byte counters). `None` disables recording;
    /// compiled out entirely without the `obs` feature.
    #[cfg(feature = "obs")]
    pub obs: Option<c3obs::Registry>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            mode: WriteMode::Async {
                writers: 2,
                queue_depth: 8,
            },
            incremental: true,
            chunk_size: 4096,
            compression: true,
            retry: RetryPolicy::default(),
            #[cfg(feature = "obs")]
            obs: None,
        }
    }
}

impl PipelineConfig {
    /// The paper's original behavior: full blobs, written synchronously.
    pub fn sync_full() -> Self {
        PipelineConfig {
            mode: WriteMode::Sync,
            incremental: false,
            compression: false,
            ..PipelineConfig::default()
        }
    }

    /// Builder: set the write mode.
    pub fn with_mode(mut self, mode: WriteMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder: toggle incremental (chunked, deduplicated) writing.
    pub fn with_incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Builder: set the chunk size (bytes).
    pub fn with_chunk_size(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "chunk size must be positive");
        self.chunk_size = bytes;
        self
    }

    /// Builder: toggle chunk compression.
    pub fn with_compression(mut self, on: bool) -> Self {
        self.compression = on;
        self
    }

    /// Builder: set the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder: record pipeline metrics into `reg`.
    #[cfg(feature = "obs")]
    pub fn with_obs(mut self, reg: c3obs::Registry) -> Self {
        self.obs = Some(reg);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_schedule_is_exponential_and_capped() {
        // Mirrors netsim's backoff_schedule_is_exponential_and_capped
        // for the storage-retry flavor of the same pattern.
        let p = RetryPolicy {
            max_retries: 64,
            backoff_base_ms: 3,
        };
        let schedule: Vec<u64> = (0..12).map(|k| p.delay_ms(k)).collect();
        assert_eq!(
            schedule,
            [
                3,
                6,
                12,
                24,
                48,
                96,
                192,
                384,
                768,
                1536,
                3 * 1024,
                3 * 1024
            ],
            "doubles per retry, then holds at 1024 x base"
        );
        // The old `base << attempt` panicked (debug) or wrapped
        // (release) here; the clamped saturating form must not.
        assert_eq!(p.delay_ms(u32::MAX), 3 * 1024);
        let huge = RetryPolicy {
            max_retries: 1,
            backoff_base_ms: u64::MAX,
        };
        assert_eq!(huge.delay_ms(u32::MAX), u64::MAX, "saturates");
    }
}
