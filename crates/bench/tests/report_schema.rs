//! Every checked-in `BENCH_*.json` artifact at the workspace root must
//! satisfy the shared benchmark report schema (see
//! [`c3_bench::report`]): `{"bench": <str>, "params": {<scalar>...},
//! "cells": [{<scalar>...}, ...]}`. This keeps the artifacts loadable by
//! one downstream tool regardless of which bench wrote them, and fails
//! tier-1 the moment a bench drifts back to an ad-hoc writer.

use c3_bench::report::validate;

#[test]
fn checked_in_artifacts_satisfy_schema() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut seen = Vec::new();
    for entry in std::fs::read_dir(&root).expect("read workspace root") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let body = std::fs::read_to_string(entry.path())
            .unwrap_or_else(|e| panic!("read {name}: {e}"));
        validate(&body).unwrap_or_else(|e| panic!("{name}: {e}"));
        seen.push(name);
    }
    seen.sort();
    // The micro benches that track their numbers in-repo.
    for expected in [
        "BENCH_overhead.json",
        "BENCH_pipeline.json",
        "BENCH_recovery.json",
        "BENCH_transport.json",
    ] {
        assert!(
            seen.iter().any(|n| n == expected),
            "missing artifact {expected} (have {seen:?})"
        );
    }
}
