//! Shared harness for the Figure 8 reproduction benchmarks.
//!
//! The paper's evaluation (Section 6.2) measures, for each application and
//! problem size, the running time of four program versions:
//!
//! 1. the unmodified program,
//! 2. \+ piggybacking data on messages (and control collectives),
//! 3. \+ the protocol's logs and MPI-state saving, without application
//!    state,
//! 4. full checkpoints.
//!
//! [`measure_levels`] runs all four versions and prints one row per size with
//! absolute times, overhead percentages over the unmodified version, and
//! the application state size — the same series as the paper's bar
//! charts. Absolute numbers differ from the paper's 2001-era cluster, but
//! the comparisons ("who wins, by roughly what factor, where the
//! crossover falls") are the reproduction target.

#![deny(missing_docs)]

pub mod report;

use std::time::Duration;

use c3_core::{
    run_job, C3App, C3Config, CheckpointTrigger, InstrumentationLevel,
};

/// One measured cell of the Figure 8 matrix.
#[derive(Debug, Clone)]
pub struct Fig8Cell {
    /// Which program version this cell measured.
    pub level: InstrumentationLevel,
    /// Best-of-N wall time.
    pub elapsed: Duration,
    /// Global checkpoints committed during the run.
    pub checkpoints: u64,
    /// Application state bytes written by the busiest rank.
    pub app_state_bytes: u64,
    /// Total bytes written to stable storage.
    pub storage_bytes: u64,
}

/// One row (problem size) of a Figure 8 chart.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Problem-size label (e.g. "768x768").
    pub label: String,
    /// One cell per instrumentation level, in [`LEVELS`] order.
    pub cells: Vec<Fig8Cell>,
}

impl Fig8Row {
    /// Overhead of cell `i` relative to the unmodified version.
    pub fn overhead_pct(&self, i: usize) -> f64 {
        let base = self.cells[0].elapsed.as_secs_f64();
        (self.cells[i].elapsed.as_secs_f64() / base - 1.0) * 100.0
    }
}

/// The four instrumentation levels in the paper's order.
pub const LEVELS: [InstrumentationLevel; 4] = [
    InstrumentationLevel::None,
    InstrumentationLevel::Piggyback,
    InstrumentationLevel::ProtocolOnly,
    InstrumentationLevel::Full,
];

/// Run one application configuration at all four levels.
///
/// `ckpt_interval_ms` plays the role of the paper's 30-second checkpoint
/// interval, scaled to the benchmark's run time.
pub fn measure_levels<A: C3App>(
    nprocs: usize,
    app: &A,
    label: impl Into<String>,
    ckpt_interval_ms: u64,
    repeats: u32,
) -> Fig8Row {
    let mut cells = Vec::with_capacity(LEVELS.len());
    for level in LEVELS {
        let cfg = C3Config {
            level,
            trigger: CheckpointTrigger::EveryMillis(ckpt_interval_ms),
            ..C3Config::default()
        };
        // Best-of-N wall time: robust against scheduler noise on the
        // shared-core simulator.
        let mut best: Option<(Duration, u64, u64, u64)> = None;
        for _ in 0..repeats {
            let report = run_job(nprocs, &cfg, None, app)
                .expect("benchmark run failed");
            let ckpts = report.last_committed.unwrap_or(0);
            let app_bytes = report
                .stats
                .iter()
                .map(|s| s.app_state_bytes)
                .max()
                .unwrap_or(0);
            let cand = (
                report.elapsed,
                ckpts,
                app_bytes,
                report.storage_bytes_written,
            );
            best = Some(match best {
                None => cand,
                Some(b) if cand.0 < b.0 => cand,
                Some(b) => b,
            });
        }
        let (elapsed, checkpoints, app_state_bytes, storage_bytes) =
            best.expect("at least one repeat");
        cells.push(Fig8Cell {
            level,
            elapsed,
            checkpoints,
            app_state_bytes,
            storage_bytes,
        });
    }
    Fig8Row {
        label: label.into(),
        cells,
    }
}

/// Human-readable size.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

/// Print a Figure 8 style table.
pub fn print_fig8(title: &str, rows: &[Fig8Row]) {
    println!("\n=== {title} ===");
    println!(
        "{:>14} {:>12} {:>16} {:>16} {:>16} {:>10} {:>8}",
        "size",
        "unmodified",
        "+piggyback",
        "+protocol",
        "full ckpt",
        "state",
        "ckpts"
    );
    for row in rows {
        let base = row.cells[0].elapsed.as_secs_f64();
        let cell = |i: usize| {
            format!(
                "{:>7.3}s {:>+5.1}%",
                row.cells[i].elapsed.as_secs_f64(),
                row.overhead_pct(i)
            )
        };
        println!(
            "{:>14} {:>11.3}s {:>16} {:>16} {:>16} {:>10} {:>8}",
            row.label,
            base,
            cell(1),
            cell(2),
            cell(3),
            fmt_bytes(row.cells[3].app_state_bytes),
            row.cells[3].checkpoints,
        );
    }
}

/// Machine-readable dump (one line per cell) for plotting.
pub fn print_csv(chart: &str, rows: &[Fig8Row]) {
    println!("csv,chart,size,level,seconds,overhead_pct,app_state_bytes,checkpoints");
    for row in rows {
        for (i, cell) in row.cells.iter().enumerate() {
            println!(
                "csv,{chart},{},{:?},{:.6},{:.2},{},{}",
                row.label,
                cell.level,
                cell.elapsed.as_secs_f64(),
                row.overhead_pct(i),
                cell.app_state_bytes,
                cell.checkpoints
            );
        }
    }
}
