//! Shared machine-readable benchmark report format.
//!
//! Every micro-benchmark that tracks its numbers in-repo writes a
//! `BENCH_<name>.json` file at the workspace root, and every one of those
//! files has the same shape:
//!
//! ```json
//! {
//!   "bench": "<benchmark name>",
//!   "params": { "<knob>": <scalar>, ... },
//!   "cells":  [ { "<metric>": <scalar>, ... }, ... ]
//! }
//! ```
//!
//! `params` holds the fixed configuration of the run (rank counts,
//! payload sizes, iteration counts); `cells` holds one flat object per
//! measured cell. Scalars are strings, finite numbers, or booleans —
//! nothing nests deeper, so downstream tooling can load any report with
//! a two-level loop and no schema registry.
//!
//! [`Report`] builds and serializes the format; [`validate`] checks an
//! arbitrary JSON document against it (used by the `report_schema`
//! integration test and the CI `bench-smoke` job to keep every checked-in
//! artifact conforming). [`smoke`] reads the `C3_BENCH_SMOKE` environment
//! variable so benches can shrink their iteration counts for CI without
//! clobbering the checked-in full-run artifacts.

/// A scalar JSON value as allowed inside `params` and `cells`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    /// An integer, printed without a decimal point.
    Int(i64),
    /// A finite float, printed with four decimal places.
    Num(f64),
    /// A string, printed with minimal escaping.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl From<i64> for JsonVal {
    fn from(v: i64) -> Self {
        JsonVal::Int(v)
    }
}

impl From<u64> for JsonVal {
    fn from(v: u64) -> Self {
        match i64::try_from(v) {
            Ok(i) => JsonVal::Int(i),
            Err(_) => JsonVal::Num(v as f64),
        }
    }
}

impl From<usize> for JsonVal {
    fn from(v: usize) -> Self {
        JsonVal::from(v as u64)
    }
}

impl From<u32> for JsonVal {
    fn from(v: u32) -> Self {
        JsonVal::Int(v as i64)
    }
}

impl From<f64> for JsonVal {
    fn from(v: f64) -> Self {
        JsonVal::Num(v)
    }
}

impl From<&str> for JsonVal {
    fn from(v: &str) -> Self {
        JsonVal::Str(v.to_string())
    }
}

impl From<String> for JsonVal {
    fn from(v: String) -> Self {
        JsonVal::Str(v)
    }
}

impl From<bool> for JsonVal {
    fn from(v: bool) -> Self {
        JsonVal::Bool(v)
    }
}

fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32))
            }
            c => out.push(c),
        }
    }
}

impl JsonVal {
    fn render_into(&self, out: &mut String) {
        match self {
            JsonVal::Int(i) => out.push_str(&i.to_string()),
            JsonVal::Num(n) => {
                assert!(n.is_finite(), "non-finite number in report: {n}");
                out.push_str(&format!("{n:.4}"));
            }
            JsonVal::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            JsonVal::Bool(b) => {
                out.push_str(if *b { "true" } else { "false" })
            }
        }
    }
}

/// One flat measurement record: ordered `key: scalar` fields.
#[derive(Debug, Clone, Default)]
pub struct Cell {
    fields: Vec<(String, JsonVal)>,
}

impl Cell {
    /// An empty cell.
    pub fn new() -> Self {
        Cell::default()
    }

    /// Append a field (insertion order is preserved in the output).
    pub fn field(mut self, key: &str, val: impl Into<JsonVal>) -> Self {
        self.fields.push((key.to_string(), val.into()));
        self
    }
}

/// Builder for one `BENCH_<name>.json` report.
#[derive(Debug, Clone)]
pub struct Report {
    bench: String,
    params: Vec<(String, JsonVal)>,
    cells: Vec<Cell>,
}

impl Report {
    /// Start a report for the benchmark named `bench`.
    pub fn new(bench: &str) -> Self {
        Report {
            bench: bench.to_string(),
            params: Vec::new(),
            cells: Vec::new(),
        }
    }

    /// Record one fixed configuration knob of the run.
    pub fn param(mut self, key: &str, val: impl Into<JsonVal>) -> Self {
        self.params.push((key.to_string(), val.into()));
        self
    }

    /// Append one measured cell.
    pub fn push_cell(&mut self, cell: Cell) {
        self.cells.push(cell);
    }

    /// Serialize to the canonical pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"bench\": ");
        JsonVal::Str(self.bench.clone()).render_into(&mut out);
        out.push_str(",\n  \"params\": {");
        for (i, (k, v)) in self.params.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            escape_into(&mut out, k);
            out.push_str("\": ");
            v.render_into(&mut out);
        }
        out.push_str("\n  },\n  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {");
            for (j, (k, v)) in cell.fields.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('"');
                escape_into(&mut out, k);
                out.push_str("\": ");
                v.render_into(&mut out);
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Write the report to `<workspace root>/<file_name>`.
    ///
    /// In smoke mode ([`smoke`]) this is a no-op: CI's tiny iteration
    /// counts must not overwrite the checked-in full-run artifacts.
    pub fn write(&self, file_name: &str) {
        if smoke() {
            println!("C3_BENCH_SMOKE set; not rewriting {file_name}");
            return;
        }
        let json = self.to_json();
        validate(&json).expect("generated report must satisfy its own schema");
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(file_name);
        std::fs::write(&path, json)
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {}", path.display());
    }
}

/// Whether the `C3_BENCH_SMOKE` environment variable asks for a tiny CI
/// run (set to anything but `0` or the empty string).
pub fn smoke() -> bool {
    std::env::var("C3_BENCH_SMOKE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

// ---------------------------------------------------------------------
// Schema validation: a minimal hand-rolled JSON reader, just deep enough
// to check the two-level report shape. No external parser dependency.
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "dangling escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(
                                &self.bytes[self.pos..self.pos + 4],
                            )
                            .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or("bad \\u code point")?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "unsupported escape '\\{}'",
                                other as char
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Advance one whole UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let ch = rest.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// A scalar value: string, finite number, or boolean. Nested arrays,
    /// objects, and `null` are schema violations.
    fn parse_scalar(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => self.parse_string().map(|_| ()),
            Some(b't') | Some(b'f') => {
                let lit: &[u8] = if self.peek() == Some(b't') {
                    b"true"
                } else {
                    b"false"
                };
                if self.bytes[self.pos..].starts_with(lit) {
                    self.pos += lit.len();
                    Ok(())
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit()
                        || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
                    {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text =
                    std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                text.parse::<f64>()
                    .map_err(|_| format!("bad number {text:?}"))
                    .and_then(|n| {
                        if n.is_finite() {
                            Ok(())
                        } else {
                            Err(format!("non-finite number {text:?}"))
                        }
                    })
            }
            other => Err(format!(
                "expected scalar at byte {}, found {:?}",
                self.pos,
                other.map(|c| c as char)
            )),
        }
    }

    /// An object whose values are all scalars; returns its keys.
    fn parse_flat_object(&mut self) -> Result<Vec<String>, String> {
        self.skip_ws();
        self.expect(b'{')?;
        let mut keys = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(keys);
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.parse_scalar()?;
            keys.push(key);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(keys);
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

/// Check a JSON document against the shared benchmark report schema:
/// a top-level object with exactly the keys `bench` (non-empty string),
/// `params` (object of scalars), and `cells` (non-empty array of
/// non-empty objects of scalars), and nothing else.
pub fn validate(json: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: json.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut saw_bench = false;
    let mut saw_params = false;
    let mut saw_cells = false;
    loop {
        p.skip_ws();
        if p.peek() == Some(b'}') && !(saw_bench || saw_params || saw_cells) {
            return Err("empty top-level object".into());
        }
        let key = p.parse_string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "bench" => {
                if saw_bench {
                    return Err("duplicate \"bench\" key".into());
                }
                let name = p.parse_string()?;
                if name.is_empty() {
                    return Err("\"bench\" must be a non-empty string".into());
                }
                saw_bench = true;
            }
            "params" => {
                if saw_params {
                    return Err("duplicate \"params\" key".into());
                }
                p.parse_flat_object()?;
                saw_params = true;
            }
            "cells" => {
                if saw_cells {
                    return Err("duplicate \"cells\" key".into());
                }
                p.expect(b'[')?;
                let mut n = 0usize;
                p.skip_ws();
                if p.peek() == Some(b']') {
                    return Err("\"cells\" must be non-empty".into());
                }
                loop {
                    let keys = p.parse_flat_object()?;
                    if keys.is_empty() {
                        return Err(format!("cell {n} has no fields"));
                    }
                    n += 1;
                    p.skip_ws();
                    match p.peek() {
                        Some(b',') => p.pos += 1,
                        Some(b']') => {
                            p.pos += 1;
                            break;
                        }
                        other => {
                            return Err(format!(
                                "expected ',' or ']' in cells, found {:?}",
                                other.map(|c| c as char)
                            ))
                        }
                    }
                }
                saw_cells = true;
            }
            other => {
                return Err(format!("unexpected top-level key {other:?}"))
            }
        }
        p.skip_ws();
        match p.peek() {
            Some(b',') => p.pos += 1,
            Some(b'}') => {
                p.pos += 1;
                break;
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at top level, found {:?}",
                    other.map(|c| c as char)
                ))
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    if !saw_bench {
        return Err("missing \"bench\" key".into());
    }
    if !saw_params {
        return Err("missing \"params\" key".into());
    }
    if !saw_cells {
        return Err("missing \"cells\" key".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("unit")
            .param("ranks", 2usize)
            .param("fraction", 0.125)
            .param("label", "a \"quoted\" name")
            .param("enabled", true);
        r.push_cell(
            Cell::new()
                .field("variant", "raw")
                .field("ns_per_msg", 41.5)
                .field("count", 1500u64),
        );
        r.push_cell(
            Cell::new().field("variant", "packed").field("neg", -3i64),
        );
        r
    }

    #[test]
    fn roundtrip_validates() {
        let json = sample().to_json();
        validate(&json).unwrap();
        assert!(json.contains("\"bench\": \"unit\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"count\": 1500"));
    }

    #[test]
    fn rejects_malformed() {
        for (doc, why) in [
            ("{}", "empty object"),
            ("{\"bench\": \"x\", \"params\": {}}", "missing cells"),
            (
                "{\"bench\": \"x\", \"params\": {}, \"cells\": []}",
                "empty cells",
            ),
            (
                "{\"bench\": \"x\", \"params\": {}, \"cells\": [{}]}",
                "empty cell object",
            ),
            (
                "{\"bench\": \"x\", \"params\": {\"a\": [1]}, \
                 \"cells\": [{\"k\": 1}]}",
                "nested array in params",
            ),
            (
                "{\"bench\": \"x\", \"params\": {\"a\": null}, \
                 \"cells\": [{\"k\": 1}]}",
                "null scalar",
            ),
            (
                "{\"bench\": \"x\", \"extra\": 1, \"params\": {}, \
                 \"cells\": [{\"k\": 1}]}",
                "unexpected key",
            ),
            (
                "{\"bench\": \"x\", \"params\": {}, \
                 \"cells\": [{\"k\": 1}]} trailing",
                "trailing garbage",
            ),
        ] {
            assert!(validate(doc).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn accepts_numbers_and_bools() {
        let doc = "{\"bench\": \"n\", \
                   \"params\": {\"x\": -1.5e3, \"y\": false}, \
                   \"cells\": [{\"a\": 0.0001, \"b\": true, \"c\": \"s\"}]}";
        validate(doc).unwrap();
    }

    #[test]
    fn u64_overflow_degrades_to_float() {
        assert!(matches!(JsonVal::from(u64::MAX), JsonVal::Num(_)));
        assert!(matches!(JsonVal::from(5u64), JsonVal::Int(5)));
    }
}
