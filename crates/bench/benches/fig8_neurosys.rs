//! E3 / Figure 8(c): Neurosys running time at four network sizes under
//! the four instrumentation versions.
//!
//! Paper observation this reproduces in shape: the piggyback version's
//! overhead is dramatic at the smallest size and decays as the network
//! grows (paper: 160% at 16×16 → 85% at 32×32 → 34% at 64×64 → 2.7% at
//! 128×128), because each of the 5 allgathers + 1 gather per step is
//! preceded by a control collective whose cost is independent of the
//! payload, while per-step computation grows with the network.

use c3_apps::Neurosys;
use c3_bench::{measure_levels, print_csv, print_fig8};

fn main() {
    let nprocs = 4;
    let mut rows = Vec::new();
    for (m, iters) in [(16usize, 700u64), (32, 400), (64, 180), (128, 60)] {
        let app = Neurosys::new(m, iters);
        rows.push(measure_levels(nprocs, &app, format!("{m}x{m}"), 50, 2));
    }
    print_fig8("Figure 8c — Neurosys (4 ranks, ckpt every 50ms)", &rows);
    print_csv("neurosys", &rows);

    let first = rows[0].overhead_pct(1);
    let last = rows[rows.len() - 1].overhead_pct(1);
    println!(
        "piggyback overhead decay: {first:.0}% at {} -> {last:.0}% at {} \
         (paper: 160% -> 2.7%)",
        rows[0].label,
        rows[rows.len() - 1].label
    );
    if last >= first {
        println!("NOTE: decay trend not observed; rerun on a quiet machine");
    }
}
