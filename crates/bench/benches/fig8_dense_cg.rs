//! E1 / Figure 8(a): Dense Conjugate Gradient running time at three
//! problem sizes under the four instrumentation versions.
//!
//! Paper observations this reproduces in shape:
//! * per-rank state grows quadratically with `n`, so full-checkpoint
//!   overhead jumps at the largest size (paper: 14% → 14% → 43%);
//! * protocol-without-app-state overhead stays small (paper: ~4.5%),
//!   showing the cost is state volume, not the protocol.
//!
//! Paper sizes 4096/8192/16384 on 16 nodes are scaled to 192/384/768 on 4
//! simulator ranks (single host); iterations scaled from 500.

use c3_apps::DenseCg;
use c3_bench::{measure_levels, print_csv, print_fig8};

fn main() {
    let nprocs = 4;
    let mut rows = Vec::new();
    for (n, iters) in [(192usize, 3000u64), (384, 1200), (768, 400)] {
        let app = DenseCg::new(n, iters);
        rows.push(measure_levels(nprocs, &app, format!("{n}x{n}"), 25, 2));
    }
    print_fig8(
        "Figure 8a — Dense Conjugate Gradient (4 ranks, ckpt every 25ms)",
        &rows,
    );
    print_csv("dense_cg", &rows);

    // Shape assertions (soft): full-checkpoint overhead should grow with
    // state size; flag loudly if the trend inverts.
    let small = rows[0].overhead_pct(3);
    let large = rows[2].overhead_pct(3);
    if large < small {
        println!(
            "NOTE: full-checkpoint overhead did not grow with state size \
             ({small:.1}% -> {large:.1}%); rerun on a quiet machine"
        );
    }
}
