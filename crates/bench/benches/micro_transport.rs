//! Transport micro-benchmark: the cost of the netsim wire and its
//! reliable-delivery sublayer, measured from the application's seat.
//!
//! Three cells, same two-rank ping-pong workload:
//!
//! * **perfect** — the default wire. Frames take the direct path; the
//!   sublayer is never constructed. This is the baseline every other
//!   cell is judged against, and the number that must not regress when
//!   netsim is merely *available* (the zero-cost-when-disabled claim).
//! * **sublayer** — a wire whose only fault is a one-in-a-million
//!   duplication, so the reliable-delivery machinery (sequencing, acks,
//!   dedup, reassembly) is fully engaged while the wire itself behaves.
//!   The gap to *perfect* is the sublayer's bookkeeping cost.
//! * **lossy** — the stock `NetCond::lossy` preset with drops,
//!   duplicates, reorder, and delay. The gap to *sublayer* is the price
//!   of actual repair traffic.
//!
//! Besides the printed lines, the bench rewrites `BENCH_transport.json`
//! at the workspace root so the numbers are tracked in-repo.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use c3_bench::report::{self, Report};
use simmpi::{NetCond, NetStats, World};

const ROUNDS: u64 = 1500;
const PAYLOAD: usize = 256;

/// Round-trip count, shrunk under `C3_BENCH_SMOKE=1`.
fn rounds() -> u64 {
    if report::smoke() {
        50
    } else {
        ROUNDS
    }
}

struct Cell {
    name: &'static str,
    elapsed_ms: f64,
    rtt_us: f64,
    stats: NetStats,
}

/// `rounds()` ping-pong round trips between two ranks; returns the
/// wall-clock time and the merged per-rank transport statistics.
fn run_cell(name: &'static str, cond: NetCond) -> Cell {
    let payload = vec![0xA5u8; PAYLOAD];
    let n = rounds();
    let t0 = Instant::now();
    let stats = World::run_net(2, cond, move |mpi| {
        let comm = mpi.world();
        let peer = 1 - mpi.rank();
        for round in 0..n {
            if mpi.rank() == 0 {
                mpi.send(&comm, peer, round as i32 % 7, &payload)?;
                mpi.recv(&comm, peer, round as i32 % 7)?;
            } else {
                mpi.recv(&comm, peer, round as i32 % 7)?;
                mpi.send(&comm, peer, round as i32 % 7, &payload)?;
            }
        }
        Ok(mpi.net_stats())
    })
    .expect("ping-pong failed");
    let elapsed = t0.elapsed();
    let mut merged = NetStats::default();
    for s in stats {
        merged.retransmits += s.retransmits;
        merged.dup_delivered += s.dup_delivered;
        merged.acks_sent += s.acks_sent;
        merged.wire.absorb(&s.wire);
    }
    Cell {
        name,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        rtt_us: elapsed.as_secs_f64() * 1e6 / n as f64,
        stats: merged,
    }
}

fn cells() -> Vec<Cell> {
    vec![
        run_cell("perfect", NetCond::perfect()),
        run_cell("sublayer", NetCond::perfect().with_dup_ppm(1)),
        run_cell("lossy", NetCond::lossy(1)),
    ]
}

fn write_json(cells: &[Cell]) {
    let mut report = Report::new("micro_transport")
        .param("ranks", 2usize)
        .param("round_trips", rounds())
        .param("payload_bytes", PAYLOAD);
    for c in cells {
        let w = &c.stats.wire;
        report.push_cell(
            report::Cell::new()
                .field("wire", c.name)
                .field("elapsed_ms", c.elapsed_ms)
                .field("rtt_us", c.rtt_us)
                .field("retransmits", c.stats.retransmits)
                .field("dup_delivered", c.stats.dup_delivered)
                .field("acks_sent", c.stats.acks_sent)
                .field("wire_dropped", w.dropped + w.partition_dropped)
                .field("wire_duplicated", w.duplicated)
                .field("wire_reordered", w.reordered)
                .field("wire_delayed", w.delayed),
        );
    }
    report.write("BENCH_transport.json");
}

fn bench_transport(c: &mut Criterion) {
    let results = cells();
    for cell in &results {
        println!(
            "transport/{}: {:.3} ms for {} round trips \
             ({:.2} us/rtt), {} retransmit(s), {} wire fault(s)",
            cell.name,
            cell.elapsed_ms,
            rounds(),
            cell.rtt_us,
            cell.stats.retransmits,
            cell.stats.wire.dropped
                + cell.stats.wire.duplicated
                + cell.stats.wire.reordered
                + cell.stats.wire.delayed,
        );
    }
    write_json(&results);

    // Criterion display: one short ping-pong burst per iteration.
    let burst: u32 = if report::smoke() { 5 } else { 100 };
    let mut g = c.benchmark_group("transport_pingpong");
    g.sample_size(5);
    g.throughput(Throughput::Elements(burst as u64));
    for (name, cond) in [
        ("perfect", NetCond::perfect()),
        ("lossy", NetCond::lossy(1)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                World::run_net(2, cond.clone(), move |mpi| {
                    let comm = mpi.world();
                    let peer = 1 - mpi.rank();
                    for _ in 0..burst {
                        if mpi.rank() == 0 {
                            mpi.send(&comm, peer, 1, b"ping")?;
                            mpi.recv(&comm, peer, 1)?;
                        } else {
                            mpi.recv(&comm, peer, 1)?;
                            mpi.send(&comm, peer, 1, b"pong")?;
                        }
                    }
                    Ok(())
                })
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_transport
}
criterion_main!(benches);
