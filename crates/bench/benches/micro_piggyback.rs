//! M1 (ablation): per-message cost of the two piggyback representations —
//! the paper's "simple implementation" (explicit ⟨epoch, amLogging,
//! messageID⟩ triple, 9 bytes) versus the optimized single packed `u32`
//! (Section 4.2).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use c3_core::piggyback::{decode_header, Piggyback, PiggybackMode};

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("piggyback_encode");
    for (name, mode) in [
        ("packed", PiggybackMode::Packed),
        ("explicit", PiggybackMode::Explicit),
    ] {
        for payload_len in [16usize, 1024] {
            let payload = vec![7u8; payload_len];
            g.bench_function(format!("{name}/{payload_len}B"), |b| {
                let pb = Piggyback {
                    epoch: 3,
                    logging: true,
                    message_id: 12345,
                };
                b.iter(|| {
                    black_box(
                        pb.encode_header(mode, black_box(&payload)).unwrap(),
                    )
                });
            });
        }
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("piggyback_decode");
    for (name, mode) in [
        ("packed", PiggybackMode::Packed),
        ("explicit", PiggybackMode::Explicit),
    ] {
        let pb = Piggyback {
            epoch: 3,
            logging: true,
            message_id: 12345,
        };
        let buf = pb.encode_header(mode, &[0u8; 64]).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| decode_header(mode, black_box(&buf)).unwrap());
        });
    }
    g.finish();
}

fn bench_classify(c: &mut Criterion) {
    use c3_core::epoch::{classify_by_color, classify_by_epoch, Color};
    c.bench_function("classify/by_epoch", |b| {
        b.iter(|| classify_by_epoch(black_box(4), black_box(5)))
    });
    c.bench_function("classify/by_color", |b| {
        b.iter(|| {
            classify_by_color(
                black_box(Color::Red),
                black_box(Color::Green),
                black_box(true),
            )
        })
    });
}

fn bench_pack_roundtrip(c: &mut Criterion) {
    c.bench_function("pack_unpack_u32", |b| {
        b.iter_batched(
            || Piggyback {
                epoch: 7,
                logging: false,
                message_id: 99,
            },
            |pb| {
                let w = pb.pack();
                black_box(c3_core::piggyback::PackedPiggyback::unpack(w))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_encode, bench_decode, bench_classify, bench_pack_roundtrip
}
criterion_main!(benches);
