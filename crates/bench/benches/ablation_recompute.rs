//! §7 ablation — recomputation checkpointing.
//!
//! The paper's future work proposes storing a *description* of recomputable
//! data instead of the data ("recomputation checkpointing"). Dense CG's
//! matrix block is read-only and deterministic, so it can be excluded from
//! checkpoints and regenerated on restart. This bench measures the effect
//! on checkpoint size and full-checkpoint overhead at the Figure 8a sizes,
//! and validates that recovery through a failure stays exact.

use c3_apps::DenseCg;
use c3_bench::fmt_bytes;
use c3_core::{run_job, C3Config, CheckpointTrigger, InstrumentationLevel};

fn run_one(nprocs: usize, app: &DenseCg) -> (std::time::Duration, u64, u64) {
    let cfg = C3Config {
        level: InstrumentationLevel::Full,
        trigger: CheckpointTrigger::EveryMillis(25),
        ..C3Config::default()
    };
    let mut best: Option<(std::time::Duration, u64, u64)> = None;
    for _ in 0..2 {
        let r = run_job(nprocs, &cfg, None, app).expect("run");
        let bytes =
            r.stats.iter().map(|s| s.app_state_bytes).max().unwrap_or(0);
        let cand = (r.elapsed, bytes, r.last_committed.unwrap_or(0));
        best = Some(match best {
            None => cand,
            Some(b) if cand.0 < b.0 => cand,
            Some(b) => b,
        });
    }
    best.unwrap()
}

fn main() {
    let nprocs = 4;
    println!("=== §7 ablation — recomputation checkpointing (dense CG) ===");
    println!(
        "{:>10} {:>14} {:>12} {:>14} {:>12} {:>9}",
        "size", "full ckpt", "state", "recompute", "state", "Δtime"
    );
    for (n, iters) in [(192usize, 3000u64), (384, 1200), (768, 400)] {
        let (t_full, b_full, _) = run_one(nprocs, &DenseCg::new(n, iters));
        let (t_slim, b_slim, _) =
            run_one(nprocs, &DenseCg::recompute(n, iters));
        println!(
            "{:>10} {:>13.3}s {:>12} {:>13.3}s {:>12} {:>+8.1}%",
            format!("{n}x{n}"),
            t_full.as_secs_f64(),
            fmt_bytes(b_full),
            t_slim.as_secs_f64(),
            fmt_bytes(b_slim),
            (t_slim.as_secs_f64() / t_full.as_secs_f64() - 1.0) * 100.0,
        );
    }

    // Correctness under failure with regeneration on the recovery path.
    let app = DenseCg::recompute(192, 400);
    let reference =
        run_job(nprocs, &C3Config::every_ops(1_000_000), None, &app)
            .expect("reference");
    let cfg = C3Config::every_ops(120).with_failure(2, 300);
    let report = run_job(nprocs, &cfg, None, &app).expect("faulty");
    assert_eq!(report.outputs, reference.outputs);
    println!(
        "\nrecovery with matrix regeneration: {} restart(s), outputs exact ✓",
        report.restarts
    );
    println!(
        "checkpoints shrink from O(n²/P) to O(n/P) bytes while numerics are\n\
         unchanged — the paper's §7 'store the description, not the data'."
    );
}
