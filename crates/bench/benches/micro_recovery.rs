//! M4 (extension): recovery cost as a function of state size and failure
//! position.
//!
//! The paper defers recovery measurements to the full version; this
//! benchmark fills that gap for the reproduction: for each state size, a
//! failure is injected mid-run and the end-to-end slowdown versus a
//! failure-free run is reported, along with how much work the rollback
//! discarded (failure op − checkpoint coverage).
//!
//! M4d compares the two recovery modes as the world grows: a full
//! rollback makes *every* rank redo the work since the last commit, so
//! the aggregate redone work scales with world size, while a localized
//! splice re-executes only the dead rank — aggregate redone work stays
//! ~flat no matter how many survivors there are. The section writes
//! `BENCH_recovery.json` (full runs only) and asserts the scaling shape
//! on the redone-iteration counters — wall clock is reported but never
//! asserted. The splice counter is deterministic (only the dead rank's
//! own op stream matters); the rollback counter varies by up to one
//! checkpoint interval of commit coverage with thread scheduling, so
//! the assertions leave at least a 2× margin over that jitter.

use std::sync::atomic::{AtomicU64, Ordering};

use c3_apps::Laplace;
use c3_bench::fmt_bytes;
use c3_bench::report::{self, Cell, Report};
use c3_core::{run_job, C3Config, C3Result, Process, RecoveryMode};
use ckptstore::impl_saveload_struct;
use ftsim::RecoveryMetrics;

/// Application iterations executed across all ranks, attempts, and
/// incarnations — re-execution (rollback replay or splice catch-up)
/// counts again, so `counted − nprocs × iters` is the redone work.
static ITERS_RUN: AtomicU64 = AtomicU64::new(0);

struct CountedRing {
    iters: u64,
}

struct RingState {
    i: u64,
    acc: u64,
}
impl_saveload_struct!(RingState { i: u64, acc: u64 });

impl c3_core::C3App for CountedRing {
    type State = RingState;
    type Output = u64;

    fn init(&self, p: &mut Process<'_>) -> C3Result<RingState> {
        Ok(RingState {
            i: 0,
            acc: p.rank() as u64 + 1,
        })
    }

    fn run(&self, p: &mut Process<'_>, s: &mut RingState) -> C3Result<u64> {
        let world = p.world();
        let n = p.size();
        let right = (p.rank() + 1) % n;
        let left = (p.rank() + n - 1) % n;
        while s.i < self.iters {
            let got =
                p.sendrecv(world, right, 7, &s.acc.to_le_bytes(), left, 7)?;
            s.acc = s.acc.rotate_left(3)
                ^ u64::from_le_bytes(got.payload[..8].try_into().unwrap());
            s.i += 1;
            ITERS_RUN.fetch_add(1, Ordering::Relaxed);
            p.potential_checkpoint(s)?;
        }
        Ok(s.acc)
    }
}

/// Run one kill scenario and return (redone iterations, metrics).
fn measure(
    nprocs: usize,
    iters: u64,
    mode: RecoveryMode,
    baseline: &c3_core::JobReport<u64>,
) -> (u64, RecoveryMetrics) {
    let app = CountedRing { iters };
    // Kill rank 1 past the second commit so both modes have committed
    // lines behind them. The splice's redone work is a pure function of
    // (nprocs, mode); the rollback's also depends on which line the job
    // had committed when the kill landed (see the module doc).
    let cfg = C3Config::every_ops(40)
        .with_failure(1, 100)
        .with_recovery(mode);
    let before = ITERS_RUN.load(Ordering::Relaxed);
    let report = run_job(nprocs, &cfg, None, &app).expect("faulty run");
    let executed = ITERS_RUN.load(Ordering::Relaxed) - before;
    assert_eq!(report.outputs, baseline.outputs, "recovery must be exact");
    let redone = executed - nprocs as u64 * iters;
    (redone, RecoveryMetrics::from_reports(&report, baseline))
}

fn main() {
    let nprocs = 4;
    println!("=== M4 — recovery cost vs state size (Laplace, 1 failure) ===");
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>10} {:>14}",
        "grid", "baseline", "with fail", "slowdown", "restarts", "state/rank"
    );
    let grids: &[(usize, u64)] = if report::smoke() {
        &[(64, 600)]
    } else {
        &[(64, 600), (128, 400), (256, 250)]
    };
    for &(n, iters) in grids {
        let app = Laplace { n, iters };
        let cfg = C3Config::every_ops(300);
        let baseline = run_job(nprocs, &cfg, None, &app).expect("baseline");
        // Fail rank 1 roughly two thirds through its op stream.
        let fail_at = (iters as f64 * 2.0 * 0.66) as u64;
        let faulty_cfg = C3Config::every_ops(300).with_failure(1, fail_at);
        let faulty = run_job(nprocs, &faulty_cfg, None, &app).expect("faulty");
        assert_eq!(faulty.outputs, baseline.outputs, "recovery must be exact");
        let m = RecoveryMetrics::from_reports(&faulty, &baseline);
        println!(
            "{:>10} {:>11.3}s {:>11.3}s {:>9.2}x {:>10} {:>14}",
            format!("{n}x{n}"),
            m.baseline_elapsed.as_secs_f64(),
            m.faulty_elapsed.as_secs_f64(),
            m.slowdown,
            m.restarts,
            fmt_bytes(app.state_bytes_per_rank(nprocs) as u64),
        );
    }

    println!(
        "\n=== M4b — recovery cost vs checkpoint interval (Laplace 128) ==="
    );
    println!(
        "{:>14} {:>12} {:>12} {:>10} {:>12}",
        "interval(ops)", "baseline", "with fail", "slowdown", "ckpts"
    );
    let app = Laplace { n: 128, iters: 400 };
    let intervals: &[u64] = if report::smoke() {
        &[300]
    } else {
        &[100, 300, 900]
    };
    for &interval in intervals {
        let cfg = C3Config::every_ops(interval);
        let baseline = run_job(nprocs, &cfg, None, &app).expect("baseline");
        let faulty_cfg = C3Config::every_ops(interval).with_failure(2, 550);
        let faulty = run_job(nprocs, &faulty_cfg, None, &app).expect("faulty");
        assert_eq!(faulty.outputs, baseline.outputs);
        let m = RecoveryMetrics::from_reports(&faulty, &baseline);
        println!(
            "{:>14} {:>11.3}s {:>11.3}s {:>9.2}x {:>12?}",
            interval,
            m.baseline_elapsed.as_secs_f64(),
            m.faulty_elapsed.as_secs_f64(),
            m.slowdown,
            faulty.last_committed.unwrap_or(0),
        );
    }
    println!(
        "\nshorter intervals commit more checkpoints, so less work is lost \
         per failure — at the price of higher failure-free overhead \
         (the classic checkpoint-interval trade-off)."
    );

    // M4c: compare against Young's first-order model.
    println!("\n=== M4c — Young's interval model ===");
    // Rough per-checkpoint cost and restart cost measured above (in ops):
    // use representative simulator values — ~20 ops of protocol work per
    // checkpoint round, ~60 ops of lost work + restart per failure.
    let (c, r) = (20.0, 60.0);
    for mtbf in [500.0f64, 2_000.0, 10_000.0] {
        let tau = ftsim::young_interval(c, mtbf);
        let eff = ftsim::expected_efficiency(tau, c, r, mtbf);
        let candidates: Vec<f64> = (5..2000).map(|k| k as f64).collect();
        let (best, best_eff) = ftsim::best_interval(&candidates, c, r, mtbf);
        println!(
            "MTBF {mtbf:>8.0} ops: Young τ* = {tau:>6.0} ops \
             (eff {eff:.3}); sweep argmax τ = {best:>6.0} (eff {best_eff:.3})"
        );
    }

    // M4d: online splice vs full rollback as the world grows. One rank
    // dies at a fixed op; the aggregate work the repair redoes is counted
    // in application iterations (deterministic), wall clock is reported
    // for color only.
    println!("\n=== M4d — recovery mode vs world size (ring, 1 failure) ===");
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "ranks", "mode", "redone iters", "elapsed", "repairs"
    );
    let iters = 60u64;
    // The smoke pair keeps the scaling assertions meaningful (the
    // full-restart redone work still more than doubles from 2 to 8).
    let sizes: Vec<usize> = if report::smoke() {
        vec![2, 8]
    } else {
        vec![2, 4, 8, 12]
    };
    let mut report = Report::new("recovery")
        .param("app", "counted-ring")
        .param("iters", iters)
        .param("interval_ops", 40u64)
        .param("fail_rank", 1u64)
        .param("fail_at_op", 100u64);
    let mut redone: Vec<(RecoveryMode, usize, u64)> = Vec::new();
    for &nprocs in &sizes {
        let baseline = run_job(
            nprocs,
            &C3Config::every_ops(40),
            None,
            &CountedRing { iters },
        )
        .expect("baseline");
        for mode in [RecoveryMode::FullRestart, RecoveryMode::Localized] {
            let (work, m) = measure(nprocs, iters, mode, &baseline);
            let label = match mode {
                RecoveryMode::FullRestart => "full-restart",
                RecoveryMode::Localized => "localized",
            };
            println!(
                "{:>8} {:>14} {:>14} {:>11.3}s {:>12}",
                nprocs,
                label,
                work,
                m.faulty_elapsed.as_secs_f64(),
                match mode {
                    RecoveryMode::FullRestart => m.restarts,
                    RecoveryMode::Localized => m.splices,
                },
            );
            report.push_cell(
                Cell::new()
                    .field("mode", label)
                    .field("nprocs", nprocs)
                    .field("redone_iters", work)
                    .field("elapsed_s", m.faulty_elapsed.as_secs_f64())
                    .field("slowdown", m.slowdown)
                    .field("restarts", m.restarts)
                    .field("splices", m.splices),
            );
            redone.push((mode, nprocs, work));
        }
    }
    let of = |mode: RecoveryMode, n: usize| {
        redone
            .iter()
            .find(|&&(m, np, _)| m == mode && np == n)
            .map(|&(_, _, w)| w)
            .unwrap()
    };
    let (first, last) = (sizes[0], sizes[sizes.len() - 1]);
    // Shape assertions: a rollback's redone work scales with world
    // size, a splice's does not, and at scale the splice redoes
    // strictly less. Margins absorb the rollback counter's
    // commit-coverage jitter.
    assert!(
        of(RecoveryMode::FullRestart, last)
            >= 2 * of(RecoveryMode::FullRestart, first),
        "full-restart redone work must grow with the world"
    );
    assert!(
        of(RecoveryMode::Localized, last)
            <= 2 * of(RecoveryMode::Localized, first).max(1),
        "localized redone work must stay ~flat as the world grows"
    );
    assert!(
        of(RecoveryMode::Localized, last)
            < of(RecoveryMode::FullRestart, last),
        "at scale the splice must redo less work than the rollback"
    );
    println!(
        "\na rollback redoes (ranks × work-since-commit); a splice redoes \
         only the dead rank's tape, so its cost is independent of the \
         world size."
    );
    report.write("BENCH_recovery.json");
}
