//! M4 (extension): recovery cost as a function of state size and failure
//! position.
//!
//! The paper defers recovery measurements to the full version; this
//! benchmark fills that gap for the reproduction: for each state size, a
//! failure is injected mid-run and the end-to-end slowdown versus a
//! failure-free run is reported, along with how much work the rollback
//! discarded (failure op − checkpoint coverage).

use c3_apps::Laplace;
use c3_bench::fmt_bytes;
use c3_core::{run_job, C3Config};
use ftsim::RecoveryMetrics;

fn main() {
    let nprocs = 4;
    println!("=== M4 — recovery cost vs state size (Laplace, 1 failure) ===");
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>10} {:>14}",
        "grid", "baseline", "with fail", "slowdown", "restarts", "state/rank"
    );
    for (n, iters) in [(64usize, 600u64), (128, 400), (256, 250)] {
        let app = Laplace { n, iters };
        let cfg = C3Config::every_ops(300);
        let baseline = run_job(nprocs, &cfg, None, &app).expect("baseline");
        // Fail rank 1 roughly two thirds through its op stream.
        let fail_at = (iters as f64 * 2.0 * 0.66) as u64;
        let faulty_cfg = C3Config::every_ops(300).with_failure(1, fail_at);
        let faulty = run_job(nprocs, &faulty_cfg, None, &app).expect("faulty");
        assert_eq!(faulty.outputs, baseline.outputs, "recovery must be exact");
        let m = RecoveryMetrics::from_reports(&faulty, &baseline);
        println!(
            "{:>10} {:>11.3}s {:>11.3}s {:>9.2}x {:>10} {:>14}",
            format!("{n}x{n}"),
            m.baseline_elapsed.as_secs_f64(),
            m.faulty_elapsed.as_secs_f64(),
            m.slowdown,
            m.restarts,
            fmt_bytes(app.state_bytes_per_rank(nprocs) as u64),
        );
    }

    println!(
        "\n=== M4b — recovery cost vs checkpoint interval (Laplace 128) ==="
    );
    println!(
        "{:>14} {:>12} {:>12} {:>10} {:>12}",
        "interval(ops)", "baseline", "with fail", "slowdown", "ckpts"
    );
    let app = Laplace { n: 128, iters: 400 };
    for interval in [100u64, 300, 900] {
        let cfg = C3Config::every_ops(interval);
        let baseline = run_job(nprocs, &cfg, None, &app).expect("baseline");
        let faulty_cfg = C3Config::every_ops(interval).with_failure(2, 550);
        let faulty = run_job(nprocs, &faulty_cfg, None, &app).expect("faulty");
        assert_eq!(faulty.outputs, baseline.outputs);
        let m = RecoveryMetrics::from_reports(&faulty, &baseline);
        println!(
            "{:>14} {:>11.3}s {:>11.3}s {:>9.2}x {:>12?}",
            interval,
            m.baseline_elapsed.as_secs_f64(),
            m.faulty_elapsed.as_secs_f64(),
            m.slowdown,
            faulty.last_committed.unwrap_or(0),
        );
    }
    println!(
        "\nshorter intervals commit more checkpoints, so less work is lost \
         per failure — at the price of higher failure-free overhead \
         (the classic checkpoint-interval trade-off)."
    );

    // M4c: compare against Young's first-order model.
    println!("\n=== M4c — Young's interval model ===");
    // Rough per-checkpoint cost and restart cost measured above (in ops):
    // use representative simulator values — ~20 ops of protocol work per
    // checkpoint round, ~60 ops of lost work + restart per failure.
    let (c, r) = (20.0, 60.0);
    for mtbf in [500.0f64, 2_000.0, 10_000.0] {
        let tau = ftsim::young_interval(c, mtbf);
        let eff = ftsim::expected_efficiency(tau, c, r, mtbf);
        let candidates: Vec<f64> = (5..2000).map(|k| k as f64).collect();
        let (best, best_eff) = ftsim::best_interval(&candidates, c, r, mtbf);
        println!(
            "MTBF {mtbf:>8.0} ops: Young τ* = {tau:>6.0} ops \
             (eff {eff:.3}); sweep argmax τ = {best:>6.0} (eff {best_eff:.3})"
        );
    }
}
