//! M3 (ablation): recovery-log append, serialization, and replay-matching
//! throughput — the cost of "keeping a log" during phase 2 of the
//! protocol.

use criterion::{
    criterion_group, criterion_main, BatchSize, Criterion, Throughput,
};
use std::hint::black_box;

use c3_core::logrec::{coll_kind, LateMessage, RecoveryLog};
use c3_core::recovery::Replay;
use ckptstore::codec::{Decoder, Encoder};
use ckptstore::SaveLoad;

fn sample_log(messages: usize, payload: usize) -> RecoveryLog {
    let mut log = RecoveryLog::new();
    for i in 0..messages {
        log.push_late(LateMessage {
            comm: 0,
            src: i % 4,
            message_id: i as u32,
            tag: (i % 7) as i32,
            payload: vec![i as u8; payload].into(),
        });
        log.push_nondet(i as u64);
    }
    log.push_collective(coll_kind::ALLREDUCE, vec![1u8; payload].into());
    log
}

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("log_append");
    for payload in [64usize, 4096] {
        g.throughput(Throughput::Bytes(payload as u64));
        g.bench_function(format!("late/{payload}B"), |b| {
            let msg = LateMessage {
                comm: 0,
                src: 1,
                message_id: 0,
                tag: 5,
                payload: vec![9u8; payload].into(),
            };
            b.iter_batched(
                RecoveryLog::new,
                |mut log| {
                    log.push_late(black_box(msg.clone()));
                    log
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.bench_function("nondet", |b| {
        b.iter_batched(
            RecoveryLog::new,
            |mut log| {
                log.push_nondet(black_box(7));
                log
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_serialize(c: &mut Criterion) {
    let mut g = c.benchmark_group("log_serialize");
    for messages in [32usize, 512] {
        let log = sample_log(messages, 256);
        g.throughput(Throughput::Bytes(log.byte_size() as u64));
        g.bench_function(format!("save/{messages}msgs"), |b| {
            b.iter(|| {
                let mut enc = Encoder::new();
                log.save(&mut enc);
                black_box(enc.into_bytes())
            })
        });
        let mut enc = Encoder::new();
        log.save(&mut enc);
        let bytes = enc.into_bytes();
        g.bench_function(format!("load/{messages}msgs"), |b| {
            b.iter(|| {
                RecoveryLog::load(&mut Decoder::new(black_box(&bytes)))
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_replay_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("log_replay");
    for messages in [32usize, 512] {
        let log = sample_log(messages, 64);
        g.bench_function(format!("drain/{messages}msgs"), |b| {
            b.iter_batched(
                || Replay::new(log.clone()),
                |mut rep| {
                    // Drain in the same pattern order they were logged.
                    let mut taken = 0;
                    while let Some(m) = rep.take_late(0, None, None) {
                        black_box(&m);
                        taken += 1;
                    }
                    assert_eq!(taken, messages);
                    while rep.next_nondet().is_some() {}
                    rep
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_append, bench_serialize, bench_replay_matching
}
criterion_main!(benches);
