//! Checkpoint I/O pipeline micro-benchmark: full vs incremental writing,
//! synchronous vs asynchronous staging, fixed-size vs content-defined
//! chunking, PackBits vs LZ4.
//!
//! Two workloads, both 4 ranks × 1 MiB of state over several commit
//! rounds (stage on all ranks, drain, commit, GC):
//!
//! * **dirty** — 1/8 of the 4 KiB-aligned pages change per round (the
//!   Dense CG shape: a large read-mostly matrix block dominating the
//!   snapshot). Chunk-aligned edits, so fixed-size chunking dedups fine.
//! * **shifted** — every round *inserts* a fresh run of bytes at the
//!   front of otherwise unchanged (incompressible) state. Every fixed
//!   chunk boundary downstream of the insertion shifts, so fixed-size
//!   dedup collapses; FastCDC cut points re-align after the edit and
//!   dedup survives. This is the workload the CDC tentpole is for.
//!
//! Each cell records stage latency (the rank's critical path), drain
//! latency (the initiator's phase-4 barrier), net bytes written, and the
//! dedup hit ratio. Besides the printed lines, the bench rewrites
//! `BENCH_pipeline.json` at the workspace root so the numbers are
//! tracked in-repo, and asserts the CDC+LZ4 wins in-bench:
//!
//! * CDC+LZ4 writes strictly fewer bytes than fixed-size/PackBits on the
//!   shifted workload (always checked);
//! * stage+drain of the async CDC+LZ4 cell beats the pre-CDC pipeline's
//!   async-incremental cell (recorded below as `BEFORE_*`) by ≥ 1.5×
//!   at equal workload parameters (full runs only — smoke rounds are
//!   too short to time).

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use c3_bench::report::{self, Report};
use ckptpipe::{
    CheckpointPipeline, Chunker, Codec, PipelineConfig, WriteMode,
};
use ckptstore::{
    CheckpointStore, MemoryBackend, RankBlobKind, StorageBackend,
};

const RANKS: usize = 4;
const STATE_BYTES: usize = 1 << 20;
const CHUNK: usize = 4096;
const DIRTY_ONE_IN: usize = 8;
const ROUNDS: u64 = 6;

/// Pre-CDC pipeline reference (BENCH_pipeline.json as of the serial
/// fixed-chunk/PackBits pipeline): the async-incremental cell's
/// stage + drain ms/ckpt at these exact workload parameters. The
/// in-bench throughput assertion holds the rebuilt pipeline to ≥ 1.5×
/// this number.
const BEFORE_ASYNC_INCR_STAGE_MS: f64 = 1.0839;
const BEFORE_ASYNC_INCR_DRAIN_MS: f64 = 14.3266;

/// Commit rounds per cell, shrunk under `C3_BENCH_SMOKE=1`.
fn rounds() -> u64 {
    if report::smoke() {
        2
    } else {
        ROUNDS
    }
}

/// Rank `rank`'s dirty-workload state at round `round`: a fixed byte
/// pattern with every `DIRTY_ONE_IN`-th page rewritten per round
/// (rotating which pages).
fn state_dirty(rank: usize, round: u64) -> Vec<u8> {
    let mut s: Vec<u8> = (0..STATE_BYTES)
        .map(|i| {
            (i as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(rank as u64) as u8
        })
        .collect();
    let nchunks = STATE_BYTES / CHUNK;
    for c in 0..nchunks {
        if c % DIRTY_ONE_IN == (round as usize) % DIRTY_ONE_IN {
            let tag = round.wrapping_mul(31).wrapping_add(c as u64);
            for (k, b) in s[c * CHUNK..(c + 1) * CHUNK].iter_mut().enumerate()
            {
                *b = tag.wrapping_add(k as u64) as u8;
            }
        }
    }
    s
}

/// Rank `rank`'s shifted-workload state at round `round`: a per-rank
/// incompressible base (seeded SplitMix64 stream) with `round` stacked
/// front-insertions of 1019 fresh bytes each. Everything after the
/// insertion point is byte-identical to the previous round — just no
/// longer at the same offset.
fn state_shifted(rank: usize, round: u64) -> Vec<u8> {
    let ins = 1019 * round as usize;
    let mut s = Vec::with_capacity(ins + STATE_BYTES);
    for i in 0..ins {
        s.push(
            (i as u64)
                .wrapping_mul(0x94D0_49BB)
                .wrapping_add(round ^ 0xC3) as u8,
        );
    }
    let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ (rank as u64).wrapping_mul(0xA5A5);
    while s.len() < ins + STATE_BYTES {
        x = x.wrapping_mul(0xD120_2E87_82B9_029D).wrapping_add(1);
        s.extend_from_slice(&x.to_le_bytes());
    }
    s.truncate(ins + STATE_BYTES);
    s
}

struct Cell {
    mode: &'static str,
    workload: &'static str,
    chunking: &'static str,
    codec: &'static str,
    incremental: bool,
    stage_ms_per_ckpt: f64,
    drain_ms_per_ckpt: f64,
    bytes_written: u64,
    dedup_hit_ratio: f64,
}

/// Run `rounds()` commit rounds under one pipeline configuration.
fn run_cell(
    mode: &'static str,
    workload: &'static str,
    io: PipelineConfig,
) -> Cell {
    let incremental = io.incremental;
    let chunking = match io.chunker {
        Chunker::Fixed { .. } => "fixed",
        Chunker::Cdc { .. } => "cdc",
    };
    let codec = if !incremental || !io.compression {
        "none"
    } else {
        match io.codec {
            Codec::None => "none",
            Codec::PackBits => "packbits",
            Codec::Lz4 => "lz4",
        }
    };
    let state = match workload {
        "shifted" => state_shifted as fn(usize, u64) -> Vec<u8>,
        _ => state_dirty,
    };
    let backend = Arc::new(MemoryBackend::new());
    let store = CheckpointStore::new(
        backend.clone() as Arc<dyn StorageBackend>,
        RANKS,
    );
    let pipeline = CheckpointPipeline::new(store.clone(), io);
    let mut stage_ns = 0u128;
    let mut drain_ns = 0u128;
    for round in 1..=rounds() {
        let t0 = Instant::now();
        for rank in 0..RANKS {
            pipeline
                .stage(round, rank, RankBlobKind::State, state(rank, round))
                .unwrap();
            pipeline
                .stage(round, rank, RankBlobKind::Log, vec![0u8; 64])
                .unwrap();
        }
        stage_ns += t0.elapsed().as_nanos();
        let t1 = Instant::now();
        pipeline.drain(round).unwrap();
        drain_ns += t1.elapsed().as_nanos();
        store.commit(round).unwrap();
        pipeline.gc_keeping(round).unwrap();
    }
    let stats = pipeline.stats();
    pipeline.shutdown();
    let probes = stats.chunks_deduped + stats.chunks_written;
    Cell {
        mode,
        workload,
        chunking,
        codec,
        incremental,
        stage_ms_per_ckpt: stage_ns as f64 / rounds() as f64 / 1e6,
        drain_ms_per_ckpt: drain_ns as f64 / rounds() as f64 / 1e6,
        bytes_written: backend.bytes_written(),
        dedup_hit_ratio: if probes == 0 {
            0.0
        } else {
            stats.chunks_deduped as f64 / probes as f64
        },
    }
}

fn cells() -> Vec<Cell> {
    let asynch = WriteMode::Async {
        writers: 2,
        queue_depth: 8,
    };
    vec![
        // The pre-CDC columns, unchanged for continuity.
        run_cell("sync", "dirty", PipelineConfig::sync_full()),
        run_cell(
            "sync",
            "dirty",
            PipelineConfig::sync_full()
                .with_incremental(true)
                .with_chunk_size(CHUNK),
        ),
        run_cell(
            "async",
            "dirty",
            PipelineConfig::default()
                .with_mode(asynch)
                .with_incremental(false)
                .with_compression(false),
        ),
        run_cell(
            "async",
            "dirty",
            PipelineConfig::default()
                .with_mode(asynch)
                .with_compression(false)
                .with_chunk_size(CHUNK),
        ),
        // The rebuilt pipeline: content-defined chunking + LZ4.
        run_cell(
            "async",
            "dirty",
            PipelineConfig::default()
                .with_mode(asynch)
                .with_chunker(Chunker::cdc(CHUNK))
                .with_codec(Codec::Lz4),
        ),
        // Shifted-state workload: before (fixed/PackBits) vs after
        // (CDC/LZ4) columns — the shift-resistance win as a number.
        run_cell(
            "async",
            "shifted",
            PipelineConfig::default()
                .with_mode(asynch)
                .with_chunk_size(CHUNK)
                .with_codec(Codec::PackBits),
        ),
        run_cell(
            "async",
            "shifted",
            PipelineConfig::default()
                .with_mode(asynch)
                .with_chunker(Chunker::cdc(CHUNK))
                .with_codec(Codec::Lz4),
        ),
    ]
}

fn find<'a>(
    cells: &'a [Cell],
    workload: &str,
    chunking: &str,
    codec: &str,
) -> &'a Cell {
    cells
        .iter()
        .find(|c| {
            c.workload == workload
                && c.chunking == chunking
                && c.codec == codec
        })
        .expect("cell exists")
}

/// The tentpole's acceptance gates, enforced every time the bench runs.
fn assert_wins(cells: &[Cell]) {
    let before = find(cells, "shifted", "fixed", "packbits");
    let after = find(cells, "shifted", "cdc", "lz4");
    assert!(
        after.bytes_written < before.bytes_written,
        "CDC+LZ4 must write strictly fewer bytes than fixed/PackBits on \
         the shifted workload: {} vs {}",
        after.bytes_written,
        before.bytes_written
    );
    assert!(
        after.dedup_hit_ratio > before.dedup_hit_ratio,
        "CDC dedup must survive the shifts: hit ratio {:.3} vs {:.3}",
        after.dedup_hit_ratio,
        before.dedup_hit_ratio
    );
    if !report::smoke() {
        let after = find(cells, "dirty", "cdc", "lz4");
        let after_ms = after.stage_ms_per_ckpt + after.drain_ms_per_ckpt;
        let before_ms =
            BEFORE_ASYNC_INCR_STAGE_MS + BEFORE_ASYNC_INCR_DRAIN_MS;
        assert!(
            after_ms * 1.5 <= before_ms,
            "rebuilt pipeline must beat the pre-CDC async-incremental \
             cell by 1.5x: {after_ms:.3} ms/ckpt vs {before_ms:.3} before"
        );
    }
}

fn write_json(cells: &[Cell]) {
    let mut report = Report::new("micro_pipeline")
        .param("ranks", RANKS)
        .param("state_bytes_per_rank", STATE_BYTES)
        .param("chunk_bytes", CHUNK)
        .param("dirty_chunk_fraction", 1.0 / DIRTY_ONE_IN as f64)
        .param("checkpoints", rounds())
        .param("before_async_incr_stage_ms", BEFORE_ASYNC_INCR_STAGE_MS)
        .param("before_async_incr_drain_ms", BEFORE_ASYNC_INCR_DRAIN_MS);
    for c in cells {
        report.push_cell(
            report::Cell::new()
                .field("mode", c.mode)
                .field("workload", c.workload)
                .field("chunking", c.chunking)
                .field("codec", c.codec)
                .field("incremental", c.incremental)
                .field("stage_ms_per_ckpt", c.stage_ms_per_ckpt)
                .field("drain_ms_per_ckpt", c.drain_ms_per_ckpt)
                .field("bytes_written", c.bytes_written)
                .field("dedup_hit_ratio", c.dedup_hit_ratio),
        );
    }
    report.write("BENCH_pipeline.json");
}

fn bench_pipeline(c: &mut Criterion) {
    let results = cells();
    for cell in &results {
        let kind = if cell.incremental {
            "incremental"
        } else {
            "full"
        };
        println!(
            "pipeline/{}/{}/{kind}/{}+{}: stage {:.3} ms/ckpt, drain {:.3} \
             ms/ckpt, {} bytes written, dedup hit ratio {:.3} over {} \
             checkpoints",
            cell.mode,
            cell.workload,
            cell.chunking,
            cell.codec,
            cell.stage_ms_per_ckpt,
            cell.drain_ms_per_ckpt,
            cell.bytes_written,
            cell.dedup_hit_ratio,
            rounds()
        );
    }
    write_json(&results);
    assert_wins(&results);

    // Criterion display of the critical-path metric: one full commit
    // round per iteration.
    let mut g = c.benchmark_group("pipeline_round");
    g.sample_size(5);
    g.throughput(Throughput::Bytes((RANKS * STATE_BYTES) as u64));
    for (name, io) in [
        ("sync_full", PipelineConfig::sync_full()),
        (
            "async_incremental",
            PipelineConfig::default()
                .with_compression(false)
                .with_chunk_size(CHUNK),
        ),
        (
            "async_cdc_lz4",
            PipelineConfig::default()
                .with_chunker(Chunker::cdc(CHUNK))
                .with_codec(Codec::Lz4),
        ),
    ] {
        let backend = Arc::new(MemoryBackend::new());
        let store =
            CheckpointStore::new(backend as Arc<dyn StorageBackend>, RANKS);
        let pipeline = CheckpointPipeline::new(store.clone(), io);
        let mut round = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                round += 1;
                for rank in 0..RANKS {
                    pipeline
                        .stage(
                            round,
                            rank,
                            RankBlobKind::State,
                            state_dirty(rank, round),
                        )
                        .unwrap();
                    pipeline
                        .stage(round, rank, RankBlobKind::Log, vec![0u8; 64])
                        .unwrap();
                }
                pipeline.drain(round).unwrap();
                store.commit(round).unwrap();
                pipeline.gc_keeping(round).unwrap();
            })
        });
        pipeline.shutdown();
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
