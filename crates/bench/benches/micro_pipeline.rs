//! Checkpoint I/O pipeline micro-benchmark: full vs incremental writing,
//! synchronous vs asynchronous staging.
//!
//! Four ranks each hold 1 MiB of state of which 1/8 of the 4 KiB chunks
//! change per checkpoint round — the Dense CG shape, where a large
//! read-mostly region (the matrix block) dominates the snapshot. Each
//! cell runs several commit rounds (stage on all ranks, drain, commit,
//! GC) and records:
//!
//! * **stage latency** — time a rank spends on its critical path handing
//!   blobs to the pipeline (the cost async staging removes);
//! * **drain latency** — time the initiator's phase-4 barrier waits for
//!   the background writers (where async defers the cost to);
//! * **bytes written** — the backend's net counter (where incremental
//!   chunking saves).
//!
//! Besides the printed lines, the bench rewrites `BENCH_pipeline.json`
//! at the workspace root so the numbers are tracked in-repo.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use c3_bench::report::{self, Report};
use ckptpipe::{CheckpointPipeline, PipelineConfig, WriteMode};
use ckptstore::{
    CheckpointStore, MemoryBackend, RankBlobKind, StorageBackend,
};

const RANKS: usize = 4;
const STATE_BYTES: usize = 1 << 20;
const CHUNK: usize = 4096;
const DIRTY_ONE_IN: usize = 8;
const ROUNDS: u64 = 6;

/// Commit rounds per cell, shrunk under `C3_BENCH_SMOKE=1`.
fn rounds() -> u64 {
    if report::smoke() {
        2
    } else {
        ROUNDS
    }
}

/// Rank `rank`'s state at round `round`: a fixed byte pattern with every
/// `DIRTY_ONE_IN`-th chunk rewritten per round (rotating which chunks).
fn state_of(rank: usize, round: u64) -> Vec<u8> {
    let mut s: Vec<u8> = (0..STATE_BYTES)
        .map(|i| {
            (i as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(rank as u64) as u8
        })
        .collect();
    let nchunks = STATE_BYTES / CHUNK;
    for c in 0..nchunks {
        if c % DIRTY_ONE_IN == (round as usize) % DIRTY_ONE_IN {
            let tag = round.wrapping_mul(31).wrapping_add(c as u64);
            for (k, b) in s[c * CHUNK..(c + 1) * CHUNK].iter_mut().enumerate()
            {
                *b = tag.wrapping_add(k as u64) as u8;
            }
        }
    }
    s
}

struct Cell {
    mode: &'static str,
    incremental: bool,
    stage_ms_per_ckpt: f64,
    drain_ms_per_ckpt: f64,
    bytes_written: u64,
}

/// Run `rounds()` commit rounds under one pipeline configuration.
fn run_cell(mode: &'static str, io: PipelineConfig) -> Cell {
    let incremental = io.incremental;
    let backend = Arc::new(MemoryBackend::new());
    let store = CheckpointStore::new(
        backend.clone() as Arc<dyn StorageBackend>,
        RANKS,
    );
    let pipeline = CheckpointPipeline::new(store.clone(), io);
    let mut stage_ns = 0u128;
    let mut drain_ns = 0u128;
    for round in 1..=rounds() {
        let t0 = Instant::now();
        for rank in 0..RANKS {
            pipeline
                .stage(round, rank, RankBlobKind::State, state_of(rank, round))
                .unwrap();
            pipeline
                .stage(round, rank, RankBlobKind::Log, vec![0u8; 64])
                .unwrap();
        }
        stage_ns += t0.elapsed().as_nanos();
        let t1 = Instant::now();
        pipeline.drain(round).unwrap();
        drain_ns += t1.elapsed().as_nanos();
        store.commit(round).unwrap();
        pipeline.gc_keeping(round).unwrap();
    }
    pipeline.shutdown();
    Cell {
        mode,
        incremental,
        stage_ms_per_ckpt: stage_ns as f64 / rounds() as f64 / 1e6,
        drain_ms_per_ckpt: drain_ns as f64 / rounds() as f64 / 1e6,
        bytes_written: backend.bytes_written(),
    }
}

fn cells() -> Vec<Cell> {
    let asynch = WriteMode::Async {
        writers: 2,
        queue_depth: 8,
    };
    vec![
        run_cell("sync", PipelineConfig::sync_full()),
        run_cell(
            "sync",
            PipelineConfig::sync_full()
                .with_incremental(true)
                .with_chunk_size(CHUNK),
        ),
        run_cell(
            "async",
            PipelineConfig::default()
                .with_mode(asynch)
                .with_incremental(false)
                .with_compression(false),
        ),
        run_cell(
            "async",
            PipelineConfig::default()
                .with_mode(asynch)
                .with_compression(false)
                .with_chunk_size(CHUNK),
        ),
    ]
}

fn write_json(cells: &[Cell]) {
    let mut report = Report::new("micro_pipeline")
        .param("ranks", RANKS)
        .param("state_bytes_per_rank", STATE_BYTES)
        .param("chunk_bytes", CHUNK)
        .param("dirty_chunk_fraction", 1.0 / DIRTY_ONE_IN as f64)
        .param("checkpoints", rounds());
    for c in cells {
        report.push_cell(
            report::Cell::new()
                .field("mode", c.mode)
                .field("incremental", c.incremental)
                .field("stage_ms_per_ckpt", c.stage_ms_per_ckpt)
                .field("drain_ms_per_ckpt", c.drain_ms_per_ckpt)
                .field("bytes_written", c.bytes_written),
        );
    }
    report.write("BENCH_pipeline.json");
}

fn bench_pipeline(c: &mut Criterion) {
    let results = cells();
    for cell in &results {
        let kind = if cell.incremental {
            "incremental"
        } else {
            "full"
        };
        println!(
            "pipeline/{}/{kind}: stage {:.3} ms/ckpt, drain {:.3} ms/ckpt, \
             {} bytes written over {} checkpoints",
            cell.mode,
            cell.stage_ms_per_ckpt,
            cell.drain_ms_per_ckpt,
            cell.bytes_written,
            rounds()
        );
    }
    write_json(&results);

    // Criterion display of the critical-path metric: one full commit
    // round per iteration.
    let mut g = c.benchmark_group("pipeline_round");
    g.sample_size(5);
    g.throughput(Throughput::Bytes((RANKS * STATE_BYTES) as u64));
    for (name, io) in [
        ("sync_full", PipelineConfig::sync_full()),
        (
            "async_incremental",
            PipelineConfig::default()
                .with_compression(false)
                .with_chunk_size(CHUNK),
        ),
    ] {
        let backend = Arc::new(MemoryBackend::new());
        let store =
            CheckpointStore::new(backend as Arc<dyn StorageBackend>, RANKS);
        let pipeline = CheckpointPipeline::new(store.clone(), io);
        let mut round = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                round += 1;
                for rank in 0..RANKS {
                    pipeline
                        .stage(
                            round,
                            rank,
                            RankBlobKind::State,
                            state_of(rank, round),
                        )
                        .unwrap();
                    pipeline
                        .stage(round, rank, RankBlobKind::Log, vec![0u8; 64])
                        .unwrap();
                }
                pipeline.drain(round).unwrap();
                store.commit(round).unwrap();
                pipeline.gc_keeping(round).unwrap();
            })
        });
        pipeline.shutdown();
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
