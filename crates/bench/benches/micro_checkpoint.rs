//! M2 (ablation): local-checkpoint cost versus state size, memory versus
//! disk stable storage — the mechanism behind Figure 8a's growth with
//! problem size.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use ckptstore::{
    CheckpointStore, DiskBackend, MemoryBackend, RankBlobKind, StorageBackend,
};
use statesave::snapshot::snapshot_to_bytes;

fn state_of(doubles: usize) -> Vec<f64> {
    (0..doubles).map(|i| (i as f64).sin()).collect()
}

fn bench_serialize(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot_serialize");
    for kb in [64usize, 1024, 8192] {
        let xs = state_of(kb * 128); // kb KiB of f64 payload
        g.throughput(Throughput::Bytes((kb * 1024) as u64));
        g.bench_function(format!("{kb}KiB"), |b| {
            b.iter(|| black_box(snapshot_to_bytes(&xs)))
        });
    }
    g.finish();
}

fn bench_store_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint_write");
    g.sample_size(20);
    for kb in [64usize, 1024, 8192] {
        let blob = snapshot_to_bytes(&state_of(kb * 128));
        g.throughput(Throughput::Bytes(blob.len() as u64));

        let mem: Arc<dyn StorageBackend> = Arc::new(MemoryBackend::new());
        let mem_store = CheckpointStore::new(mem, 1);
        let mut ckpt = 0u64;
        g.bench_function(format!("memory/{kb}KiB"), |b| {
            b.iter(|| {
                ckpt += 1;
                mem_store
                    .put_rank_blob(ckpt, 0, RankBlobKind::State, &blob)
                    .unwrap()
            })
        });

        let dir = std::env::temp_dir()
            .join(format!("c3bench-ckpt-{}-{kb}", std::process::id()));
        let disk: Arc<dyn StorageBackend> =
            Arc::new(DiskBackend::new(&dir).unwrap());
        let disk_store = CheckpointStore::new(disk, 1);
        let mut ckpt = 0u64;
        g.bench_function(format!("disk/{kb}KiB"), |b| {
            b.iter(|| {
                ckpt += 1;
                disk_store
                    .put_rank_blob(ckpt, 0, RankBlobKind::State, &blob)
                    .unwrap()
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    g.finish();
}

fn bench_restore(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot_restore");
    for kb in [64usize, 1024] {
        let blob = snapshot_to_bytes(&state_of(kb * 128));
        g.throughput(Throughput::Bytes(blob.len() as u64));
        g.bench_function(format!("{kb}KiB"), |b| {
            b.iter(|| {
                statesave::snapshot::restore_from_bytes::<Vec<f64>>(black_box(
                    &blob,
                ))
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_serialize, bench_store_write, bench_restore
}
criterion_main!(benches);
