//! Multi-level storage micro-benchmark: what does the SCR-style tier
//! hierarchy buy on the checkpoint critical path?
//!
//! Four ranks each stage 256 KiB of state per round. The "remote" tier
//! is a memory backend behind a seeded per-operation latency profile
//! (`FaultPlan::latency`) — a stand-in for a parallel file system. Each
//! cell commits several rounds and records:
//!
//! * **staged MB/s** — throughput of the commit critical path (stage on
//!   all ranks + drain barrier + commit). With local staging this path
//!   touches only the node-local tier; writing the remote tier directly
//!   puts every slow `put` on it.
//! * **tier-drain p99** — worst-percentile latency of the *background*
//!   promotion of a committed checkpoint to the deeper tiers (partner
//!   replication, Reed–Solomon encoding, the slow remote). This is the
//!   cost staging moves off the critical path.
//!
//! Besides the printed lines, the bench rewrites `BENCH_storage.json` at
//! the workspace root so the numbers are tracked in-repo. The headline
//! comparison — local staging beats direct remote writes — is asserted,
//! not just reported.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use c3_bench::report::{self, Report};
use ckptpipe::{CheckpointPipeline, PipelineConfig};
use ckptstore::{
    CheckpointStore, FaultInjectingBackend, FaultPlan, MemoryBackend,
    RankBlobKind, StorageBackend, TierSpec, TieredBackend,
};

const RANKS: usize = 4;
const STATE_BYTES: usize = 256 << 10;
const ROUNDS: u64 = 12;
const REMOTE_BASE_MS: u64 = 2;
const REMOTE_JITTER_MS: u64 = 1;
const SEED: u64 = 42;

/// Commit rounds per cell, shrunk under `C3_BENCH_SMOKE=1`.
fn rounds() -> u64 {
    if report::smoke() {
        3
    } else {
        ROUNDS
    }
}

/// The simulated parallel file system: every operation pays a seeded
/// base + jitter delay.
fn remote() -> Arc<dyn StorageBackend> {
    Arc::new(FaultInjectingBackend::new(
        Arc::new(MemoryBackend::new()),
        FaultPlan::none().latency(REMOTE_BASE_MS, REMOTE_JITTER_MS, SEED),
    ))
}

/// Whole blobs, no chunking or compression: put counts stay identical
/// across cells, so the tier topology is the only variable.
fn io() -> PipelineConfig {
    PipelineConfig::default()
        .with_incremental(false)
        .with_compression(false)
}

fn state_of(rank: usize, round: u64) -> Vec<u8> {
    (0..STATE_BYTES)
        .map(|i| {
            (i as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(rank as u64 ^ round) as u8
        })
        .collect()
}

struct Cell {
    config: &'static str,
    staged_mb_per_s: f64,
    crit_ms_per_ckpt: f64,
    drain_p99_ms: f64,
}

fn p99_ms(mut samples: Vec<u128>) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let idx = (samples.len() * 99).div_ceil(100).saturating_sub(1);
    samples[idx] as f64 / 1e6
}

/// Run `rounds()` commit rounds against one backend topology, timing
/// the critical path and the background tier drain separately.
fn run_cell(config: &'static str, backend: Arc<dyn StorageBackend>) -> Cell {
    let store = CheckpointStore::new(backend, RANKS);
    let pipeline = CheckpointPipeline::new(store.clone(), io());
    let mut crit_ns = 0u128;
    let mut drain_samples = Vec::new();
    for round in 1..=rounds() {
        let t0 = Instant::now();
        for rank in 0..RANKS {
            pipeline
                .stage(round, rank, RankBlobKind::State, state_of(rank, round))
                .unwrap();
            pipeline
                .stage(round, rank, RankBlobKind::Log, vec![0u8; 64])
                .unwrap();
        }
        pipeline.drain(round).unwrap();
        store.commit(round).unwrap();
        crit_ns += t0.elapsed().as_nanos();
        // The drain normally overlaps the next compute round; timing it
        // back-to-back here yields its full (un-overlapped) latency.
        let t1 = Instant::now();
        pipeline.schedule_tier_drain(round);
        pipeline.flush_tier_drains();
        drain_samples.push(t1.elapsed().as_nanos());
        pipeline.gc_keeping(round).unwrap();
    }
    assert_eq!(
        pipeline.tier_drain_errors(),
        0,
        "{config}: tier drain must not error"
    );
    pipeline.shutdown();
    let crit_s = crit_ns as f64 / 1e9;
    let total_mb =
        (RANKS * STATE_BYTES) as f64 * rounds() as f64 / (1024.0 * 1024.0);
    Cell {
        config,
        staged_mb_per_s: total_mb / crit_s,
        crit_ms_per_ckpt: crit_ns as f64 / rounds() as f64 / 1e6,
        drain_p99_ms: p99_ms(drain_samples),
    }
}

fn cells() -> Vec<Cell> {
    let local = || Arc::new(MemoryBackend::new()) as Arc<dyn StorageBackend>;
    vec![
        run_cell("local_only", local()),
        run_cell(
            "staged_partner",
            Arc::new(TieredBackend::new(
                vec![
                    TierSpec::direct(local()),
                    TierSpec::partner(remote(), 1),
                ],
                RANKS,
            )),
        ),
        run_cell(
            "staged_erasure",
            Arc::new(TieredBackend::new(
                vec![
                    TierSpec::direct(local()),
                    TierSpec::erasure(remote(), 3, 2),
                ],
                RANKS,
            )),
        ),
        run_cell(
            "staged_partner_erasure",
            Arc::new(TieredBackend::new(
                vec![
                    TierSpec::direct(local()),
                    TierSpec::partner(local(), 1),
                    TierSpec::erasure(remote(), 2, 1),
                ],
                RANKS,
            )),
        ),
        run_cell("direct_remote", remote()),
    ]
}

fn write_json(cells: &[Cell]) {
    let mut report = Report::new("micro_storage")
        .param("ranks", RANKS)
        .param("state_bytes_per_rank", STATE_BYTES)
        .param("checkpoints", rounds())
        .param("remote_base_ms", REMOTE_BASE_MS)
        .param("remote_jitter_ms", REMOTE_JITTER_MS)
        .param("latency_seed", SEED);
    for c in cells {
        report.push_cell(
            report::Cell::new()
                .field("config", c.config)
                .field("staged_mb_per_s", c.staged_mb_per_s)
                .field("crit_ms_per_ckpt", c.crit_ms_per_ckpt)
                .field("tier_drain_p99_ms", c.drain_p99_ms),
        );
    }
    report.write("BENCH_storage.json");
}

fn bench_storage(c: &mut Criterion) {
    let results = cells();
    for cell in &results {
        println!(
            "storage/{}: {:.1} MB/s staged, crit {:.3} ms/ckpt, \
             tier-drain p99 {:.3} ms",
            cell.config,
            cell.staged_mb_per_s,
            cell.crit_ms_per_ckpt,
            cell.drain_p99_ms
        );
    }
    // The point of the hierarchy: every staged configuration's commit
    // critical path beats writing the remote tier directly.
    let direct = results
        .iter()
        .find(|c| c.config == "direct_remote")
        .unwrap()
        .staged_mb_per_s;
    for cell in &results {
        if cell.config != "direct_remote" {
            assert!(
                cell.staged_mb_per_s > direct,
                "{} ({:.1} MB/s) must beat direct remote ({direct:.1} MB/s)",
                cell.config,
                cell.staged_mb_per_s
            );
        }
    }
    write_json(&results);

    // Criterion display of the two endpoints of the comparison.
    let mut g = c.benchmark_group("storage_commit");
    g.sample_size(10);
    g.throughput(Throughput::Bytes((RANKS * STATE_BYTES) as u64));
    for (name, backend) in [
        (
            "staged_local",
            Arc::new(TieredBackend::new(
                vec![
                    TierSpec::direct(Arc::new(MemoryBackend::new())
                        as Arc<dyn StorageBackend>),
                    TierSpec::erasure(remote(), 2, 1),
                ],
                RANKS,
            )) as Arc<dyn StorageBackend>,
        ),
        ("direct_remote", remote()),
    ] {
        let store = CheckpointStore::new(backend, RANKS);
        let pipeline = CheckpointPipeline::new(store.clone(), io());
        let mut round = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                round += 1;
                for rank in 0..RANKS {
                    pipeline
                        .stage(
                            round,
                            rank,
                            RankBlobKind::State,
                            state_of(rank, round),
                        )
                        .unwrap();
                    pipeline
                        .stage(round, rank, RankBlobKind::Log, vec![0u8; 64])
                        .unwrap();
                }
                pipeline.drain(round).unwrap();
                store.commit(round).unwrap();
                pipeline.gc_keeping(round).unwrap();
            })
        });
        pipeline.shutdown();
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_storage
}
criterion_main!(benches);
