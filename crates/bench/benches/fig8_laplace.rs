//! E2 / Figure 8(b): Laplace solver running time at three grid sizes under
//! the four instrumentation versions.
//!
//! Paper observation this reproduces in shape: overhead stays small at
//! every size (paper: ≤ 2.1%) because the per-rank state is tiny relative
//! to dense CG and each large halo message dwarfs the piggybacked word.
//!
//! Paper sizes 512/1024/2048 with 40 000 iterations on 16 nodes are scaled
//! to 96/192/384 with a few thousand iterations on 4 simulator ranks.

use c3_apps::Laplace;
use c3_bench::{measure_levels, print_csv, print_fig8};

fn main() {
    let nprocs = 4;
    let mut rows = Vec::new();
    for (n, iters) in [(96usize, 6000u64), (192, 3000), (384, 1500)] {
        let app = Laplace { n, iters };
        rows.push(measure_levels(nprocs, &app, format!("{n}x{n}"), 50, 2));
    }
    print_fig8(
        "Figure 8b — Laplace Solver (4 ranks, ckpt every 50ms)",
        &rows,
    );
    print_csv("laplace", &rows);

    let worst = rows
        .iter()
        .flat_map(|r| (1..4).map(|i| r.overhead_pct(i)).collect::<Vec<_>>())
        .fold(f64::MIN, f64::max);
    println!(
        "worst-case overhead across all versions/sizes: {worst:.1}% \
         (paper: ≤ 2.1% on real hardware; expect single digits here)"
    );
}
