//! Figure 8 analog for the zero-copy message hot path: per-message
//! protocol overhead versus raw `simmpi`, across payload sizes and
//! piggyback representations.
//!
//! The workload is two-rank batched streaming: rank 0 sends a window of
//! messages back-to-back and then waits for one ack per window, so the
//! expensive thread wake-up rendezvous is amortized across the window
//! and the timer sees the real per-message work (a ping-pong hides
//! per-message costs inside condvar wait time — an instrumented sender
//! can even measure *faster* because its extra work overlaps the
//! receiver's wake-up). Rank 0 times its own loop, so thread
//! spawn/teardown is excluded. Cells:
//!
//! * **raw** — plain `simmpi` with a pre-built refcounted payload; the
//!   floor every other cell is judged against.
//! * **copying** — raw plus the pre-zero-copy per-message tax, staged
//!   explicitly: each send concatenates a 4-byte header and the payload
//!   into a fresh buffer (`Vec::with_capacity(4 + len)`), and each
//!   receive peels the payload back off with `to_vec()`. This is exactly
//!   what the protocol layer did before headers became a separate inline
//!   segment, so `copying − raw` is the copy tax the refactor removed.
//! * **packed / explicit** — the C³ process at the `Piggyback`
//!   instrumentation level (headers on every message, no checkpoints),
//!   one cell per wire representation. `cell − raw` is the surviving
//!   O(header) protocol cost.
//! * **packed_ckpt / explicit_ckpt** — instrumentation level `Full`
//!   with checkpoints every few hundred operations, so epochs advance
//!   and the logging machinery engages mid-stream.
//! * **packed_obs** — the `packed` cell with a live `c3obs` registry
//!   attached; `packed_obs − packed` is the runtime cost of metrics
//!   recording, reported as `obs_delta_pct` and expected ≤ 2% at 16 B.
//!
//! The report's summary cells compare the pre-refactor overhead
//! (`copy tax + header cost`) against the post-refactor overhead
//! (`header cost` alone); the acceptance bar is a ≥ 2× reduction once
//! payloads reach 64 KiB and no regression at 16 B. Two `fig8` cells
//! rerun the paper's Dense CG and Laplace instrumented-vs-uninstrumented
//! ratios through [`c3_bench::measure_levels`].
//!
//! Besides the printed lines, the bench rewrites `BENCH_overhead.json`
//! at the workspace root (skipped under `C3_BENCH_SMOKE=1`).

use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use c3_apps::{DenseCg, Laplace};
use c3_bench::report::{self, Report};
use c3_bench::{measure_levels, Fig8Row};
use c3_core::{
    run_job, C3App, C3Config, C3Result, CheckpointTrigger,
    InstrumentationLevel, PiggybackMode, Process,
};
use simmpi::World;

const SIZES: [usize; 4] = [16, 1 << 10, 64 << 10, 1 << 20];
const DATA_TAG: i32 = 7;
const ACK_TAG: i32 = 8;
/// Messages sent back-to-back before waiting for one ack.
const BATCH: u64 = 32;

fn sizes() -> Vec<usize> {
    if report::smoke() {
        vec![16, 4 << 10]
    } else {
        SIZES.to_vec()
    }
}

/// Windows per cell: enough traffic to time, bounded in total bytes.
fn batches_for(size: usize) -> u64 {
    let budget = (16u64 << 20) / (BATCH * size as u64);
    let n = budget.clamp(2, 256);
    if report::smoke() {
        n.min(4)
    } else {
        n
    }
}

fn repeats() -> u32 {
    if report::smoke() {
        1
    } else {
        5
    }
}

/// Raw simmpi streaming; `copying` adds the emulated pre-zero-copy
/// per-message tax on both the send and the receive side. Returns the
/// loop time in nanoseconds as measured by rank 0.
fn raw_stream_ns(size: usize, batches: u64, copying: bool) -> u64 {
    let out = World::run(2, |mpi| {
        let comm = mpi.world();
        let peer = 1 - mpi.rank();
        let payload = Bytes::from(vec![0xC3u8; size]);
        let header = [0xA5u8; 4];
        let t0 = Instant::now();
        for _ in 0..batches {
            if mpi.rank() == 0 {
                for _ in 0..BATCH {
                    if copying {
                        let mut buf =
                            Vec::with_capacity(header.len() + payload.len());
                        buf.extend_from_slice(&header);
                        buf.extend_from_slice(&payload);
                        mpi.send_bytes(
                            &comm,
                            peer,
                            DATA_TAG,
                            Bytes::from(buf),
                        )?;
                    } else {
                        mpi.send_bytes(
                            &comm,
                            peer,
                            DATA_TAG,
                            payload.clone(),
                        )?;
                    }
                }
                black_box(mpi.recv(&comm, peer, ACK_TAG)?);
            } else {
                for _ in 0..BATCH {
                    let msg = mpi.recv(&comm, peer, DATA_TAG)?;
                    if copying {
                        black_box(msg.payload[header.len()..].to_vec());
                    } else {
                        black_box(msg);
                    }
                }
                mpi.send(&comm, peer, ACK_TAG, &[1u8])?;
            }
        }
        Ok(t0.elapsed().as_nanos() as u64)
    })
    .expect("raw streaming failed");
    out[0]
}

/// The same batched stream as a C³ application; rank 0 stashes its loop
/// nanoseconds.
struct Stream {
    size: usize,
    batches: u64,
    loop_ns: Arc<AtomicU64>,
}

impl C3App for Stream {
    type State = u64;
    type Output = ();

    fn init(&self, _p: &mut Process<'_>) -> C3Result<u64> {
        Ok(0)
    }

    fn run(&self, p: &mut Process<'_>, state: &mut u64) -> C3Result<()> {
        let comm = p.world();
        let peer = 1 - p.rank();
        let payload = Bytes::from(vec![0xC3u8; self.size]);
        let t0 = Instant::now();
        while *state < self.batches {
            if p.rank() == 0 {
                for _ in 0..BATCH {
                    p.send_bytes(comm, peer, DATA_TAG, payload.clone())?;
                }
                black_box(p.recv(comm, peer, ACK_TAG)?);
            } else {
                for _ in 0..BATCH {
                    black_box(p.recv(comm, peer, DATA_TAG)?);
                }
                p.send(comm, peer, ACK_TAG, &[1u8])?;
            }
            *state += 1;
            p.potential_checkpoint(state)?;
        }
        if p.rank() == 0 {
            self.loop_ns
                .store(t0.elapsed().as_nanos() as u64, Ordering::SeqCst);
        }
        Ok(())
    }
}

/// One instrumented streaming run; returns rank 0's loop nanoseconds.
/// `obs` attaches a live metrics registry (the zero-cost-when-off claim
/// is about the *registry-attached* tax: the `obs` feature is compiled
/// in for every cell here, so `obs = false` measures the dormant hooks
/// and `obs = true` the recording ones).
fn c3_stream_ns(
    size: usize,
    batches: u64,
    mode: PiggybackMode,
    checkpoints: bool,
    obs: bool,
) -> u64 {
    let loop_ns = Arc::new(AtomicU64::new(0));
    let app = Stream {
        size,
        batches,
        loop_ns: loop_ns.clone(),
    };
    let mut cfg = C3Config::default().with_piggyback(mode);
    if checkpoints {
        cfg.level = InstrumentationLevel::Full;
        // A handful of checkpoints per run so logging engages.
        cfg.trigger =
            CheckpointTrigger::EveryOps((batches * BATCH / 3).max(8));
    } else {
        cfg.level = InstrumentationLevel::Piggyback;
    }
    if obs {
        cfg = cfg.with_obs(c3obs::Registry::new());
    }
    run_job(2, &cfg, None, &app).expect("instrumented streaming failed");
    loop_ns.load(Ordering::SeqCst)
}

#[derive(Debug, Clone)]
struct PpCell {
    variant: &'static str,
    size: usize,
    msgs: u64,
    ns_per_msg: f64,
}

/// Best-of-N wall time, converted to per-message nanoseconds.
fn best_ns_per_msg(
    variant: &'static str,
    size: usize,
    run: impl Fn() -> u64,
) -> PpCell {
    let msgs = batches_for(size) * BATCH;
    let best = (0..repeats()).map(|_| run()).min().expect("repeats >= 1");
    PpCell {
        variant,
        size,
        msgs,
        ns_per_msg: best as f64 / msgs as f64,
    }
}

fn stream_cells() -> Vec<PpCell> {
    let mut cells = Vec::new();
    for size in sizes() {
        let b = batches_for(size);
        cells.push(best_ns_per_msg("raw", size, || {
            raw_stream_ns(size, b, false)
        }));
        cells.push(best_ns_per_msg("copying", size, || {
            raw_stream_ns(size, b, true)
        }));
        for (name, mode) in [
            ("packed", PiggybackMode::Packed),
            ("explicit", PiggybackMode::Explicit),
        ] {
            cells.push(best_ns_per_msg(name, size, || {
                c3_stream_ns(size, b, mode, false, false)
            }));
        }
        // Same cell as `packed`, but with a live metrics registry
        // attached — the obs-on column of the ≤2% overhead bar.
        cells.push(best_ns_per_msg("packed_obs", size, || {
            c3_stream_ns(size, b, PiggybackMode::Packed, false, true)
        }));
        for (name, mode) in [
            ("packed_ckpt", PiggybackMode::Packed),
            ("explicit_ckpt", PiggybackMode::Explicit),
        ] {
            cells.push(best_ns_per_msg(name, size, || {
                c3_stream_ns(size, b, mode, true, false)
            }));
        }
    }
    cells
}

fn cell_ns(cells: &[PpCell], variant: &str, size: usize) -> f64 {
    cells
        .iter()
        .find(|c| c.variant == variant && c.size == size)
        .map(|c| c.ns_per_msg)
        .expect("cell present")
}

/// Pre- vs post-refactor overhead for one (size, mode) pair.
#[derive(Debug, Clone)]
struct Summary {
    mode: &'static str,
    size: usize,
    copy_tax_ns: f64,
    header_cost_ns: f64,
    pre_overhead_ns: f64,
    post_overhead_ns: f64,
    reduction_ratio: f64,
}

fn summarize(cells: &[PpCell]) -> Vec<Summary> {
    let mut out = Vec::new();
    for size in sizes() {
        let raw = cell_ns(cells, "raw", size);
        let copy_tax = cell_ns(cells, "copying", size) - raw;
        for mode in ["packed", "explicit"] {
            let header_cost = cell_ns(cells, mode, size) - raw;
            let pre = copy_tax + header_cost;
            let post = header_cost;
            out.push(Summary {
                mode,
                size,
                copy_tax_ns: copy_tax,
                header_cost_ns: header_cost,
                pre_overhead_ns: pre,
                post_overhead_ns: post,
                // Scheduler noise can push tiny overheads below zero;
                // floor the denominator at 1 ns so the ratio stays
                // finite and meaningful.
                reduction_ratio: pre / post.max(1.0),
            });
        }
    }
    out
}

/// Observability tax for one payload size: `packed` with a registry
/// attached versus without. The acceptance bar is ≤ 2% at the 16 B cell
/// (where per-message overheads are largest relative to the payload).
#[derive(Debug, Clone)]
struct ObsSummary {
    size: usize,
    obs_off_ns: f64,
    obs_on_ns: f64,
    delta_pct: f64,
}

fn summarize_obs(cells: &[PpCell]) -> Vec<ObsSummary> {
    sizes()
        .into_iter()
        .map(|size| {
            let off = cell_ns(cells, "packed", size);
            let on = cell_ns(cells, "packed_obs", size);
            ObsSummary {
                size,
                obs_off_ns: off,
                obs_on_ns: on,
                delta_pct: (on - off) / off * 100.0,
            }
        })
        .collect()
}

fn fig8_rows() -> Vec<(&'static str, Fig8Row)> {
    if report::smoke() {
        println!("C3_BENCH_SMOKE set; skipping fig8 ratio rows");
        return Vec::new();
    }
    vec![
        (
            "dense_cg",
            measure_levels(4, &DenseCg::new(192, 800), "192x192", 25, 2),
        ),
        (
            "laplace",
            measure_levels(4, &Laplace { n: 96, iters: 2000 }, "96x96", 50, 2),
        ),
    ]
}

fn write_json(
    cells: &[PpCell],
    summaries: &[Summary],
    obs: &[ObsSummary],
    rows: &[(&'static str, Fig8Row)],
) {
    let size_list = sizes()
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut report = Report::new("micro_overhead")
        .param("ranks", 2usize)
        .param("batch", BATCH)
        .param("payload_sizes", size_list)
        .param("repeats", u64::from(repeats()));
    for c in cells {
        report.push_cell(
            report::Cell::new()
                .field("kind", "stream")
                .field("variant", c.variant)
                .field("size_bytes", c.size)
                .field("messages", c.msgs)
                .field("ns_per_msg", c.ns_per_msg),
        );
    }
    for s in summaries {
        report.push_cell(
            report::Cell::new()
                .field("kind", "summary")
                .field("mode", s.mode)
                .field("size_bytes", s.size)
                .field("copy_tax_ns", s.copy_tax_ns)
                .field("header_cost_ns", s.header_cost_ns)
                .field("pre_overhead_ns_per_msg", s.pre_overhead_ns)
                .field("post_overhead_ns_per_msg", s.post_overhead_ns)
                .field("reduction_ratio", s.reduction_ratio),
        );
    }
    for o in obs {
        report.push_cell(
            report::Cell::new()
                .field("kind", "obs")
                .field("size_bytes", o.size)
                .field("obs_off_ns_per_msg", o.obs_off_ns)
                .field("obs_on_ns_per_msg", o.obs_on_ns)
                .field("obs_delta_pct", o.delta_pct),
        );
    }
    for (app, row) in rows {
        report.push_cell(
            report::Cell::new()
                .field("kind", "fig8")
                .field("app", *app)
                .field("size", row.label.clone())
                .field("base_secs", row.cells[0].elapsed.as_secs_f64())
                .field("piggyback_overhead_pct", row.overhead_pct(1))
                .field("protocol_overhead_pct", row.overhead_pct(2))
                .field("full_overhead_pct", row.overhead_pct(3)),
        );
    }
    report.write("BENCH_overhead.json");
}

fn bench_overhead(c: &mut Criterion) {
    let cells = stream_cells();
    for cell in &cells {
        println!(
            "overhead/{}/{}B: {:.1} ns/msg over {} messages",
            cell.variant, cell.size, cell.ns_per_msg, cell.msgs
        );
    }
    let summaries = summarize(&cells);
    for s in &summaries {
        println!(
            "overhead/summary/{}/{}B: copy tax {:.1} ns + header {:.1} ns \
             -> pre {:.1} ns vs post {:.1} ns ({:.2}x reduction)",
            s.mode,
            s.size,
            s.copy_tax_ns,
            s.header_cost_ns,
            s.pre_overhead_ns,
            s.post_overhead_ns,
            s.reduction_ratio
        );
        if s.size >= 64 << 10 && s.reduction_ratio < 2.0 {
            println!(
                "NOTE: expected >= 2x overhead reduction at {}B, got {:.2}x; \
                 rerun on a quiet machine",
                s.size, s.reduction_ratio
            );
        }
    }
    let obs = summarize_obs(&cells);
    for o in &obs {
        println!(
            "overhead/obs/{}B: off {:.1} ns vs on {:.1} ns ({:+.2}%)",
            o.size, o.obs_off_ns, o.obs_on_ns, o.delta_pct
        );
        if o.size == 16 && o.delta_pct > 2.0 {
            println!(
                "NOTE: expected <= 2% obs-on overhead at 16B, got {:+.2}%; \
                 rerun on a quiet machine",
                o.delta_pct
            );
        }
    }
    let rows = fig8_rows();
    for (app, row) in &rows {
        println!(
            "overhead/fig8/{app}/{}: base {:.3}s, +piggyback {:+.1}%, \
             +protocol {:+.1}%, full {:+.1}%",
            row.label,
            row.cells[0].elapsed.as_secs_f64(),
            row.overhead_pct(1),
            row.overhead_pct(2),
            row.overhead_pct(3)
        );
    }
    write_json(&cells, &summaries, &obs, &rows);

    // Criterion display: one 1 KiB window per iteration, raw versus
    // instrumented.
    let windows = if report::smoke() { 1 } else { 4 };
    let mut g = c.benchmark_group("overhead_stream_1k");
    g.sample_size(5);
    g.throughput(Throughput::Elements(windows * BATCH));
    g.bench_function("raw", |b| {
        b.iter(|| raw_stream_ns(1 << 10, windows, false))
    });
    g.bench_function("packed", |b| {
        b.iter(|| {
            c3_stream_ns(1 << 10, windows, PiggybackMode::Packed, false, false)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_overhead
}
criterion_main!(benches);
