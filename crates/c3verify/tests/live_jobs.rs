//! End-to-end checks: traces recorded from real jobs — including jobs
//! that fail over and recover — satisfy every protocol invariant, and the
//! `c3verify` binary reproduces the in-process verdict on the serialized
//! artifact.

use std::process::Command;

use c3_apps::{Laplace, Neurosys};
use c3_core::trace::{encode_trace, TraceEvent, TraceSink};
use c3_core::{run_job, C3Config};
use c3verify::analyze;
use ftsim::FailureSchedule;

#[test]
fn recovering_job_trace_is_clean() {
    let sink = TraceSink::new();
    let cfg = FailureSchedule::single(1, 40)
        .apply(C3Config::every_ops(10))
        .with_trace(sink.clone());
    let report = run_job(3, &cfg, None, &Neurosys::new(8, 30))
        .expect("job with failover");
    assert!(report.restarts >= 1, "failure must actually trigger");
    let verdict = analyze(&sink.take());
    assert!(verdict.attempts >= 2, "trace must span the restart");
    assert!(
        verdict.is_clean(),
        "recovery trace must be invariant-clean:\n{}",
        verdict.render()
    );
}

#[test]
fn multi_failure_trace_is_clean() {
    let sink = TraceSink::new();
    let cfg = FailureSchedule::random(0xC3, 4, 3, 30..200)
        .apply(C3Config::every_ops(12))
        .with_trace(sink.clone());
    run_job(4, &cfg, None, &Laplace { n: 16, iters: 40 })
        .expect("job with repeated failover");
    let verdict = analyze(&sink.take());
    assert!(
        verdict.is_clean(),
        "multi-failure trace must be invariant-clean:\n{}",
        verdict.render()
    );
}

#[test]
fn cli_matches_in_process_verdict() {
    let sink = TraceSink::new();
    let cfg = C3Config::every_ops(8).with_trace(sink.clone());
    run_job(3, &cfg, None, &Laplace { n: 12, iters: 24 })
        .expect("reference job");
    let mut records = sink.take();
    assert!(analyze(&records).is_clean());

    let dir = std::env::temp_dir()
        .join(format!("c3verify-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let clean_path = dir.join("clean.c3trace");
    std::fs::write(&clean_path, encode_trace(&records)).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_c3verify"))
        .arg(&clean_path)
        .output()
        .expect("run c3verify");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(out.status.success(), "clean trace must exit 0: {text}");
    assert!(text.contains("OK: all protocol invariants hold"), "{text}");

    // Corrupt the trace (drop a log append) and expect exit code 1.
    let pos = records
        .iter()
        .position(|r| matches!(r.event, TraceEvent::LateLogged { .. }))
        .expect("trace must contain a logged late message");
    records.remove(pos);
    let bad_path = dir.join("mutated.c3trace");
    std::fs::write(&bad_path, encode_trace(&records)).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_c3verify"))
        .arg(&bad_path)
        .output()
        .expect("run c3verify");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    assert!(text.contains("FAIL"), "{text}");
    assert!(text.contains("I3-late-logged-once"), "{text}");

    // Garbage input is a usage error, not a verdict.
    let junk_path = dir.join("junk.bin");
    std::fs::write(&junk_path, b"not a trace").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_c3verify"))
        .arg(&junk_path)
        .output()
        .expect("run c3verify");
    assert_eq!(out.status.code(), Some(2), "decode error must exit 2");

    std::fs::remove_dir_all(&dir).ok();
}
