//! Mutation tests for the localized-recovery invariants I15/I16: the
//! analyzer must accept a genuine spliced trace — one where a killed
//! rank was respawned in place while the survivors kept running — and
//! reject deliberately corrupted variants of its splice structure.
//!
//! Each test records a clean trace from a real job running under
//! [`RecoveryMode::Localized`] with one injected kill, asserts it is
//! clean under both the state analyzer and the race checker, applies
//! exactly one corruption, and asserts the corresponding invariant is
//! flagged.

use c3_apps::Laplace;
use c3_core::trace::{TraceEvent, TraceRecord, TraceSink};
use c3_core::{run_job, C3Config, RecoveryMode};
use c3verify::{analyze, invariant, race_check};

/// The rank the schedule kills (never 0: the initiator escalates).
const VICTIM: u32 = 1;

/// Record one clean spliced trace: Laplace on 3 ranks, rank 1 killed
/// mid-attempt, repaired by a splice (no global rollback).
fn spliced_trace() -> Vec<TraceRecord> {
    let sink = TraceSink::new();
    let cfg = C3Config::every_ops(8)
        .with_failure(VICTIM as usize, 60)
        .with_recovery(RecoveryMode::Localized)
        .with_trace(sink.clone());
    let report = run_job(3, &cfg, None, &Laplace { n: 12, iters: 24 })
        .expect("spliced job");
    assert_eq!(report.restarts, 0, "a splice avoids the global rollback");
    assert_eq!(report.splices, 1, "the kill must be repaired by a splice");
    let records = sink.take();
    assert!(
        records.iter().any(|r| r.incarnation > 0),
        "trace must contain a respawned incarnation's stream"
    );
    let verdict = analyze(&records);
    assert!(
        verdict.is_clean(),
        "spliced trace must be invariant-clean:\n{}",
        verdict.render()
    );
    let races = race_check(&records);
    assert!(
        races.is_clean(),
        "spliced trace must be race-clean:\n{}",
        races.render()
    );
    records
}

/// True when `inv` appears among the report's violations for `records`.
fn flags(records: &[TraceRecord], inv: &str) -> bool {
    analyze(records)
        .violations
        .iter()
        .any(|v| v.invariant == inv)
}

fn position(
    records: &[TraceRecord],
    pred: impl Fn(&TraceRecord) -> bool,
) -> usize {
    records
        .iter()
        .position(pred)
        .expect("event must be present")
}

#[test]
fn dropping_the_respawn_announcement_is_detected() {
    let mut records = spliced_trace();
    let pos = position(&records, |r| {
        matches!(r.event, TraceEvent::RankRespawned { .. })
    });
    records.remove(pos);
    assert!(
        flags(&records, invariant::I15),
        "a respawned stream without RankRespawned must violate I15"
    );
}

#[test]
fn forging_the_announced_incarnation_is_detected() {
    let mut records = spliced_trace();
    let pos = position(&records, |r| {
        matches!(r.event, TraceEvent::RankRespawned { .. })
    });
    if let TraceEvent::RankRespawned { incarnation, .. } =
        &mut records[pos].event
    {
        *incarnation += 1;
    }
    assert!(
        flags(&records, invariant::I15),
        "a respawn announcing the wrong incarnation must violate I15"
    );
}

#[test]
fn erasing_the_superseded_failure_is_detected() {
    let mut records = spliced_trace();
    let pos = position(&records, |r| {
        r.rank == VICTIM
            && r.incarnation == 0
            && matches!(r.event, TraceEvent::FailStop { .. })
    });
    records.remove(pos);
    assert!(
        flags(&records, invariant::I15),
        "a superseded stream that does not end in a failure must \
         violate I15"
    );
}

#[test]
fn an_incarnation_gap_is_detected() {
    let mut records = spliced_trace();
    for r in records.iter_mut() {
        if r.incarnation > 0 {
            r.incarnation += 1;
        }
    }
    assert!(
        flags(&records, invariant::I15),
        "incarnations 0 and 2 without 1 must violate I15"
    );
}

#[test]
fn dropping_the_catchup_completion_is_detected() {
    let mut records = spliced_trace();
    let pos = position(&records, |r| {
        matches!(r.event, TraceEvent::SpliceReplayed { .. })
    });
    records.remove(pos);
    assert!(
        flags(&records, invariant::I16),
        "a finished respawn without a catch-up completion must \
         violate I16"
    );
}

#[test]
fn duplicating_the_catchup_completion_is_detected() {
    let mut records = spliced_trace();
    let pos = position(&records, |r| {
        matches!(r.event, TraceEvent::SpliceReplayed { .. })
    });
    let mut dup = records[pos].clone();
    dup.seq += 1_000_000; // append to the same stream, well past its end
    records.push(dup);
    assert!(
        flags(&records, invariant::I16),
        "two catch-up completions in one incarnation must violate I16"
    );
}

#[test]
fn moving_catchup_into_an_original_incarnation_is_detected() {
    let mut records = spliced_trace();
    let pos = position(&records, |r| {
        matches!(r.event, TraceEvent::SpliceReplayed { .. })
    });
    let mut moved = records[pos].clone();
    records.remove(pos);
    // Re-home the completion onto a survivor's (incarnation-0) stream.
    moved.rank = (VICTIM + 1) % 3;
    moved.incarnation = 0;
    moved.seq = 1_000_000;
    records.push(moved);
    assert!(
        flags(&records, invariant::I16),
        "a catch-up completion in an original incarnation must \
         violate I16"
    );
}

#[test]
fn shrinking_the_replayed_counter_is_detected() {
    let mut records = spliced_trace();
    // Claim many frames were already replayed when the incarnation
    // started, more than the completion reports in total.
    let pos = position(&records, |r| {
        matches!(r.event, TraceEvent::RankRespawned { .. })
    });
    if let TraceEvent::RankRespawned { replayed, .. } = &mut records[pos].event
    {
        *replayed = u64::MAX;
    }
    assert!(
        flags(&records, invariant::I16),
        "a catch-up replaying fewer frames than the respawn already \
         observed must violate I16"
    );
}
