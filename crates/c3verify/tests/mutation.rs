//! Mutation tests: the analyzer must accept a genuine trace and reject
//! deliberately corrupted variants of it.
//!
//! Each test records a clean trace from a real job (Laplace on 3 ranks
//! with frequent checkpoints, so every message class and several
//! initiator rounds occur), asserts it is clean, applies exactly one
//! corruption, and asserts the corresponding invariant is flagged.

use c3_apps::Laplace;
use c3_core::epoch::MsgClass;
use c3_core::trace::{TraceEvent, TraceRecord, TraceSink};
use c3_core::{run_job, C3Config};
use c3verify::{analyze, invariant};

/// Record one clean trace. Returns the records of the (single) attempt.
///
/// Whether a given run produces late messages is scheduling-dependent
/// (a rank must receive from a pre-checkpoint peer while logging), so
/// retry until the trace contains every event class the mutation tests
/// corrupt — otherwise the tests flake on a fast, lucky interleaving.
fn clean_trace() -> Vec<TraceRecord> {
    for _ in 0..32 {
        let sink = TraceSink::new();
        let cfg = C3Config::every_ops(8).with_trace(sink.clone());
        let app = Laplace { n: 12, iters: 24 };
        run_job(3, &cfg, None, &app).expect("reference job");
        let records = sink.take();
        let report = analyze(&records);
        assert!(
            report.is_clean(),
            "reference trace must be clean:\n{}",
            report.render()
        );
        report
            .commits
            .iter()
            .for_each(|c| assert!(*c > 0, "expected committed checkpoints"));
        let has_late_class = records.iter().any(|r| {
            matches!(
                r.event,
                TraceEvent::RecvClassified {
                    class: MsgClass::Late,
                    ..
                }
            )
        });
        let has_late_logged = records
            .iter()
            .any(|r| matches!(r.event, TraceEvent::LateLogged { .. }));
        if has_late_class && has_late_logged {
            return records;
        }
    }
    panic!("no run out of 32 produced a late message");
}

/// True when `inv` appears among the report's violations for `records`.
fn flags(records: &[TraceRecord], inv: &str) -> bool {
    analyze(records)
        .violations
        .iter()
        .any(|v| v.invariant == inv)
}

#[test]
fn dropping_a_log_record_is_detected() {
    let mut records = clean_trace();
    let pos = records
        .iter()
        .position(|r| matches!(r.event, TraceEvent::LateLogged { .. }))
        .expect("trace must contain a logged late message");
    records.remove(pos);
    assert!(
        flags(&records, invariant::I3),
        "dropped LateLogged must violate I3"
    );
}

#[test]
fn reordering_initiator_phases_is_detected() {
    let mut records = clean_trace();
    // The analyzer orders each rank's stream by seq, so reordering means
    // swapping the *payloads* of two phase records, not the Vec order.
    let phases: Vec<usize> = records
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r.event, TraceEvent::InitiatorPhase { .. }))
        .map(|(i, _)| i)
        .collect();
    assert!(
        phases.len() >= 2,
        "trace must contain at least one full initiator round"
    );
    let (a, b) = (phases[0], phases[1]);
    let tmp = records[a].event.clone();
    records[a].event = records[b].event.clone();
    records[b].event = tmp;
    let report = analyze(&records);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == invariant::I9
                || v.invariant == invariant::I5),
        "swapped initiator phases must violate I9 or I5:\n{}",
        report.render()
    );
}

#[test]
fn flipping_a_late_classification_is_detected() {
    let mut records = clean_trace();
    let rec = records
        .iter_mut()
        .find(|r| {
            matches!(
                r.event,
                TraceEvent::RecvClassified {
                    class: MsgClass::Late,
                    ..
                }
            )
        })
        .expect("trace must contain a late-classified receive");
    if let TraceEvent::RecvClassified { class, .. } = &mut rec.event {
        *class = MsgClass::IntraEpoch;
    }
    let report = analyze(&records);
    // The flipped receive no longer pairs with any send of the claimed
    // epoch (I2) and the log append that follows it is orphaned (I3).
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == invariant::I2),
        "flipped classification must violate I2:\n{}",
        report.render()
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == invariant::I3),
        "orphaned log append must violate I3:\n{}",
        report.render()
    );
}

#[test]
fn corrupting_a_send_count_announcement_is_detected() {
    let mut records = clean_trace();
    let rec = records
        .iter_mut()
        .find(|r| {
            matches!(
                &r.event,
                TraceEvent::CheckpointTaken { send_counts, .. }
                    if send_counts.iter().any(|c| *c > 0)
            )
        })
        .expect("trace must contain a checkpoint with non-zero sends");
    if let TraceEvent::CheckpointTaken { send_counts, .. } = &mut rec.event {
        let q = send_counts.iter().position(|c| *c > 0).unwrap();
        send_counts[q] += 1;
    }
    assert!(
        flags(&records, invariant::I4),
        "corrupted mySendCount must violate I4"
    );
}

#[test]
fn forging_an_epoch_is_detected() {
    let mut records = clean_trace();
    let rec = records
        .iter_mut()
        .find(|r| matches!(r.event, TraceEvent::CheckpointTaken { .. }))
        .expect("trace must contain a checkpoint");
    if let TraceEvent::CheckpointTaken { ckpt, .. } = &mut rec.event {
        *ckpt += 1;
    }
    assert!(
        flags(&records, invariant::I1),
        "skipped epoch must violate I1"
    );
}

#[test]
fn dropping_a_pipeline_drain_is_detected() {
    let mut records = clean_trace();
    let pos = records
        .iter()
        .position(|r| matches!(r.event, TraceEvent::PipelineDrained { .. }))
        .expect("trace must contain a pipeline drain barrier");
    records.remove(pos);
    assert!(
        flags(&records, invariant::I13),
        "a commit without its drain barrier must violate I13"
    );
}

#[test]
fn undercounting_a_drain_barrier_is_detected() {
    let mut records = clean_trace();
    let rec = records
        .iter_mut()
        .find(|r| matches!(r.event, TraceEvent::PipelineDrained { .. }))
        .expect("trace must contain a pipeline drain barrier");
    if let TraceEvent::PipelineDrained { blobs, .. } = &mut rec.event {
        *blobs -= 1;
    }
    assert!(
        flags(&records, invariant::I13),
        "a drain accounting for fewer blobs than staged must violate I13"
    );
}

#[test]
fn flipping_a_piggybacked_logging_flag_is_detected() {
    let mut records = clean_trace();
    let rec = records
        .iter_mut()
        .find(|r| {
            matches!(
                r.event,
                TraceEvent::RecvClassified {
                    class: MsgClass::Late,
                    ..
                }
            )
        })
        .expect("trace must contain a late-classified receive");
    if let TraceEvent::RecvClassified { sender_logging, .. } = &mut rec.event {
        *sender_logging = !*sender_logging;
    }
    assert!(
        flags(&records, invariant::I2),
        "corrupted piggybacked amLogging must violate I2"
    );
}
