//! Race-mutation tests: the happens-before checker must accept genuine
//! traces and flag deliberately de-synchronized variants of them.
//!
//! Each test records a clean trace from a real job, asserts it is
//! race-clean, applies exactly one mutation that *reorders* protocol
//! events (payload swaps between records — the checker orders each
//! rank's stream by `seq`, so swapping payloads is the reordering), and
//! asserts the corresponding R-invariant fires. The mutations hoist an
//! anchor event (commit, drain barrier, GC sweep) to just after the
//! round start, or a rank's checkpoint to the head of its stream —
//! positions every transitive happens-before path provably cannot
//! reach, so the assertions never depend on scheduling luck.

use c3_apps::{DenseCg, Laplace};
use c3_core::epoch::MsgClass;
use c3_core::trace::{
    encode_trace, phase_code, TraceEvent, TraceRecord, TraceSink,
};
use c3_core::{run_job, C3Config};
use c3verify::{race, race_check};

/// Record one clean Laplace trace containing a committed checkpoint `c`
/// with a late-classified receive of epoch `c` (retrying — whether a
/// late message occurs is scheduling-dependent).
fn clean_trace_with_late_commit() -> (Vec<TraceRecord>, u64) {
    for _ in 0..32 {
        let sink = TraceSink::new();
        let cfg = C3Config::every_ops(8).with_trace(sink.clone());
        let app = Laplace { n: 12, iters: 24 };
        run_job(3, &cfg, None, &app).expect("reference job");
        let records = sink.take();
        let report = race_check(&records);
        assert!(
            report.is_clean(),
            "reference trace must be race-clean:\n{}",
            report.render()
        );
        let late_epochs: Vec<u64> = records
            .iter()
            .filter_map(|r| match r.event {
                TraceEvent::RecvClassified {
                    class: MsgClass::Late,
                    receiver_epoch,
                    ..
                } => Some(u64::from(receiver_epoch)),
                _ => None,
            })
            .collect();
        if let Some(&c) =
            late_epochs.iter().find(|&&e| report.commits.contains(&e))
        {
            return (records, c);
        }
    }
    panic!("no run out of 32 produced a late message in a committed epoch");
}

/// Index (into `records`) of the rank-0 record for checkpoint `c`'s
/// round start.
fn round_start(records: &[TraceRecord], c: u64) -> usize {
    records
        .iter()
        .position(|r| {
            r.rank == 0
                && matches!(
                    r.event,
                    TraceEvent::InitiatorPhase {
                        phase: phase_code::COLLECTING_READY,
                        ckpt,
                    } if ckpt == c
                )
        })
        .expect("committed checkpoint must have a round start")
}

/// Index of the rank-0 record whose `seq` immediately follows record
/// `after` in rank 0's stream.
fn next_on_rank0(records: &[TraceRecord], after: usize) -> usize {
    let seq = records[after].seq;
    records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.rank == 0 && r.seq > seq)
        .min_by_key(|(_, r)| r.seq)
        .map(|(i, _)| i)
        .expect("round start cannot be rank 0's last event")
}

/// Swap the payloads of two records (the streams' `seq` order is
/// untouched, so this reorders the *events*, not the encoding).
fn swap_events(records: &mut [TraceRecord], a: usize, b: usize) {
    let tmp = records[a].event.clone();
    records[a].event = records[b].event.clone();
    records[b].event = tmp;
}

/// True when invariant `inv` appears among the race-check violations.
fn flags(records: &[TraceRecord], inv: &str) -> bool {
    race_check(records)
        .violations
        .iter()
        .any(|v| v.invariant == inv)
}

/// Hoist an anchor event of checkpoint `c` (found by `pick`, which
/// receives `c`) to the slot right after `c`'s round start and return
/// the mutated trace.
fn hoist_to_round_start(
    pick: impl Fn(&TraceRecord, u64) -> bool,
) -> (Vec<TraceRecord>, u64) {
    let (mut records, c) = clean_trace_with_late_commit();
    let anchor = records
        .iter()
        .position(|r| r.rank == 0 && pick(r, c))
        .expect("anchor event must exist on rank 0");
    let slot = next_on_rank0(&records, round_start(&records, c));
    swap_events(&mut records, anchor, slot);
    (records, c)
}

#[test]
fn healthy_laplace_trace_is_race_clean() {
    let (records, _) = clean_trace_with_late_commit();
    let report = race_check(&records);
    assert!(report.is_clean(), "{}", report.render());
    assert!(!report.commits.is_empty());
}

/// Dense CG runs collectives every iteration: the clique edges must
/// order the rounds without fabricating a cycle or a race.
#[test]
fn healthy_dense_cg_trace_is_race_clean() {
    let sink = TraceSink::new();
    let cfg = C3Config::every_ops(16).with_trace(sink.clone());
    let app = DenseCg::new(48, 10);
    run_job(3, &cfg, None, &app).expect("reference job");
    let report = race_check(&sink.take());
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn hoisted_commit_races_late_messages_and_finalizes() {
    let (records, c) = hoist_to_round_start(
        |r, c| matches!(r.event, TraceEvent::Commit { ckpt } if ckpt == c),
    );
    // With the commit moved to the top of its round, every late delivery
    // of epoch `c` and every rank's log finalization for `c` lose their
    // happens-before path to it.
    let report = race_check(&records);
    assert!(
        report.violations.iter().any(|v| v.invariant == race::R1),
        "hoisted commit {c} must race its epoch's late deliveries:\n{}",
        report.render()
    );
    assert!(
        report.violations.iter().any(|v| v.invariant == race::R2),
        "hoisted commit {c} must race the log finalizations:\n{}",
        report.render()
    );
}

#[test]
fn hoisted_drain_barrier_races_staged_blobs() {
    let (records, _) = hoist_to_round_start(|r, c| {
        matches!(
            r.event,
            TraceEvent::PipelineDrained { ckpt, .. } if ckpt == c
        )
    });
    assert!(
        flags(&records, race::R3),
        "a drain barrier hoisted above the round's blob writes must \
         race them"
    );
}

#[test]
fn hoisted_gc_sweep_races_blob_writes() {
    let (records, _) = hoist_to_round_start(
        |r, c| matches!(r.event, TraceEvent::GcRan { kept } if kept == c),
    );
    assert!(
        flags(&records, race::R5),
        "a GC sweep hoisted above the round's blob writes must race them"
    );
}

#[test]
fn unrequested_checkpoint_races_the_round() {
    let (mut records, c) = clean_trace_with_late_commit();
    // Move some non-initiator rank's checkpoint for `c` to the head of
    // its stream: nothing can precede the stream head, so the checkpoint
    // is provably unordered with the round that requested it.
    let anchor = records
        .iter()
        .position(|r| {
            r.rank != 0
                && matches!(
                    r.event,
                    TraceEvent::CheckpointTaken { ckpt, .. } if ckpt == c
                )
        })
        .expect("a worker rank must have checkpointed for the commit");
    let rank = records[anchor].rank;
    let head = records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.rank == rank)
        .min_by_key(|(_, r)| r.seq)
        .map(|(i, _)| i)
        .unwrap();
    assert_ne!(anchor, head, "checkpoint cannot already lead the stream");
    swap_events(&mut records, anchor, head);
    assert!(
        flags(&records, race::R4),
        "a checkpoint at the stream head must race the initiator round"
    );
}

/// The `race` subcommand: exit 0 on a clean artifact, 1 on a mutated
/// one, 2 on garbage — same convention as the default `check` mode.
#[test]
fn race_subcommand_exit_codes() {
    use std::process::Command;

    let dir =
        std::env::temp_dir().join(format!("c3race-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let (clean, c) = clean_trace_with_late_commit();
    let clean_path = dir.join("clean.c3trace");
    std::fs::write(&clean_path, encode_trace(&clean)).unwrap();

    let mut raced = clean;
    let anchor = raced
        .iter()
        .position(|r| {
            r.rank == 0
                && matches!(r.event, TraceEvent::Commit { ckpt } if ckpt == c)
        })
        .unwrap();
    let slot = next_on_rank0(&raced, round_start(&raced, c));
    swap_events(&mut raced, anchor, slot);
    let raced_path = dir.join("raced.c3trace");
    std::fs::write(&raced_path, encode_trace(&raced)).unwrap();

    let garbage_path = dir.join("garbage.c3trace");
    std::fs::write(&garbage_path, b"not a trace").unwrap();

    let exe = env!("CARGO_BIN_EXE_c3verify");
    let run = |args: &[&std::ffi::OsStr]| {
        Command::new(exe)
            .args(args)
            .output()
            .expect("spawn c3verify")
    };

    let ok = run(&["race".as_ref(), clean_path.as_os_str()]);
    assert_eq!(ok.status.code(), Some(0), "{ok:?}");

    let bad = run(&["race".as_ref(), raced_path.as_os_str()]);
    assert_eq!(bad.status.code(), Some(1), "{bad:?}");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("R1") || stdout.contains("R2"), "{stdout}");

    let io = run(&["race".as_ref(), garbage_path.as_os_str()]);
    assert_eq!(io.status.code(), Some(2), "{io:?}");

    std::fs::remove_dir_all(&dir).ok();
}
