//! `c3verify` — check recorded C³ protocol traces against the paper's
//! invariants.
//!
//! ```text
//! c3verify [check] [--quiet] <trace-file>...   state invariants I1..I16
//! c3verify race    [--quiet] <trace-file>...   ordering invariants R0..R6
//! c3verify explore [--dpor] [--max N]          canned interleaving sweep
//! ```
//!
//! The bare-file form (no subcommand) is the historical interface and
//! stays supported: `c3verify <trace-file>...` runs `check`.
//!
//! Exit status: 0 when every invariant holds in every file (or every
//! explored interleaving), 1 when any violation is found, 2 on usage /
//! I/O / decode errors.

use std::process::ExitCode;

use c3verify::{CheckKind, ExploreConfig, Op, Reduction};

const USAGE: &str = "usage: c3verify [check|race] [--quiet] \
                     <trace-file>...\n       c3verify explore [--dpor] \
                     [--max N]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("explore") => explore_cmd(&args[1..]),
        Some("race") => files_cmd(&args[1..], CheckKind::Races),
        Some("check") => files_cmd(&args[1..], CheckKind::Invariants),
        // Historical bare-file form (flags or paths) runs `check`.
        _ => files_cmd(&args, CheckKind::Invariants),
    }
}

/// Shared driver for the per-file subcommands (`check` and `race`): flag
/// parsing here, everything else — running the checks, rendering, the
/// exit-status contract — in [`c3verify::verdict`].
fn files_cmd(args: &[String], kind: CheckKind) -> ExitCode {
    let mut quiet = false;
    let mut files = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                println!(
                    "checks C3 protocol traces (magic C3TRACE2) against \
                     the PPoPP 2003 protocol invariants; `race` rebuilds \
                     the happens-before relation and reports unordered \
                     conflicting event pairs"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("c3verify: unknown flag {flag}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let verdict = c3verify::verdict(kind, &files);
    print!("{}", verdict.render(quiet));
    if let Some(e) = verdict.first_error() {
        eprintln!("c3verify {}: {e}", kind.verb());
    }
    ExitCode::from(verdict.exit_code())
}

/// Run the canned 4-rank exploration scenario and print the explored /
/// pruned state accounting; with `--dpor`, use partial-order reduction.
fn explore_cmd(args: &[String]) -> ExitCode {
    let mut reduction = Reduction::Full;
    let mut max = 100_000usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dpor" => reduction = Reduction::Dpor,
            "--max" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("c3verify explore: --max needs a number");
                    return ExitCode::from(2);
                };
                max = n;
            }
            "--help" | "-h" => {
                println!("usage: c3verify explore [--dpor] [--max N]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("c3verify explore: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }

    // A checkpoint round on 4 ranks with a ring of worker traffic: the
    // same shape the explorer's DPOR tests use, big enough that the
    // reduction is visible in the printed accounting.
    let programs = vec![
        vec![Op::Initiate, Op::Ckpt, Op::Recv { src: 1 }],
        vec![
            Op::Send { dst: 0, tag: 1 },
            Op::Ckpt,
            Op::Send { dst: 2, tag: 1 },
        ],
        vec![Op::Recv { src: 1 }, Op::Ckpt],
        vec![Op::Send { dst: 2, tag: 3 }; 2],
    ];
    let cfg = ExploreConfig::new(programs, max).with_reduction(reduction);
    let out = c3verify::explore(&cfg);
    println!(
        "c3verify explore ({}): {} interleaving(s), {} deadlock(s), {} \
         state(s) explored, {} pruned, {} transition(s){}",
        match reduction {
            Reduction::Full => "full",
            Reduction::Dpor => "dpor",
        },
        out.interleavings,
        out.deadlocks,
        out.states_explored,
        out.states_pruned,
        out.transitions,
        if out.truncated { " [truncated]" } else { "" },
    );
    if out.is_clean() {
        println!("OK: all protocol invariants hold in every interleaving");
        ExitCode::SUCCESS
    } else {
        println!("FAIL: {} invariant violation(s)", out.violations.len());
        for v in &out.violations {
            println!("  {v}");
        }
        ExitCode::FAILURE
    }
}
