//! `c3verify` — check a recorded C³ protocol trace against the paper's
//! invariants.
//!
//! ```text
//! c3verify [--quiet] <trace-file>...
//! ```
//!
//! Exit status: 0 when every invariant holds in every file, 1 when any
//! violation is found, 2 on usage / I/O / decode errors.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quiet = false;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("usage: c3verify [--quiet] <trace-file>...");
                println!(
                    "checks C3 protocol traces (magic C3TRACE1) against \
                     the PPoPP 2003 protocol invariants"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("c3verify: unknown flag {flag}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: c3verify [--quiet] <trace-file>...");
        return ExitCode::from(2);
    }

    let mut violated = false;
    for file in &files {
        match c3verify::analyze_file(file.as_ref()) {
            Err(e) => {
                eprintln!("c3verify: {e}");
                return ExitCode::from(2);
            }
            Ok(report) => {
                if !report.is_clean() {
                    violated = true;
                }
                if !quiet || !report.is_clean() {
                    if files.len() > 1 {
                        print!("{file}: ");
                    }
                    print!("{}", report.render());
                }
            }
        }
    }
    if violated {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
