//! The offline protocol-invariant analyzer.
//!
//! [`analyze`] consumes the merged per-rank event streams recorded by
//! `c3_core::trace` and checks the C³ protocol's safety invariants
//! (Bronevetsky et al., PPoPP 2003). Records are grouped by job attempt
//! (each attempt is a complete restart: in-flight traffic does not cross
//! attempts) and, within an attempt, replayed per rank in decision order;
//! cross-rank properties are then checked by joining streams through
//! message identities — exactly how the protocol itself correlates
//! events.
//!
//! Every invariant is a *safety* property, so a stream truncated by an
//! injected failure can never create a false positive: the analyzer
//! checks what happened, not what should still happen (obligations that
//! a failure legitimately cancels — e.g. "every classified-late message
//! is eventually logged" — are only enforced on streams that did not end
//! in a [`TraceEvent::FailStop`]).
//!
//! The checked invariants:
//!
//! * **I1 epoch-monotone** — a rank's epoch starts at 0 (or at the
//!   recovered checkpoint) and advances by exactly 1 per local
//!   checkpoint; every event's recorded epoch matches the replayed one
//!   (Section 3.1).
//! * **I2 classification** — every receive classified per Definition 1
//!   pairs with a real send whose epoch is `receiver_epoch - 1` (late),
//!   `receiver_epoch` (intra-epoch) or `receiver_epoch + 1` (early), with
//!   the piggybacked `amLogging` flag intact; consequently sender and
//!   receiver epochs never differ by more than one.
//! * **I3 late-logged-once** — a late-classified message is appended to
//!   the recovery log immediately and exactly once; log appends happen
//!   only for late-classified messages (Section 4.2).
//! * **I4 send-count-accounting** — `mySendCount` announcements equal the
//!   sender's actual per-destination send count for the closed epoch, the
//!   announcement arrives intact, and `readyToStopLogging` is sent only
//!   when every channel's late traffic balances: announced = prior early
//!   receipts + intra-epoch receipts of the closed epoch + late receipts
//!   of the logging epoch (Section 4.3, Figure 4).
//! * **I5 initiator-gating** — `stopLogging` is broadcast only after
//!   `readyToStopLogging` from *every* rank; `commit` only after
//!   `stoppedLogging` from every rank (Section 4.1).
//! * **I6 suppression** — suppressed re-sends occur only while
//!   re-executing the recovered epoch, at most once per recorded early
//!   message id, and suppression lists match the recorded early receipts
//!   (Section 4.4).
//! * **I7 collective-conjunction** — all participants of a collective
//!   agree on the control-exchange outcome `(max_epoch, stopped_at_max)`;
//!   the maximum is actually attained; a result is logged iff the rank
//!   was logging and no max-epoch participant had stopped (Section 4.5).
//! * **I8 barrier-alignment** — a barrier executes in a single epoch:
//!   lagging participants checkpoint up to the maximum first
//!   (Section 4.5).
//! * **I9 initiator-phase-order** — the initiator cycles
//!   `collecting-ready → collecting-stopped → idle/commit` with
//!   checkpoint numbers increasing by exactly 1 per round (Section 4.1).
//! * **I10 class-vs-logging** — late messages arrive only while the
//!   receiver is logging, early messages only while it is not
//!   (Definition 1 + Figure 4's classification context).
//! * **I11 replay-bounded** — log replay happens only during recovery and
//!   delivers at most the number of logged late messages (Section 4.4).
//! * **I12 commit-completeness** — a committed checkpoint has a local
//!   checkpoint *and* a finalized log on every rank (the recovery line is
//!   complete), and no rank checkpoints without a `pleaseCheckpoint`
//!   request or a barrier alignment forcing it.
//! * **I13 drain-before-commit** — with the asynchronous I/O pipeline, a
//!   checkpoint is committed only after the initiator's drain barrier for
//!   it returned, and the drained blob count equals the blobs all ranks
//!   staged for that checkpoint (two-phase commit over asynchronous
//!   writes). Enforced only on traces that contain pipeline events, so
//!   pre-pipeline recordings still analyze cleanly.
//! * **I14 tier-provenance** — on a multi-level store, a restart never
//!   reads a checkpoint from a tier deeper than the mover actually
//!   drained it to: a `TierRecovered { tier > 0 }` in attempt `a > 1`
//!   requires a `TierDrained` for the same checkpoint at a tier ≥ the
//!   claimed one in some earlier attempt of the trace. The first attempt
//!   of a trace is exempt (it may be continuing a previous job whose
//!   drain events live in that job's trace).
//! * **I15 splice-supersession** — under localized recovery a rank may
//!   appear several times per attempt, once per incarnation. Every
//!   superseded incarnation's stream ends in a `FailStop` (a rank is
//!   replaced only because it died), every respawned stream begins with
//!   a `RankRespawned` carrying its own incarnation number, and the
//!   incarnation numbers are contiguous from 0. Only the highest
//!   incarnation — the *effective stream* — feeds I1–I14: the spliced
//!   rank re-executes the attempt deterministically, so its effective
//!   stream joins with the survivors' exactly like a failure-free run.
//! * **I16 splice-catchup-once** — a respawned incarnation completes
//!   catch-up exactly once (one `SpliceReplayed` per respawn, none in
//!   original incarnations) unless it died mid-catch-up, and its final
//!   replayed-frame count never falls below the count observed when the
//!   incarnation started.
//!
//! Structural defects of the trace itself (duplicate sequence numbers,
//! ragged count vectors, initiator events off rank 0) are reported as
//! **T0 well-formed**.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use c3_core::epoch::MsgClass;
use c3_core::logrec::coll_kind;
use c3_core::trace::{control_kind, phase_code, TraceEvent, TraceRecord};

use crate::report::{Report, Violation};

/// Invariant identifiers used in [`Violation::invariant`].
pub mod invariant {
    /// Epochs advance by exactly one local checkpoint at a time.
    pub const I1: &str = "I1-epoch-monotone";
    /// Every classification pairs with a real send one epoch away at most.
    pub const I2: &str = "I2-classification";
    /// Late messages are logged immediately and exactly once.
    pub const I3: &str = "I3-late-logged-once";
    /// `mySendCount` / `receivedAll?` accounting balances.
    pub const I4: &str = "I4-send-count-accounting";
    /// The initiator waits for every rank before advancing a phase.
    pub const I5: &str = "I5-initiator-gating";
    /// Early re-sends are suppressed once each, only during recovery.
    pub const I6: &str = "I6-suppression";
    /// Collective participants agree on the conjunction-rule outcome.
    pub const I7: &str = "I7-collective-conjunction";
    /// Barriers execute in a single epoch.
    pub const I8: &str = "I8-barrier-alignment";
    /// Initiator phases cycle in order, one checkpoint per round.
    pub const I9: &str = "I9-initiator-phase-order";
    /// Late implies logging; early implies not logging.
    pub const I10: &str = "I10-class-vs-logging";
    /// Replay is recovery-only and bounded by the log.
    pub const I11: &str = "I11-replay-bounded";
    /// Committed checkpoints are complete on every rank.
    pub const I12: &str = "I12-commit-completeness";
    /// Asynchronously staged blobs are drained to storage before commit.
    pub const I13: &str = "I13-drain-before-commit";
    /// Recovery never reads a checkpoint from a tier it was not drained to.
    pub const I14: &str = "I14-tier-provenance";
    /// Superseded incarnations died; respawns announce themselves; the
    /// effective per-rank history is the highest incarnation's.
    pub const I15: &str = "I15-splice-supersession";
    /// Exactly one catch-up completion per respawned incarnation.
    pub const I16: &str = "I16-splice-catchup-once";
    /// The trace itself is structurally sound.
    pub const T0: &str = "T0-well-formed";
}

/// A send observed in a rank stream.
struct SendFact {
    comm: u64,
    dst: u32,
    epoch: u32,
    logging: bool,
    id: u32,
    suppressed: bool,
    seq: u64,
}

/// A classified receive observed in a rank stream.
struct RecvFact {
    comm: u64,
    src: u32,
    id: u32,
    class: MsgClass,
    sender_logging: bool,
    epoch: u32,
    seq: u64,
    /// True when the receive sits in a respawned incarnation's catch-up
    /// region (before its `SpliceReplayed` marker). Such receives re-enact
    /// the dead incarnation's tape, but polled control consumption is not
    /// order-faithful under replay, so the *classification* may diverge
    /// from the physical one — I2 pairs these by identity against the
    /// superseded incarnation's receive instead of trusting the class.
    catch_up: bool,
}

/// A collective control exchange observed in a rank stream.
struct CollFact {
    comm: u64,
    kind: u8,
    epoch: u32,
    logging: bool,
    max_epoch: u32,
    stopped_at_max: bool,
    seq: u64,
}

/// Rank-0 items relevant to the initiator's phase machine, in stream
/// order.
enum IniItem {
    Phase { phase: u8, ckpt: u64, seq: u64 },
    Ready { src: u32 },
    Stopped { src: u32 },
    Commit { ckpt: u64, seq: u64 },
}

/// Everything the cross-rank passes need from one rank's stream.
#[derive(Default)]
struct RankFacts {
    recovered: Option<u64>,
    restored_early: Vec<u64>,
    /// ckpt -> (send_counts, early_counts, seq).
    checkpoints: BTreeMap<u64, (Vec<u64>, Vec<u64>, u64)>,
    finalized: BTreeSet<u64>,
    sends: Vec<SendFact>,
    recvs: Vec<RecvFact>,
    /// Epochs in which `readyToStopLogging` was sent, with seq.
    ready_epochs: Vec<(u32, u64)>,
    /// Per source rank: `mySendCount` arguments received, in order.
    msc_recv: Vec<Vec<u64>>,
    replays: u64,
    late_in_log: u64,
    colls: Vec<CollFact>,
    commits: Vec<(u64, u64)>,
    initiator_items: Vec<IniItem>,
    /// ckpt -> blobs this rank staged with the I/O pipeline.
    staged: BTreeMap<u64, u64>,
    /// Sends transmitted by superseded (dead) incarnations of this rank.
    /// They are physical wire traffic: survivors may have received them,
    /// and the respawn's re-execution of the same identity was squelched
    /// before it reached the wire.
    superseded_sends: Vec<SendFact>,
    /// Receives classified by superseded (dead) incarnations of this
    /// rank. They record the *physical* classification of each taped
    /// message — the ground truth when the respawn's catch-up replay
    /// classifies the same message differently.
    superseded_recvs: Vec<RecvFact>,
    /// Rank 0 only: (ckpt, blobs, seq) per pipeline drain barrier.
    drains: Vec<(u64, u64, u64)>,
    /// Rank 0 only: (kept ckpt, seq) per post-commit GC sweep.
    gcs: Vec<(u64, u64)>,
    /// Rank 0 only: (ckpt, tier) per async tier-drain completion.
    tier_drains: Vec<(u64, u8)>,
    /// The (ckpt, tier, seq) this rank's recovery read its state from,
    /// when the job ran over a multi-level store.
    tier_recovered: Option<(u64, u8, u64)>,
    failed: bool,
    last_seq: u64,
}

impl RankFacts {
    fn default_with_ranks(n: usize) -> Self {
        RankFacts {
            msc_recv: vec![Vec::new(); n],
            ..RankFacts::default()
        }
    }
}

/// Replay one rank's stream, checking the single-stream invariants and
/// collecting the facts the cross-rank passes join on.
fn scan_rank(
    attempt: u64,
    rank: u32,
    nranks: usize,
    stream: &[&TraceRecord],
    out: &mut Vec<Violation>,
) -> RankFacts {
    let mut f = RankFacts::default_with_ranks(nranks);
    let mut epoch: u32 = 0;
    let mut logging = false;
    let mut seen_epoch_event = false;
    // (src, id) of a late / early classification whose log record must be
    // the very next event.
    let mut pending_late: Option<(u32, u32)> = None;
    let mut pending_early: Option<(u32, u32)> = None;
    let mut please_ckpts: BTreeSet<u64> = BTreeSet::new();
    let mut barrier_target: Option<u64> = None;
    let mut last_ckpt_counts: Option<(u64, Vec<u64>)> = None;
    let mut suppressed_ids: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nranks];
    let mut suppress_list_len: Vec<Option<u64>> = vec![None; nranks];
    let mut prev_seq: Option<u64> = None;
    // True once a respawned incarnation's `SpliceReplayed` marker has
    // passed: events before it are catch-up re-enactments of the dead
    // incarnation's tape.
    let mut caught_up = false;

    let mut flag = |inv: &'static str, seq: u64, detail: String| {
        out.push(Violation {
            invariant: inv,
            attempt,
            rank,
            seq,
            detail,
        });
    };

    for rec in stream {
        let seq = rec.seq;
        f.last_seq = seq;
        if prev_seq == Some(seq) {
            flag(invariant::T0, seq, "duplicate sequence number".into());
        }
        prev_seq = Some(seq);

        // I3 discipline: a late/early classification must be followed
        // immediately by its log record.
        match &rec.event {
            TraceEvent::LateLogged { .. }
            | TraceEvent::EarlyRecorded { .. } => {}
            _ => {
                if let Some((src, id)) = pending_late.take() {
                    flag(
                        invariant::I3,
                        seq,
                        format!(
                            "late message (src {src}, id {id}) classified in \
                             epoch {epoch} but never logged"
                        ),
                    );
                }
                if let Some((src, id)) = pending_early.take() {
                    flag(
                        invariant::I3,
                        seq,
                        format!(
                            "early message (src {src}, id {id}) classified in \
                             epoch {epoch} but its id was never recorded"
                        ),
                    );
                }
            }
        }

        match &rec.event {
            TraceEvent::RecoveryStart {
                ckpt,
                late_in_log,
                early_counts,
            } => {
                if seen_epoch_event {
                    flag(
                        invariant::I1,
                        seq,
                        format!(
                            "recovery from checkpoint {ckpt} started after \
                             epoch-bearing events (epoch {epoch})"
                        ),
                    );
                }
                if early_counts.len() != nranks {
                    flag(
                        invariant::T0,
                        seq,
                        format!(
                            "restored early-count vector has {} entries for \
                             {nranks} ranks",
                            early_counts.len()
                        ),
                    );
                }
                epoch = *ckpt as u32;
                logging = false;
                seen_epoch_event = true;
                f.recovered = Some(*ckpt);
                f.restored_early = early_counts.clone();
                f.late_in_log = *late_in_log;
            }
            TraceEvent::CheckpointTaken {
                ckpt,
                send_counts,
                early_counts,
            } => {
                seen_epoch_event = true;
                if *ckpt != u64::from(epoch) + 1 {
                    flag(
                        invariant::I1,
                        seq,
                        format!(
                            "local checkpoint {ckpt} taken from epoch {epoch} \
                             (expected checkpoint {})",
                            u64::from(epoch) + 1
                        ),
                    );
                }
                if send_counts.len() != nranks || early_counts.len() != nranks
                {
                    flag(
                        invariant::T0,
                        seq,
                        format!(
                            "checkpoint {ckpt} count vectors have {}/{} \
                             entries for {nranks} ranks",
                            send_counts.len(),
                            early_counts.len()
                        ),
                    );
                }
                let justified = please_ckpts.contains(ckpt)
                    || barrier_target == Some(*ckpt);
                if !justified {
                    flag(
                        invariant::I12,
                        seq,
                        format!(
                            "checkpoint {ckpt} taken without a \
                             pleaseCheckpoint request or barrier alignment"
                        ),
                    );
                }
                barrier_target = None;
                epoch = *ckpt as u32;
                logging = true;
                last_ckpt_counts = Some((*ckpt, send_counts.clone()));
                f.checkpoints.insert(
                    *ckpt,
                    (send_counts.clone(), early_counts.clone(), seq),
                );
            }
            TraceEvent::LogFinalized { ckpt, .. } => {
                if !logging {
                    flag(
                        invariant::I10,
                        seq,
                        format!(
                            "log for checkpoint {ckpt} finalized while not \
                             logging"
                        ),
                    );
                }
                if *ckpt != u64::from(epoch) {
                    flag(
                        invariant::I1,
                        seq,
                        format!(
                            "log finalized for checkpoint {ckpt} while in \
                             epoch {epoch}"
                        ),
                    );
                }
                logging = false;
                f.finalized.insert(*ckpt);
            }
            TraceEvent::Send {
                comm,
                dst,
                epoch: send_epoch,
                logging: send_logging,
                message_id,
                suppressed,
                ..
            } => {
                seen_epoch_event = true;
                if *send_epoch != epoch {
                    flag(
                        invariant::I1,
                        seq,
                        format!(
                            "send to {dst} piggybacked epoch {send_epoch} but \
                             the rank is in epoch {epoch}"
                        ),
                    );
                }
                if *send_logging != logging {
                    flag(
                        invariant::T0,
                        seq,
                        format!(
                            "send to {dst} piggybacked amLogging \
                             {send_logging} but the rank's flag is {logging}"
                        ),
                    );
                }
                if *suppressed {
                    match f.recovered {
                        None => flag(
                            invariant::I6,
                            seq,
                            format!(
                                "re-send to {dst} (id {message_id}) \
                                 suppressed in a fresh attempt"
                            ),
                        ),
                        Some(k) if u64::from(epoch) != k => flag(
                            invariant::I6,
                            seq,
                            format!(
                                "re-send to {dst} (id {message_id}) \
                                 suppressed in epoch {epoch}, not the \
                                 recovered epoch {k}"
                            ),
                        ),
                        Some(_) => {}
                    }
                    let dsti = *dst as usize;
                    if dsti < nranks
                        && !suppressed_ids[dsti].insert(*message_id)
                    {
                        flag(
                            invariant::I6,
                            seq,
                            format!(
                                "message id {message_id} to {dst} suppressed \
                                 twice"
                            ),
                        );
                    }
                }
                f.sends.push(SendFact {
                    comm: *comm,
                    dst: *dst,
                    epoch: *send_epoch,
                    logging: *send_logging,
                    id: *message_id,
                    suppressed: *suppressed,
                    seq,
                });
            }
            TraceEvent::RecvClassified {
                comm,
                src,
                message_id,
                class,
                sender_logging,
                receiver_epoch,
                receiver_logging,
                ..
            } => {
                seen_epoch_event = true;
                if *receiver_epoch != epoch || *receiver_logging != logging {
                    flag(
                        invariant::I1,
                        seq,
                        format!(
                            "receive from {src} recorded receiver state \
                             (epoch {receiver_epoch}, logging \
                             {receiver_logging}) but the replayed state is \
                             (epoch {epoch}, logging {logging})"
                        ),
                    );
                }
                match class {
                    MsgClass::Late => {
                        if !*receiver_logging {
                            flag(
                                invariant::I10,
                                seq,
                                format!(
                                    "late message from {src} (id \
                                     {message_id}) delivered in epoch \
                                     {receiver_epoch} while not logging"
                                ),
                            );
                        }
                        if *receiver_epoch == 0 {
                            flag(
                                invariant::I2,
                                seq,
                                format!(
                                    "message from {src} classified late in \
                                     epoch 0 (no previous epoch exists)"
                                ),
                            );
                        }
                        pending_late = Some((*src, *message_id));
                    }
                    MsgClass::Early => {
                        if *receiver_logging {
                            flag(
                                invariant::I10,
                                seq,
                                format!(
                                    "early message from {src} (id \
                                     {message_id}) delivered in epoch \
                                     {receiver_epoch} while logging"
                                ),
                            );
                        }
                        pending_early = Some((*src, *message_id));
                    }
                    MsgClass::IntraEpoch => {}
                }
                f.recvs.push(RecvFact {
                    comm: *comm,
                    src: *src,
                    id: *message_id,
                    class: *class,
                    sender_logging: *sender_logging,
                    epoch: *receiver_epoch,
                    seq,
                    catch_up: rec.incarnation > 0 && !caught_up,
                });
            }
            TraceEvent::LateLogged { src, message_id } => {
                if pending_late.take() != Some((*src, *message_id)) {
                    flag(
                        invariant::I3,
                        seq,
                        format!(
                            "log record (src {src}, id {message_id}) without \
                             a matching late classification"
                        ),
                    );
                }
            }
            TraceEvent::EarlyRecorded { src, message_id } => {
                if pending_early.take() != Some((*src, *message_id)) {
                    flag(
                        invariant::I3,
                        seq,
                        format!(
                            "early-id record (src {src}, id {message_id}) \
                             without a matching early classification"
                        ),
                    );
                }
            }
            TraceEvent::ReplayLate {
                src, message_id, ..
            } => {
                f.replays += 1;
                if f.recovered.is_none() {
                    flag(
                        invariant::I11,
                        seq,
                        format!(
                            "late message (src {src}, id {message_id}) \
                             replayed outside recovery"
                        ),
                    );
                }
            }
            TraceEvent::ControlSent { dst, kind, arg } => match *kind {
                control_kind::READY_TO_STOP_LOGGING => {
                    if !logging {
                        flag(
                            invariant::I4,
                            seq,
                            format!(
                                "readyToStopLogging sent in epoch {epoch} \
                                 while not logging"
                            ),
                        );
                    }
                    f.ready_epochs.push((epoch, seq));
                }
                control_kind::MY_SEND_COUNT => match &last_ckpt_counts {
                    Some((ckpt, counts)) => {
                        let expect = counts.get(*dst as usize).copied();
                        if expect != Some(*arg) {
                            flag(
                                invariant::I4,
                                seq,
                                format!(
                                    "mySendCount({arg}) to {dst} does \
                                         not match checkpoint {ckpt}'s \
                                         recorded count {expect:?}"
                                ),
                            );
                        }
                    }
                    None => flag(
                        invariant::I4,
                        seq,
                        format!(
                            "mySendCount({arg}) to {dst} sent before any \
                                 local checkpoint"
                        ),
                    ),
                },
                _ => {}
            },
            TraceEvent::ControlRecv { src, kind, arg } => {
                let srci = *src as usize;
                match *kind {
                    control_kind::PLEASE_CHECKPOINT => {
                        please_ckpts.insert(*arg);
                    }
                    control_kind::MY_SEND_COUNT => {
                        if srci < nranks {
                            f.msc_recv[srci].push(*arg);
                        } else {
                            flag(
                                invariant::T0,
                                seq,
                                format!(
                                    "mySendCount from out-of-range rank {src}"
                                ),
                            );
                        }
                    }
                    control_kind::READY_TO_STOP_LOGGING => {
                        f.initiator_items.push(IniItem::Ready { src: *src });
                    }
                    control_kind::STOPPED_LOGGING => {
                        f.initiator_items.push(IniItem::Stopped { src: *src });
                    }
                    _ => {}
                }
            }
            TraceEvent::InitiatorPhase { phase, ckpt } => {
                if rank != 0 {
                    flag(
                        invariant::T0,
                        seq,
                        format!("initiator phase event on rank {rank}"),
                    );
                }
                f.initiator_items.push(IniItem::Phase {
                    phase: *phase,
                    ckpt: *ckpt,
                    seq,
                });
            }
            TraceEvent::Commit { ckpt } => {
                if rank != 0 {
                    flag(
                        invariant::T0,
                        seq,
                        format!("commit event on rank {rank}"),
                    );
                }
                f.commits.push((*ckpt, seq));
                f.initiator_items.push(IniItem::Commit { ckpt: *ckpt, seq });
            }
            TraceEvent::CollectiveControl {
                comm,
                kind,
                epoch: coll_epoch,
                logging: was_logging,
                max_epoch,
                stopped_at_max,
                logged,
            } => {
                seen_epoch_event = true;
                if *coll_epoch != epoch {
                    flag(
                        invariant::I1,
                        seq,
                        format!(
                            "collective (kind {kind}) recorded epoch \
                             {coll_epoch} but the rank is in epoch {epoch}"
                        ),
                    );
                }
                if *max_epoch < *coll_epoch {
                    flag(
                        invariant::I7,
                        seq,
                        format!(
                            "collective (kind {kind}) in epoch {coll_epoch} \
                             reports participant maximum {max_epoch}"
                        ),
                    );
                }
                if *logged != (*was_logging && !*stopped_at_max) {
                    flag(
                        invariant::I7,
                        seq,
                        format!(
                            "collective (kind {kind}) in epoch {coll_epoch}: \
                             logged={logged} violates the conjunction rule \
                             (logging={was_logging}, \
                             stopped_at_max={stopped_at_max})"
                        ),
                    );
                }
                if *kind == coll_kind::BARRIER && *coll_epoch != *max_epoch {
                    flag(
                        invariant::I8,
                        seq,
                        format!(
                            "barrier executed in epoch {coll_epoch} below \
                             the participant maximum {max_epoch}"
                        ),
                    );
                }
                f.colls.push(CollFact {
                    comm: *comm,
                    kind: *kind,
                    epoch: *coll_epoch,
                    logging: *was_logging,
                    max_epoch: *max_epoch,
                    stopped_at_max: *stopped_at_max,
                    seq,
                });
            }
            TraceEvent::BarrierAligned {
                from_epoch,
                to_epoch,
            } => {
                if *from_epoch != epoch {
                    flag(
                        invariant::I1,
                        seq,
                        format!(
                            "barrier alignment recorded epoch {from_epoch} \
                             but the rank is in epoch {epoch}"
                        ),
                    );
                }
                if *to_epoch != from_epoch + 1 {
                    flag(
                        invariant::I8,
                        seq,
                        format!(
                            "barrier alignment jumps from epoch {from_epoch} \
                             to {to_epoch}: epochs may differ by at most one"
                        ),
                    );
                }
                barrier_target = Some(u64::from(*to_epoch));
            }
            TraceEvent::SuppressSent { dst, count } => {
                let dsti = *dst as usize;
                let expect = f.restored_early.get(dsti).copied().unwrap_or(0);
                if f.recovered.is_none() || *count != expect {
                    flag(
                        invariant::I6,
                        seq,
                        format!(
                            "suppression list of {count} id(s) sent to {dst} \
                             but {expect} early message(s) were restored \
                             from it"
                        ),
                    );
                }
            }
            TraceEvent::SuppressRecv { src, count } => {
                if f.recovered.is_none() {
                    flag(
                        invariant::I6,
                        seq,
                        format!(
                            "suppression list received from {src} in a fresh \
                             attempt"
                        ),
                    );
                }
                if srci_in(*src, nranks) {
                    suppress_list_len[*src as usize] = Some(*count);
                }
            }
            TraceEvent::FailStop { .. } => {
                f.failed = true;
                // Cancel end-of-stream obligations: the failure interrupted
                // whatever was in flight.
                pending_late = None;
                pending_early = None;
            }
            TraceEvent::BlobStaged { ckpt, kind } => {
                if *kind > 2 {
                    flag(
                        invariant::T0,
                        seq,
                        format!(
                            "blob staged for checkpoint {ckpt} with unknown \
                             kind tag {kind}"
                        ),
                    );
                }
                *f.staged.entry(*ckpt).or_default() += 1;
            }
            TraceEvent::PipelineDrained { ckpt, blobs } => {
                if rank != 0 {
                    flag(
                        invariant::T0,
                        seq,
                        format!("pipeline drain event on rank {rank}"),
                    );
                }
                f.drains.push((*ckpt, *blobs, seq));
            }
            TraceEvent::GcRan { kept } => {
                if rank != 0 {
                    flag(
                        invariant::T0,
                        seq,
                        format!("GC sweep event on rank {rank}"),
                    );
                }
                f.gcs.push((*kept, seq));
            }
            TraceEvent::RecoveryComplete => {}
            // Transport-layer repair totals are diagnostic context: the
            // reliable-delivery sublayer masks wire faults below the
            // protocol, so no C³ invariant constrains these counters.
            TraceEvent::NetSummary { .. } => {}
            TraceEvent::TierDrained { ckpt, tier } => {
                if rank != 0 {
                    flag(
                        invariant::T0,
                        seq,
                        format!("tier drain event on rank {rank}"),
                    );
                }
                if *tier == 0 {
                    flag(
                        invariant::T0,
                        seq,
                        format!(
                            "checkpoint {ckpt} 'drained' to tier 0 — the \
                             staging tier is covered by the pipeline drain \
                             barrier, not the mover"
                        ),
                    );
                }
                f.tier_drains.push((*ckpt, *tier));
            }
            // Splice structure (which incarnation these events may appear
            // in, and how often) is checked by `check_splices` across all
            // incarnation streams; here only rank-local sanity applies.
            TraceEvent::RankRespawned { incarnation, .. } => {
                if *incarnation == 0 {
                    flag(
                        invariant::T0,
                        seq,
                        "respawn event claims incarnation 0 (original \
                         incarnations are never respawns)"
                            .into(),
                    );
                }
            }
            TraceEvent::SpliceReplayed { .. } => {
                caught_up = true;
            }
            TraceEvent::TierRecovered { ckpt, tier } => {
                if f.recovered != Some(*ckpt) {
                    flag(
                        invariant::T0,
                        seq,
                        format!(
                            "tier-recovery event names checkpoint {ckpt} \
                             but this rank recovered from {:?}",
                            f.recovered
                        ),
                    );
                }
                f.tier_recovered = Some((*ckpt, *tier, seq));
            }
        }
    }

    if !f.failed {
        if let Some((src, id)) = pending_late {
            flag(
                invariant::I3,
                f.last_seq,
                format!(
                    "late message (src {src}, id {id}) classified but never \
                     logged (stream end)"
                ),
            );
        }
        if let Some((src, id)) = pending_early {
            flag(
                invariant::I3,
                f.last_seq,
                format!(
                    "early message (src {src}, id {id}) classified but its \
                     id was never recorded (stream end)"
                ),
            );
        }
    }

    // I6: per destination, suppressed re-sends never exceed the
    // suppression list received from it.
    for dst in 0..nranks {
        let used = suppressed_ids[dst].len() as u64;
        let allowed = suppress_list_len[dst].unwrap_or(0);
        if used > allowed {
            flag(
                invariant::I6,
                f.last_seq,
                format!(
                    "{used} re-send(s) to {dst} suppressed but its \
                     suppression list held {allowed} id(s)"
                ),
            );
        }
    }

    f
}

fn srci_in(src: u32, nranks: usize) -> bool {
    (src as usize) < nranks
}

/// Pair every classified receive with the send that produced it (I2).
fn join_classifications(
    attempt: u64,
    facts: &BTreeMap<u32, RankFacts>,
    out: &mut Vec<Violation>,
) {
    // (src, dst, comm, sender_epoch, id) -> piggybacked logging flags, in
    // send order. Suppressed re-sends never reach the wire in this
    // attempt (the receipt lives in the receiver's checkpointed state).
    let mut sends: HashMap<(u32, u32, u64, u32, u32), VecDeque<bool>> =
        HashMap::new();
    for (&rank, f) in facts {
        for s in &f.sends {
            if !s.suppressed {
                sends
                    .entry((rank, s.dst, s.comm, s.epoch, s.id))
                    .or_default()
                    .push_back(s.logging);
            }
        }
        // Physical overlay for localized recovery: a send transmitted by
        // a superseded incarnation is what the receiver actually holds.
        // The respawn's re-execution of the same identity never reached
        // the wire (the splice layer squelched it), so its piggyback
        // flag — which replay divergence may have flipped — must not be
        // the pairing truth. Replace the re-executed copy's flag with
        // the transmitted original's; identities the respawn never
        // re-issued are added outright.
        for s in &f.superseded_sends {
            let e = sends
                .entry((rank, s.dst, s.comm, s.epoch, s.id))
                .or_default();
            match e.front_mut() {
                Some(flag) => *flag = s.logging,
                None => e.push_back(s.logging),
            }
        }
    }
    for (&rank, f) in facts {
        // Physical classifications by this rank's dead incarnations, by
        // message identity. A catch-up re-enactment of the same taped
        // message pairs through these: replay is not order-faithful in
        // polled control consumption, so the re-enacted *class* (and with
        // it the implied sender epoch) may diverge from what physically
        // happened — the superseded incarnation's receive is the truth.
        let mut physical: HashMap<(u32, u64, u32), VecDeque<&RecvFact>> =
            HashMap::new();
        for p in &f.superseded_recvs {
            physical
                .entry((p.src, p.comm, p.id))
                .or_default()
                .push_back(p);
        }
        for r in &f.recvs {
            let (class, epoch, piggy) = match r.catch_up {
                true => match physical
                    .get_mut(&(r.src, r.comm, r.id))
                    .and_then(VecDeque::pop_front)
                {
                    Some(p) => (p.class, p.epoch, p.sender_logging),
                    // The dead incarnation fed this message to its
                    // matching engine (taping it) but died before the
                    // application receive: the catch-up receive is its
                    // first app-level receipt. Its class may still be
                    // divergent — the miss arm below widens the epoch.
                    None => (r.class, r.epoch, r.sender_logging),
                },
                false => (r.class, r.epoch, r.sender_logging),
            };
            let sender_epoch = match class {
                MsgClass::Late => {
                    if epoch == 0 {
                        continue; // already flagged in scan_rank
                    }
                    epoch - 1
                }
                MsgClass::IntraEpoch => epoch,
                MsgClass::Early => epoch + 1,
            };
            let mut hit = sends
                .get_mut(&(r.src, rank, r.comm, sender_epoch, r.id))
                .and_then(VecDeque::pop_front);
            if hit.is_none() && r.catch_up {
                // No physical counterpart recorded and the class-implied
                // epoch misses: accept the identity under any adjacent
                // sender epoch (the identity is physical; the class is a
                // logical re-enactment).
                for alt in [epoch.wrapping_sub(1), epoch, epoch + 1] {
                    if alt == sender_epoch || alt == u32::MAX {
                        continue;
                    }
                    hit = sends
                        .get_mut(&(r.src, rank, r.comm, alt, r.id))
                        .and_then(VecDeque::pop_front);
                    if hit.is_some() {
                        break;
                    }
                }
            }
            match hit {
                None => out.push(Violation {
                    invariant: invariant::I2,
                    attempt,
                    rank,
                    seq: r.seq,
                    detail: format!(
                        "message from {} (id {}) classified {class:?} in \
                         epoch {epoch}, but rank {} sent no such message \
                         in epoch {sender_epoch}",
                        r.src, r.id, r.src
                    ),
                }),
                Some(sender_logging) => {
                    if sender_logging != piggy {
                        out.push(Violation {
                            invariant: invariant::I2,
                            attempt,
                            rank,
                            seq: r.seq,
                            detail: format!(
                                "message from {} (id {}) delivered with \
                                 amLogging={piggy} but was sent with \
                                 amLogging={sender_logging}",
                                r.src, r.id
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// The `mySendCount` / `receivedAll?` accounting checks (I4).
fn join_send_counts(
    attempt: u64,
    nranks: usize,
    facts: &BTreeMap<u32, RankFacts>,
    out: &mut Vec<Violation>,
) {
    // I4a: each announced count equals the sender's actual traced sends
    // for the epoch the checkpoint closed (suppressed re-sends count:
    // their receipt is checkpointed state on the receiver).
    for (&rank, f) in facts {
        for (ckpt, (send_counts, _, seq)) in &f.checkpoints {
            let closed_epoch = (*ckpt - 1) as u32;
            for (dst, &announced) in
                send_counts.iter().enumerate().take(nranks)
            {
                let actual = f
                    .sends
                    .iter()
                    .filter(|s| {
                        s.dst as usize == dst
                            && s.epoch == closed_epoch
                            && s.seq < *seq
                    })
                    .count() as u64;
                if announced != actual {
                    out.push(Violation {
                        invariant: invariant::I4,
                        attempt,
                        rank,
                        seq: *seq,
                        detail: format!(
                            "checkpoint {ckpt} announced {announced} \
                             send(s) to {dst} for epoch {closed_epoch} \
                             but {actual} were traced"
                        ),
                    });
                }
            }
        }
    }

    // I4b: announcements arrive intact — the k-th mySendCount received
    // from q equals q's k-th checkpoint announcement (control channels
    // are FIFO).
    for (&rank, f) in facts {
        for (q, args) in f.msc_recv.iter().enumerate() {
            let Some(qf) = facts.get(&(q as u32)) else {
                continue;
            };
            let announced: Vec<u64> = qf
                .checkpoints
                .values()
                .map(|(sc, _, _)| sc.get(rank as usize).copied().unwrap_or(0))
                .collect();
            for (k, (&got, &sent)) in
                args.iter().zip(announced.iter()).enumerate()
            {
                if got != sent {
                    out.push(Violation {
                        invariant: invariant::I4,
                        attempt,
                        rank,
                        seq: f.last_seq,
                        detail: format!(
                            "mySendCount #{k} from {q} arrived as {got} but \
                             {q} announced {sent}"
                        ),
                    });
                }
            }
        }
    }

    // I4c: readyToStopLogging in epoch e means every channel balanced:
    //   announced(q, e-1) = prior-early(q) + intra(q, e-1) + late(q, e).
    for (&rank, f) in facts {
        for &(e, seq) in &f.ready_epochs {
            if e == 0 {
                continue; // flagged as not-logging in scan_rank
            }
            // Skip epochs whose closed predecessor started before this
            // attempt's trace (cannot happen live: logging starts at a
            // checkpoint taken within the attempt).
            if let Some(k) = f.recovered {
                if u64::from(e) <= k {
                    continue;
                }
            }
            let closed = e - 1;
            let prior_early: Vec<u64> = if u64::from(e) >= 1
                && f.recovered == Some(u64::from(closed))
            {
                f.restored_early.clone()
            } else if closed == 0 {
                vec![0; nranks]
            } else {
                match f.checkpoints.get(&u64::from(closed)) {
                    Some((_, early, _)) => early.clone(),
                    None => continue, // truncated history; nothing to check
                }
            };
            for q in 0..nranks {
                let Some(qf) = facts.get(&(q as u32)) else {
                    continue;
                };
                let Some((sc, _, _)) = qf.checkpoints.get(&u64::from(e))
                else {
                    out.push(Violation {
                        invariant: invariant::I4,
                        attempt,
                        rank,
                        seq,
                        detail: format!(
                            "readyToStopLogging sent in epoch {e} but rank \
                             {q} never took checkpoint {e} (no announcement \
                             for epoch {closed} exists)"
                        ),
                    });
                    continue;
                };
                let announced = sc.get(rank as usize).copied().unwrap_or(0);
                let intra = f
                    .recvs
                    .iter()
                    .filter(|r| {
                        r.src as usize == q
                            && r.class == MsgClass::IntraEpoch
                            && r.epoch == closed
                    })
                    .count() as u64;
                let late = f
                    .recvs
                    .iter()
                    .filter(|r| {
                        r.src as usize == q
                            && r.class == MsgClass::Late
                            && r.epoch == e
                            && r.seq < seq
                    })
                    .count() as u64;
                let early = prior_early.get(q).copied().unwrap_or(0);
                if announced != early + intra + late {
                    out.push(Violation {
                        invariant: invariant::I4,
                        attempt,
                        rank,
                        seq,
                        detail: format!(
                            "readyToStopLogging in epoch {e} but the channel \
                             from {q} does not balance: announced \
                             {announced} for epoch {closed}, received \
                             {early} early + {intra} intra-epoch + {late} \
                             late"
                        ),
                    });
                }
            }
        }
    }
}

/// The initiator's phase machine over rank 0's stream (I5 / I9).
fn check_initiator(
    attempt: u64,
    nranks: usize,
    facts: &BTreeMap<u32, RankFacts>,
    out: &mut Vec<Violation>,
) {
    let Some(f0) = facts.get(&0) else { return };
    // Replayed machine: phase 0 = idle, 1 = collecting ready, 2 =
    // collecting stopped.
    let mut phase = phase_code::IDLE;
    let mut round_ckpt: Option<u64> = None;
    let mut prev_round: Option<u64> = None;
    let mut acks: BTreeSet<u32> = BTreeSet::new();
    let mut awaiting_commit: Option<u64> = None;
    for item in &f0.initiator_items {
        match *item {
            IniItem::Phase {
                phase: p,
                ckpt,
                seq,
            } => {
                let ok = match (phase, p) {
                    (phase_code::IDLE, phase_code::COLLECTING_READY) => {
                        if let Some(prev) = prev_round {
                            if ckpt != prev + 1 {
                                out.push(Violation {
                                    invariant: invariant::I9,
                                    attempt,
                                    rank: 0,
                                    seq,
                                    detail: format!(
                                        "round for checkpoint {ckpt} started \
                                         after round {prev} (expected {})",
                                        prev + 1
                                    ),
                                });
                            }
                        }
                        round_ckpt = Some(ckpt);
                        acks.clear();
                        true
                    }
                    (
                        phase_code::COLLECTING_READY,
                        phase_code::COLLECTING_STOPPED,
                    ) => {
                        if round_ckpt != Some(ckpt) {
                            out.push(Violation {
                                invariant: invariant::I9,
                                attempt,
                                rank: 0,
                                seq,
                                detail: format!(
                                    "stopLogging phase for checkpoint {ckpt} \
                                     inside round {round_ckpt:?}"
                                ),
                            });
                        }
                        if acks.len() < nranks {
                            out.push(Violation {
                                invariant: invariant::I5,
                                attempt,
                                rank: 0,
                                seq,
                                detail: format!(
                                    "stopLogging broadcast for checkpoint \
                                     {ckpt} after readyToStopLogging from \
                                     only {}/{nranks} rank(s)",
                                    acks.len()
                                ),
                            });
                        }
                        acks.clear();
                        true
                    }
                    (phase_code::COLLECTING_STOPPED, phase_code::IDLE) => {
                        if round_ckpt != Some(ckpt) {
                            out.push(Violation {
                                invariant: invariant::I9,
                                attempt,
                                rank: 0,
                                seq,
                                detail: format!(
                                    "commit phase for checkpoint {ckpt} \
                                     inside round {round_ckpt:?}"
                                ),
                            });
                        }
                        if acks.len() < nranks {
                            out.push(Violation {
                                invariant: invariant::I5,
                                attempt,
                                rank: 0,
                                seq,
                                detail: format!(
                                    "checkpoint {ckpt} committed after \
                                     stoppedLogging from only \
                                     {}/{nranks} rank(s)",
                                    acks.len()
                                ),
                            });
                        }
                        prev_round = Some(ckpt);
                        awaiting_commit = Some(ckpt);
                        acks.clear();
                        true
                    }
                    _ => false,
                };
                if !ok {
                    out.push(Violation {
                        invariant: invariant::I9,
                        attempt,
                        rank: 0,
                        seq,
                        detail: format!(
                            "initiator phase {p} (checkpoint {ckpt}) entered \
                             from phase {phase}"
                        ),
                    });
                }
                phase = p;
            }
            IniItem::Ready { src } => {
                if phase == phase_code::COLLECTING_READY {
                    acks.insert(src);
                }
            }
            IniItem::Stopped { src } => {
                if phase == phase_code::COLLECTING_STOPPED {
                    acks.insert(src);
                }
            }
            IniItem::Commit { ckpt, seq } => {
                if awaiting_commit.take() != Some(ckpt) {
                    out.push(Violation {
                        invariant: invariant::I9,
                        attempt,
                        rank: 0,
                        seq,
                        detail: format!(
                            "commit of checkpoint {ckpt} without completing \
                             its round"
                        ),
                    });
                }
            }
        }
    }
}

/// Join collective control exchanges across ranks (I7 / I8).
///
/// Within one attempt every world collective is executed by every rank in
/// the same global order, so the k-th world-communicator entry of each
/// stream belongs to the same call — aligned from the front on fresh
/// attempts and from the back on recovered ones (recovered ranks replay a
/// rank-dependent number of logged collectives, which emit no control
/// exchange, so their live suffixes share the tail). Recovered attempts
/// that end in a failure are skipped: neither end is aligned then.
fn join_collectives(
    attempt: u64,
    facts: &BTreeMap<u32, RankFacts>,
    out: &mut Vec<Violation>,
) {
    let recovered = facts.values().any(|f| f.recovered.is_some());
    let failed = facts.values().any(|f| f.failed);
    if recovered && failed {
        return;
    }
    let world: Vec<(u32, Vec<&CollFact>)> = facts
        .iter()
        .map(|(&rank, f)| {
            (rank, f.colls.iter().filter(|c| c.comm == 0).collect())
        })
        .collect();
    if world.is_empty() {
        return;
    }
    let common = world.iter().map(|(_, v)| v.len()).min().unwrap_or(0);
    for k in 0..common {
        let idx = |len: usize| if recovered { len - common + k } else { k };
        let (r0, ref v0) = world[0];
        let lead = v0[idx(v0.len())];
        let max_seen = world
            .iter()
            .map(|(_, v)| v[idx(v.len())].epoch)
            .max()
            .unwrap_or(0);
        let stopped_seen = world.iter().any(|(_, v)| {
            let c = v[idx(v.len())];
            c.epoch == max_seen && !c.logging
        });
        for (rank, v) in &world {
            let c = v[idx(v.len())];
            if (c.kind, c.max_epoch, c.stopped_at_max)
                != (lead.kind, lead.max_epoch, lead.stopped_at_max)
            {
                out.push(Violation {
                    invariant: invariant::I7,
                    attempt,
                    rank: *rank,
                    seq: c.seq,
                    detail: format!(
                        "world collective #{k}: rank {rank} saw (kind {}, \
                         max_epoch {}, stopped {}) but rank {r0} saw (kind \
                         {}, max_epoch {}, stopped {})",
                        c.kind,
                        c.max_epoch,
                        c.stopped_at_max,
                        lead.kind,
                        lead.max_epoch,
                        lead.stopped_at_max
                    ),
                });
            }
        }
        if lead.max_epoch != max_seen {
            out.push(Violation {
                invariant: invariant::I7,
                attempt,
                rank: r0,
                seq: lead.seq,
                detail: format!(
                    "world collective #{k}: control exchange reported \
                     max_epoch {} but the participants' maximum is \
                     {max_seen}",
                    lead.max_epoch
                ),
            });
        } else if lead.stopped_at_max != stopped_seen {
            out.push(Violation {
                invariant: invariant::I7,
                attempt,
                rank: r0,
                seq: lead.seq,
                detail: format!(
                    "world collective #{k}: control exchange reported \
                     stopped_at_max={} but the participants' states say {}",
                    lead.stopped_at_max, stopped_seen
                ),
            });
        }
    }
}

/// Committed checkpoints are complete on every rank (I12), and replay
/// never exceeds the recovered log (I11).
fn check_commits(
    attempt: u64,
    facts: &BTreeMap<u32, RankFacts>,
    out: &mut Vec<Violation>,
) {
    let commits: Vec<(u64, u64)> =
        facts.get(&0).map(|f| f.commits.clone()).unwrap_or_default();
    for (ckpt, seq) in commits {
        for (&rank, f) in facts {
            if !f.checkpoints.contains_key(&ckpt) {
                out.push(Violation {
                    invariant: invariant::I12,
                    attempt,
                    rank,
                    seq,
                    detail: format!(
                        "checkpoint {ckpt} committed but rank {rank} never \
                         took it"
                    ),
                });
            }
            if !f.finalized.contains(&ckpt) {
                out.push(Violation {
                    invariant: invariant::I12,
                    attempt,
                    rank,
                    seq,
                    detail: format!(
                        "checkpoint {ckpt} committed but rank {rank} never \
                         finalized its log"
                    ),
                });
            }
        }
    }
    for (&rank, f) in facts {
        if f.replays > f.late_in_log {
            out.push(Violation {
                invariant: invariant::I11,
                attempt,
                rank,
                seq: f.last_seq,
                detail: format!(
                    "{} late message(s) replayed but the recovered log held \
                     {}",
                    f.replays, f.late_in_log
                ),
            });
        }
    }
}

/// The asynchronous-I/O two-phase-commit check (I13): every commit is
/// preceded (in rank 0's stream) by a drain barrier for the same
/// checkpoint, and the drained blob count equals what all ranks staged.
///
/// Traces without pipeline events (recorded before the pipeline existed,
/// or with it configured away) are exempt — the invariant is about the
/// pipeline, not about its adoption.
fn check_pipeline(
    attempt: u64,
    facts: &BTreeMap<u32, RankFacts>,
    out: &mut Vec<Violation>,
) {
    let has_pipeline_events = facts
        .values()
        .any(|f| !f.staged.is_empty() || !f.drains.is_empty());
    if !has_pipeline_events {
        return;
    }
    let Some(f0) = facts.get(&0) else { return };
    for &(ckpt, commit_seq) in &f0.commits {
        match f0
            .drains
            .iter()
            .find(|&&(c, _, seq)| c == ckpt && seq < commit_seq)
        {
            None => out.push(Violation {
                invariant: invariant::I13,
                attempt,
                rank: 0,
                seq: commit_seq,
                detail: format!(
                    "checkpoint {ckpt} committed without draining the I/O \
                     pipeline first"
                ),
            }),
            Some(&(_, blobs, drain_seq)) => {
                let staged: u64 = facts
                    .values()
                    .map(|f| f.staged.get(&ckpt).copied().unwrap_or(0))
                    .sum();
                if blobs != staged {
                    out.push(Violation {
                        invariant: invariant::I13,
                        attempt,
                        rank: 0,
                        seq: drain_seq,
                        detail: format!(
                            "drain barrier for checkpoint {ckpt} accounted \
                             for {blobs} blob(s) but the ranks staged \
                             {staged}"
                        ),
                    });
                }
            }
        }
    }
}

/// Post-commit GC discipline: a sweep keeps only a checkpoint that was
/// already committed — in rank 0's stream before the sweep, in an
/// earlier attempt of the trace, or as the checkpoint this attempt
/// recovered from (a `keep_last > 1` sweep retains a line whose commit
/// may predate the trace entirely). Sweeping anything else could
/// collect blobs the recovery line still needs. Reported under I12 —
/// the sweep's keep-set *is* a commit-completeness claim.
fn check_gc(
    attempt: u64,
    facts: &BTreeMap<u32, RankFacts>,
    prior_commits: &BTreeSet<u64>,
    out: &mut Vec<Violation>,
) {
    let Some(f0) = facts.get(&0) else { return };
    for &(kept, seq) in &f0.gcs {
        let committed = f0
            .commits
            .iter()
            .any(|&(c, commit_seq)| c == kept && commit_seq < seq)
            || prior_commits.contains(&kept)
            || f0.recovered == Some(kept);
        if !committed {
            out.push(Violation {
                invariant: invariant::I12,
                attempt,
                rank: 0,
                seq,
                detail: format!(
                    "GC sweep kept checkpoint {kept} before (or without) \
                     its commit"
                ),
            });
        }
    }
}

/// The multi-level storage provenance check (I14): a restart's claimed
/// recovery tier is backed by an earlier drain. Tier 0 claims (the local
/// staging copy was intact) need no drain; the first attempt of a trace
/// is exempt because it may continue a previous job whose `TierDrained`
/// events live in that job's trace.
fn check_tiers(
    attempt: u64,
    first_attempt: bool,
    facts: &BTreeMap<u32, RankFacts>,
    drained: &BTreeMap<u64, u8>,
    out: &mut Vec<Violation>,
) {
    if first_attempt {
        return;
    }
    for (&rank, f) in facts {
        let Some((ckpt, tier, seq)) = f.tier_recovered else {
            continue;
        };
        if tier == 0 {
            continue;
        }
        let deepest = drained.get(&ckpt).copied().unwrap_or(0);
        if tier > deepest {
            out.push(Violation {
                invariant: invariant::I14,
                attempt,
                rank,
                seq,
                detail: format!(
                    "recovery read checkpoint {ckpt} from tier {tier} but \
                     the mover only drained it to tier {deepest}"
                ),
            });
        }
    }
}

/// One attempt's streams, keyed rank → incarnation → records.
pub(crate) type IncStreams<'a> =
    BTreeMap<u32, BTreeMap<u32, Vec<&'a TraceRecord>>>;

/// Group a trace by attempt → rank → incarnation (sorting each stream by
/// `seq`) and compute the world size. Shared by the invariant analyzer
/// and the race checker so both select effective streams identically.
pub(crate) fn group_trace(
    records: &[TraceRecord],
) -> (BTreeMap<u64, IncStreams<'_>>, u32) {
    let mut by_attempt: BTreeMap<u64, IncStreams<'_>> = BTreeMap::new();
    let mut ranks_seen: u32 = 0;
    for r in records {
        ranks_seen = ranks_seen.max(r.rank + 1);
        if let TraceEvent::CheckpointTaken { send_counts, .. } = &r.event {
            ranks_seen = ranks_seen.max(send_counts.len() as u32);
        }
        by_attempt
            .entry(r.attempt)
            .or_default()
            .entry(r.rank)
            .or_default()
            .entry(r.incarnation)
            .or_default()
            .push(r);
    }
    for ranks in by_attempt.values_mut() {
        for incs in ranks.values_mut() {
            for stream in incs.values_mut() {
                stream.sort_by_key(|r| r.seq);
            }
        }
    }
    (by_attempt, ranks_seen)
}

/// The effective stream of one rank within an attempt: the highest
/// incarnation's records. Under localized recovery a spliced rank
/// re-executes the attempt deterministically, so this is the stream that
/// joins with the survivors' histories.
pub(crate) fn effective_stream<'a, 'b>(
    incs: &'b BTreeMap<u32, Vec<&'a TraceRecord>>,
) -> &'b [&'a TraceRecord] {
    incs.values().next_back().map(Vec::as_slice).unwrap_or(&[])
}

/// I15 + I16: the splice structure of one attempt, across *all*
/// incarnation streams (everything else in the analyzer sees only the
/// effective — highest — incarnation per rank).
fn check_splices(
    attempt: u64,
    ranks: &IncStreams<'_>,
    out: &mut Vec<Violation>,
) {
    for (&rank, incs) in ranks {
        let max_inc = incs.keys().next_back().copied().unwrap_or(0);
        let mut flag = |inv: &'static str, seq: u64, detail: String| {
            out.push(Violation {
                invariant: inv,
                attempt,
                rank,
                seq,
                detail,
            });
        };
        for want in 0..=max_inc {
            if !incs.contains_key(&want) {
                flag(
                    invariant::I15,
                    0,
                    format!(
                        "incarnation {want} missing: incarnations reach \
                         {max_inc} but are not contiguous from 0"
                    ),
                );
            }
        }
        for (&inc, stream) in incs {
            let last_seq = stream.last().map_or(0, |r| r.seq);
            let died = matches!(
                stream.last().map(|r| &r.event),
                Some(TraceEvent::FailStop { .. })
            );
            if inc < max_inc && !died {
                flag(
                    invariant::I15,
                    last_seq,
                    format!(
                        "incarnation {inc} was superseded by incarnation \
                         {max_inc} but its stream does not end in a failure"
                    ),
                );
            }
            // Respawn announcement: first event of every respawned
            // stream, absent from original incarnations.
            let mut respawn_replayed: Option<u64> = None;
            for (i, r) in stream.iter().enumerate() {
                if let TraceEvent::RankRespawned {
                    incarnation,
                    replayed,
                } = &r.event
                {
                    if inc == 0 {
                        flag(
                            invariant::I15,
                            r.seq,
                            "respawn announcement in an original \
                             incarnation's stream"
                                .into(),
                        );
                    } else if i != 0 {
                        flag(
                            invariant::I15,
                            r.seq,
                            format!(
                                "respawn announcement is event {i} of \
                                 incarnation {inc}'s stream, not the first"
                            ),
                        );
                    } else if *incarnation != inc {
                        flag(
                            invariant::I15,
                            r.seq,
                            format!(
                                "respawn announcement claims incarnation \
                                 {incarnation} inside incarnation {inc}'s \
                                 stream"
                            ),
                        );
                    }
                    if respawn_replayed.is_none() {
                        respawn_replayed = Some(*replayed);
                    }
                }
            }
            if inc > 0 && respawn_replayed.is_none() {
                flag(
                    invariant::I15,
                    stream.first().map_or(0, |r| r.seq),
                    format!(
                        "respawned incarnation {inc} never announced \
                         itself (no RankRespawned)"
                    ),
                );
            }
            // I16: catch-up completes exactly once per respawn (unless
            // the respawn itself died mid-catch-up), never in an
            // original incarnation, and the replayed-frame counter is
            // monotone from the respawn announcement.
            let splices: Vec<(u64, u64)> = stream
                .iter()
                .filter_map(|r| match &r.event {
                    TraceEvent::SpliceReplayed { replayed, .. } => {
                        Some((r.seq, *replayed))
                    }
                    _ => None,
                })
                .collect();
            if inc == 0 {
                if let Some(&(seq, _)) = splices.first() {
                    flag(
                        invariant::I16,
                        seq,
                        "catch-up completion in an original incarnation's \
                         stream"
                            .into(),
                    );
                }
            } else {
                if splices.len() > 1 {
                    flag(
                        invariant::I16,
                        splices[1].0,
                        format!(
                            "incarnation {inc} completed catch-up {} times",
                            splices.len()
                        ),
                    );
                }
                if splices.is_empty() && !died {
                    flag(
                        invariant::I16,
                        last_seq,
                        format!(
                            "respawned incarnation {inc} finished the \
                             attempt without completing catch-up"
                        ),
                    );
                }
                if let (Some(at_respawn), Some(&(seq, total))) =
                    (respawn_replayed, splices.first())
                {
                    if total < at_respawn {
                        flag(
                            invariant::I16,
                            seq,
                            format!(
                                "catch-up reports {total} replayed frame(s) \
                                 but {at_respawn} were already replayed \
                                 when the incarnation started"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Check a recorded trace against the protocol invariants.
pub fn analyze(records: &[TraceRecord]) -> Report {
    let (by_attempt, ranks_seen) = group_trace(records);
    let nranks = ranks_seen as usize;
    // Every rank of a well-formed trace contributes at least one record,
    // so a world size beyond the record count can only come from a
    // corrupted rank field or send_counts length. Per-rank state below
    // is sized by nranks — flag T0 and stop rather than letting a
    // single flipped byte drive an absurd allocation.
    if nranks > records.len() {
        return Report {
            violations: vec![Violation {
                invariant: invariant::T0,
                attempt: 0,
                rank: 0,
                seq: 0,
                detail: format!(
                    "trace claims {nranks} ranks but holds only {} \
                     record(s)",
                    records.len()
                ),
            }],
            records: records.len(),
            attempts: by_attempt.len(),
            ranks: ranks_seen,
            commits: Vec::new(),
        };
    }

    let mut violations = Vec::new();
    let mut commits = Vec::new();
    // Cross-attempt context: checkpoints committed and tiers drained in
    // *earlier* attempts justify this attempt's GC keep-set (keep_last
    // retention) and recovery-tier claims (I14).
    let mut prior_commits: BTreeSet<u64> = BTreeSet::new();
    let mut drained: BTreeMap<u64, u8> = BTreeMap::new();
    let first_attempt = by_attempt.keys().next().copied();
    for (&attempt, ranks) in &by_attempt {
        check_splices(attempt, ranks, &mut violations);
        let mut facts: BTreeMap<u32, RankFacts> = BTreeMap::new();
        for (&rank, incs) in ranks.iter() {
            let stream = effective_stream(incs);
            let mut f =
                scan_rank(attempt, rank, nranks, stream, &mut violations);
            // Staging and wire traffic are physical, not logical: a
            // superseded incarnation's blobs entered the I/O pipeline
            // before it died and are counted by the drain barrier, so
            // I13's accounting must include them — and its transmitted
            // sends were (or may yet be) delivered to survivors, so the
            // I2 pairing must know about them — even though the
            // effective history starts over at the respawn.
            let max_inc = incs.keys().next_back().copied().unwrap_or(0);
            for (&inc, superseded) in incs.iter() {
                if inc == max_inc {
                    continue;
                }
                for r in superseded {
                    match &r.event {
                        TraceEvent::BlobStaged { ckpt, .. } => {
                            *f.staged.entry(*ckpt).or_default() += 1;
                        }
                        TraceEvent::Send {
                            comm,
                            dst,
                            epoch,
                            logging,
                            message_id,
                            suppressed: false,
                            ..
                        } => f.superseded_sends.push(SendFact {
                            comm: *comm,
                            dst: *dst,
                            epoch: *epoch,
                            logging: *logging,
                            id: *message_id,
                            suppressed: false,
                            seq: r.seq,
                        }),
                        TraceEvent::RecvClassified {
                            comm,
                            src,
                            message_id,
                            class,
                            sender_logging,
                            receiver_epoch,
                            ..
                        } => f.superseded_recvs.push(RecvFact {
                            comm: *comm,
                            src: *src,
                            id: *message_id,
                            class: *class,
                            sender_logging: *sender_logging,
                            epoch: *receiver_epoch,
                            seq: r.seq,
                            catch_up: false,
                        }),
                        _ => {}
                    }
                }
            }
            facts.insert(rank, f);
        }
        join_classifications(attempt, &facts, &mut violations);
        join_send_counts(attempt, nranks, &facts, &mut violations);
        check_initiator(attempt, nranks, &facts, &mut violations);
        join_collectives(attempt, &facts, &mut violations);
        check_commits(attempt, &facts, &mut violations);
        check_pipeline(attempt, &facts, &mut violations);
        check_gc(attempt, &facts, &prior_commits, &mut violations);
        check_tiers(
            attempt,
            first_attempt == Some(attempt),
            &facts,
            &drained,
            &mut violations,
        );
        if let Some(f0) = facts.get(&0) {
            commits.extend(f0.commits.iter().map(|&(c, _)| c));
            prior_commits.extend(f0.commits.iter().map(|&(c, _)| c));
            for &(ckpt, tier) in &f0.tier_drains {
                let d = drained.entry(ckpt).or_insert(0);
                *d = (*d).max(tier);
            }
        }
    }

    violations.sort_by_key(|v| (v.attempt, v.rank, v.seq));
    Report {
        violations,
        records: records.len(),
        attempts: by_attempt.len(),
        ranks: ranks_seen,
        commits,
    }
}
