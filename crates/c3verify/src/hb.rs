//! Happens-before reconstruction and protocol-race detection.
//!
//! The analyzer in [`crate::analyzer`] checks *state* invariants: it
//! replays each rank's stream and joins streams through message
//! identities. This module checks *ordering* invariants: it rebuilds the
//! partial order the execution actually established — program order plus
//! every synchronization the protocol performed — as vector clocks over
//! the recorded [`TraceEvent`]s, and then demands that conflicting event
//! pairs are ordered by it. A conflicting pair left unordered is a
//! **protocol race**: two decisions whose outcome depends on a delivery
//! or scheduling order the protocol never constrained. The PPoPP 2003
//! protocol's safety argument is exactly a set of such ordering claims
//! (every late message of an epoch precedes its commit; every staged
//! blob precedes the drain barrier that covers it; …), so each claim
//! becomes an R-invariant here.
//!
//! The event model follows the vector-clock treatment of MPI executions
//! in the transparent-checkpointing literature (arXiv:2212.05701,
//! arXiv:2408.02218): per-rank streams are totally ordered by `seq`;
//! cross-rank edges come from
//!
//! * **application messages** — a non-suppressed [`TraceEvent::Send`]
//!   happens-before the [`TraceEvent::RecvClassified`] it pairs with
//!   (same identity join as the analyzer's I2 pass);
//! * **control messages** — [`TraceEvent::ControlSent`] happens-before
//!   the matching [`TraceEvent::ControlRecv`], matched FIFO per
//!   (sender, receiver) channel on `(kind, arg)` (the transport's
//!   reliable sublayer guarantees per-channel FIFO delivery);
//! * **suppression lists** — [`TraceEvent::SuppressSent`] happens-before
//!   the matching [`TraceEvent::SuppressRecv`];
//! * **collectives** — the k-th world-communicator
//!   [`TraceEvent::CollectiveControl`] of every rank belongs to one
//!   global call whose pre-collective control exchange is all-to-all, so
//!   the k-th entries form a synchronization clique: each one
//!   happens-after every participant's preceding event (alignment
//!   mirrors the analyzer's I7 join — from the front on fresh attempts,
//!   from the back on recovered ones).
//!
//! Vector clocks are computed by a Kahn pass over this graph; an
//! unprocessable residue means the recorded "order" is cyclic, which no
//! execution can produce, and is reported as **R0**.
//!
//! Attempts are independent (a restart begins from stable storage, and
//! in-flight traffic does not cross the failure), so each attempt gets
//! its own graph.
//!
//! Under localized recovery a spliced rank appears several times per
//! attempt, once per incarnation, and the graph models the *physical*
//! history:
//!
//! * every incarnation's stream enters the graph, and a rank's chains
//!   are concatenated in incarnation order — a respawn starts strictly
//!   after its predecessor's death, so the concatenation is itself
//!   program order;
//! * only wire-transmitted sends source message edges: a respawned
//!   incarnation's re-executed sends were squelched by the splice layer
//!   until the dead incarnation's per-(destination, comm, tag) budgets
//!   (per-destination for control messages) were spent, so survivors
//!   paired their receives with the *superseded* incarnation's copies;
//! * receives are matched per (rank, incarnation) against fresh pools:
//!   a respawned incarnation re-consumes, via the replay tape, messages
//!   the superseded incarnation already consumed, and both consumptions
//!   causally follow the same original send;
//! * catch-up re-enactments — events in a respawned stream before its
//!   [`TraceEvent::SpliceReplayed`] marker — are exempt from the R1/R2
//!   anchors: the corresponding physical deliveries and finalizations
//!   happened in the superseded incarnation (where they are checked),
//!   while the re-execution touches neither the wire nor stable storage.
//!
//! Collective cliques are still aligned over effective streams only; a
//! spliced rank's replayed collectives re-emit the control exchange, so
//! front-alignment pairs the k-th entries across ranks as before.

use std::collections::{BTreeMap, HashMap, VecDeque};

use c3_core::trace::{phase_code, TraceEvent, TraceRecord};

use crate::report::{Report, Violation};

/// Race-invariant identifiers used in [`Violation::invariant`].
pub mod race {
    /// The recorded order is cyclic — structurally impossible.
    pub const R0: &str = "R0-causal-cycle";
    /// A late delivery of epoch e is unordered with (or after) commit e.
    pub const R1: &str = "R1-commit-vs-late";
    /// A rank's log finalization is unordered with its epoch's commit.
    pub const R2: &str = "R2-finalize-before-commit";
    /// A staged blob is unordered with the drain barrier covering it.
    pub const R3: &str = "R3-stage-before-drain";
    /// A local checkpoint is unordered with the initiator round that
    /// requested it (and no barrier alignment forced it).
    pub const R4: &str = "R4-checkpoint-vs-request";
    /// A GC sweep is unordered with a blob write it could collect.
    pub const R5: &str = "R5-gc-vs-stage";
    /// A suppressed re-send is unordered with the suppression list that
    /// authorized it.
    pub const R6: &str = "R6-suppress-vs-resend";
}

/// One event in the happens-before graph.
struct Node<'a> {
    rank: u32,
    /// Which incarnation of the rank produced the event (0 = original).
    inc: u32,
    seq: u64,
    event: &'a TraceEvent,
    /// Incoming cross-rank edges (node indices); program order is
    /// implicit between stream neighbors.
    preds: Vec<usize>,
    /// Vector clock after this event (index = rank). `None` until the
    /// Kahn pass reaches the node; stays `None` on a cycle.
    clock: Option<Vec<u64>>,
}

/// The happens-before graph of one attempt, with computed vector clocks.
pub struct HbGraph<'a> {
    attempt: u64,
    nranks: usize,
    nodes: Vec<Node<'a>>,
    /// Indices of nodes left clockless by a causal cycle.
    cyclic: Vec<usize>,
    /// Per node: true if it lies in a respawned incarnation's catch-up
    /// region (before the stream's `SpliceReplayed` marker).
    catch_up: Vec<bool>,
}

impl<'a> HbGraph<'a> {
    /// True if node `a` happens-before node `b` (strictly).
    fn before(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        match (&self.nodes[a].clock, &self.nodes[b].clock) {
            (Some(ca), Some(cb)) => {
                let r = self.nodes[a].rank as usize;
                ca[r] <= cb[r] && ca != cb
            }
            // Nodes on a cycle have no clock; order is undefined, and R0
            // already reports the cycle itself.
            _ => false,
        }
    }

    /// Number of events in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph holds no events.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The vector clock of event `idx` (post-event), if acyclic.
    pub fn clock(&self, idx: usize) -> Option<&[u64]> {
        self.nodes[idx].clock.as_deref()
    }

    /// Width of the vector clocks (world size the graph was built for).
    pub fn ranks(&self) -> usize {
        self.nranks
    }
}

/// Key identifying an application message for send/recv pairing.
type MsgKey = (u32, u32, u64, u32, u32); // (src, dst, comm, epoch, id)

/// Pending control sends per (sender, receiver) channel: FIFO queues of
/// (kind, arg, node index).
type CtrlQueues = HashMap<(u32, u32), VecDeque<(u8, u64, usize)>>;

/// Build the happens-before graph for one attempt's records (already
/// grouped rank -> incarnation and sorted by `seq`).
fn build_graph<'a>(
    attempt: u64,
    nranks: usize,
    ranks: &crate::analyzer::IncStreams<'a>,
) -> HbGraph<'a> {
    let mut nodes: Vec<Node<'a>> = Vec::new();
    // Per-rank node index chains: every incarnation's stream, in
    // incarnation order. A respawn starts strictly after its
    // predecessor's death, so the concatenation is program order.
    let mut by_rank: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (&rank, incs) in ranks {
        let ids = by_rank.entry(rank).or_default();
        for (&inc, stream) in incs {
            for rec in stream {
                ids.push(nodes.len());
                nodes.push(Node {
                    rank,
                    inc,
                    seq: rec.seq,
                    event: &rec.event,
                    preds: Vec::new(),
                    clock: None,
                });
            }
        }
    }
    let max_inc: BTreeMap<u32, u32> = ranks
        .iter()
        .map(|(&r, incs)| (r, incs.keys().next_back().copied().unwrap_or(0)))
        .collect();

    // Which sends actually reached the wire. A respawned incarnation's
    // re-executed sends are squelched by the splice layer until the dead
    // incarnation's per-(destination, comm, tag) transmitted-frame
    // budgets (per-destination for control messages) are spent — mirror
    // that accounting so survivors' receives pair with the copies they
    // physically hold.
    let mut transmitted: Vec<bool> = vec![true; nodes.len()];
    {
        let mut app_budget: HashMap<(u32, u32, u64, i32), u64> =
            HashMap::new();
        let mut ctrl_budget: HashMap<(u32, u32), u64> = HashMap::new();
        for n in nodes.iter() {
            if n.inc < max_inc[&n.rank] {
                match n.event {
                    TraceEvent::Send {
                        dst,
                        comm,
                        tag,
                        suppressed: false,
                        ..
                    } => {
                        *app_budget
                            .entry((n.rank, *dst, *comm, *tag))
                            .or_default() += 1;
                    }
                    TraceEvent::ControlSent { dst, .. } => {
                        *ctrl_budget.entry((n.rank, *dst)).or_default() += 1;
                    }
                    _ => {}
                }
            }
        }
        let mut app_spent: HashMap<(u32, u32, u64, i32), u64> = HashMap::new();
        let mut ctrl_spent: HashMap<(u32, u32), u64> = HashMap::new();
        for ids in by_rank.values() {
            for &i in ids {
                let n = &nodes[i];
                match n.event {
                    TraceEvent::Send {
                        suppressed: true, ..
                    } => transmitted[i] = false,
                    TraceEvent::Send { dst, comm, tag, .. } if n.inc > 0 => {
                        let k = (n.rank, *dst, *comm, *tag);
                        let budget = app_budget.get(&k).copied().unwrap_or(0);
                        let spent = app_spent.entry(k).or_default();
                        if *spent < budget {
                            *spent += 1;
                            transmitted[i] = false;
                        }
                    }
                    TraceEvent::ControlSent { dst, .. } if n.inc > 0 => {
                        let k = (n.rank, *dst);
                        let budget = ctrl_budget.get(&k).copied().unwrap_or(0);
                        let spent = ctrl_spent.entry(k).or_default();
                        if *spent < budget {
                            *spent += 1;
                            transmitted[i] = false;
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    // Message and control edges, matched per (receiver, incarnation)
    // against fresh pools of transmitted sends: a respawned incarnation
    // re-consumes, via the replay tape, messages the superseded
    // incarnation already consumed, and both consumptions causally
    // follow the same original send. Application messages join on
    // identity (FIFO per key, like the analyzer's I2 pass); control
    // messages match FIFO per channel on (kind, arg) so a mutated
    // (dropped) entry desynchronizes only its own pair.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (&rank, ids) in &by_rank {
        let incs: Vec<u32> = ranks[&rank].keys().copied().collect::<Vec<_>>();
        for &inc in &incs {
            let mut sends: HashMap<MsgKey, VecDeque<usize>> = HashMap::new();
            let mut ctrl: CtrlQueues = HashMap::new();
            for (j, m) in nodes.iter().enumerate() {
                if !transmitted[j] {
                    continue;
                }
                match m.event {
                    TraceEvent::Send {
                        comm,
                        dst,
                        epoch,
                        message_id,
                        ..
                    } if *dst == rank => {
                        sends
                            .entry((m.rank, *dst, *comm, *epoch, *message_id))
                            .or_default()
                            .push_back(j);
                    }
                    TraceEvent::ControlSent { dst, kind, arg }
                        if *dst == rank =>
                    {
                        ctrl.entry((m.rank, *dst))
                            .or_default()
                            .push_back((*kind, *arg, j));
                    }
                    _ => {}
                }
            }
            for &i in ids {
                if nodes[i].inc != inc {
                    continue;
                }
                match nodes[i].event {
                    TraceEvent::RecvClassified {
                        comm,
                        src,
                        message_id,
                        class,
                        receiver_epoch,
                        ..
                    } => {
                        let sender_epoch = match class {
                            c3_core::epoch::MsgClass::Late => {
                                if *receiver_epoch == 0 {
                                    continue; // analyzer flags it
                                }
                                receiver_epoch - 1
                            }
                            c3_core::epoch::MsgClass::IntraEpoch => {
                                *receiver_epoch
                            }
                            c3_core::epoch::MsgClass::Early => {
                                receiver_epoch + 1
                            }
                        };
                        let key =
                            (*src, rank, *comm, sender_epoch, *message_id);
                        if let Some(s) =
                            sends.get_mut(&key).and_then(VecDeque::pop_front)
                        {
                            edges.push((s, i));
                        }
                    }
                    TraceEvent::ControlRecv { src, kind, arg } => {
                        if let Some(q) = ctrl.get_mut(&(*src, rank)) {
                            if let Some(pos) = q
                                .iter()
                                .position(|&(k, a, _)| k == *kind && a == *arg)
                            {
                                let (_, _, s) = q.remove(pos).unwrap();
                                edges.push((s, i));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    for (s, r) in edges {
        nodes[r].preds.push(s);
    }

    // Suppression-list edges: receiver's SuppressSent -> sender's
    // SuppressRecv, FIFO per (receiver, sender) pair matched on count.
    let mut sup: HashMap<(u32, u32), VecDeque<(u64, usize)>> = HashMap::new();
    for (i, n) in nodes.iter().enumerate() {
        if let TraceEvent::SuppressSent { dst, count } = n.event {
            sup.entry((n.rank, *dst))
                .or_default()
                .push_back((*count, i));
        }
    }
    let mut sup_edges: Vec<(usize, usize)> = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        if let TraceEvent::SuppressRecv { src, count } = n.event {
            if let Some(q) = sup.get_mut(&(*src, n.rank)) {
                if let Some(pos) = q.iter().position(|&(c, _)| c == *count) {
                    let (_, s) = q.remove(pos).unwrap();
                    sup_edges.push((s, i));
                }
            }
        }
    }
    for (s, r) in sup_edges {
        nodes[r].preds.push(s);
    }

    // Collective cliques: the k-th world-communicator collective of every
    // rank is one global call. Alignment mirrors the analyzer's I7 join:
    // from the front on fresh attempts, from the back on recovered ones
    // (replayed collectives emit no control exchange). Recovered attempts
    // that also end in a failure have neither end aligned — skip.
    let recovered = nodes
        .iter()
        .any(|n| matches!(n.event, TraceEvent::RecoveryStart { .. }));
    let failed = nodes
        .iter()
        .any(|n| matches!(n.event, TraceEvent::FailStop { .. }));
    if !(recovered && failed) {
        // Clique members are the *physical* participants of each round.
        // For a spliced rank that is the superseded incarnation's records
        // (survivors exchanged those rounds with it, and its stream
        // predecessors lie before the exchange — members from the
        // respawn's re-enactments would give survivors' early rounds
        // predecessors deep in the dead incarnation's tail and close a
        // cycle), followed by the respawn's records beyond the re-enacted
        // count. The count-skip rather than the catch-up marker handles a
        // death inside a collective: the superseded incarnation never
        // recorded that round, and the respawn completes it live just
        // before the marker is emitted.
        let world: Vec<Vec<usize>> = by_rank
            .iter()
            .map(|(&r, ids)| {
                let coll = |i: &usize| {
                    matches!(
                        nodes[*i].event,
                        TraceEvent::CollectiveControl { comm: 0, .. }
                    )
                };
                let mut v: Vec<usize> = ids
                    .iter()
                    .copied()
                    .filter(|i| nodes[*i].inc < max_inc[&r])
                    .filter(coll)
                    .collect();
                let replayed = v.len();
                v.extend(
                    ids.iter()
                        .copied()
                        .filter(|i| nodes[*i].inc == max_inc[&r])
                        .filter(coll)
                        .skip(replayed),
                );
                v
            })
            .collect();
        let common = world.iter().map(Vec::len).min().unwrap_or(0);
        for k in 0..common {
            let members: Vec<usize> = world
                .iter()
                .map(|v| v[if recovered { v.len() - common + k } else { k }])
                .collect();
            // Each member happens-after every member's *predecessor* in
            // its own stream (the all-to-all control exchange). Linking
            // predecessors, not the members themselves, keeps the clique
            // acyclic while making the members mutually concurrent-joined.
            let preds: Vec<Option<usize>> = members
                .iter()
                .map(|&m| {
                    let ids = &by_rank[&nodes[m].rank];
                    let pos = ids.iter().position(|&i| i == m).unwrap();
                    (pos > 0).then(|| ids[pos - 1])
                })
                .collect();
            for &m in &members {
                for (&p, &other) in preds.iter().zip(&members) {
                    if other != m {
                        if let Some(p) = p {
                            nodes[m].preds.push(p);
                        }
                    }
                }
            }
        }
    }

    // Kahn pass: compute vector clocks in topological order. Program
    // order contributes one implicit edge between stream neighbors.
    let mut indeg: Vec<usize> = nodes.iter().map(|n| n.preds.len()).collect();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        for &p in &n.preds {
            succs[p].push(i);
        }
    }
    for ids in by_rank.values() {
        for w in ids.windows(2) {
            indeg[w[1]] += 1;
            succs[w[0]].push(w[1]);
        }
    }
    let mut ready: VecDeque<usize> = indeg
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut done = 0usize;
    while let Some(i) = ready.pop_front() {
        done += 1;
        let mut clock = vec![0u64; nranks];
        // Join every predecessor's clock (program order + cross edges).
        let mut join = |c: &Option<Vec<u64>>| {
            if let Some(c) = c {
                for (a, b) in clock.iter_mut().zip(c) {
                    *a = (*a).max(*b);
                }
            }
        };
        for &p in &nodes[i].preds {
            join(&nodes[p].clock);
        }
        let ids = &by_rank[&nodes[i].rank];
        let pos = ids.iter().position(|&x| x == i).unwrap();
        if pos > 0 {
            join(&nodes[ids[pos - 1]].clock);
        }
        let r = nodes[i].rank as usize;
        if r < nranks {
            clock[r] += 1;
        }
        nodes[i].clock = Some(clock);
        for &s in &succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push_back(s);
            }
        }
    }
    let cyclic: Vec<usize> = if done < nodes.len() {
        nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.clock.is_none())
            .map(|(i, _)| i)
            .collect()
    } else {
        Vec::new()
    };

    // Mark each respawned incarnation's catch-up region: everything from
    // its start until its SpliceReplayed marker (to the stream's end if
    // the marker is missing — the incarnation died or the trace is
    // truncated, so nothing after the region exists anyway).
    let mut catch_up = vec![false; nodes.len()];
    for ids in by_rank.values() {
        let mut cur_inc = 0u32;
        let mut caught = true;
        for &i in ids {
            if nodes[i].inc != cur_inc {
                cur_inc = nodes[i].inc;
                caught = cur_inc == 0;
            }
            if !caught {
                catch_up[i] = true;
            }
            if matches!(nodes[i].event, TraceEvent::SpliceReplayed { .. }) {
                caught = true;
            }
        }
    }

    HbGraph {
        attempt,
        nranks,
        nodes,
        cyclic,
        catch_up,
    }
}

/// Run the race checks R0–R6 over one attempt's graph.
fn check_races(g: &HbGraph<'_>, out: &mut Vec<Violation>) {
    let mut flag = |inv: &'static str, idx: usize, detail: String| {
        out.push(Violation {
            invariant: inv,
            attempt: g.attempt,
            rank: g.nodes[idx].rank,
            seq: g.nodes[idx].seq,
            detail,
        });
    };

    // R0: a cycle means the recorded order is not an execution at all.
    if let Some(&first) = g.cyclic.first() {
        flag(
            race::R0,
            first,
            format!(
                "{} event(s) lie on a causal cycle (program order, message \
                 and control edges contradict each other)",
                g.cyclic.len()
            ),
        );
    }

    // Index the anchor events once.
    let mut commits: Vec<(u64, usize)> = Vec::new(); // (ckpt, node)
    let mut drains: Vec<(u64, usize)> = Vec::new();
    let mut gcs: Vec<(u64, usize)> = Vec::new();
    let mut round_starts: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, n) in g.nodes.iter().enumerate() {
        match n.event {
            TraceEvent::Commit { ckpt } if n.rank == 0 => {
                commits.push((*ckpt, i));
            }
            TraceEvent::PipelineDrained { ckpt, .. } if n.rank == 0 => {
                drains.push((*ckpt, i));
            }
            TraceEvent::GcRan { kept } if n.rank == 0 => {
                gcs.push((*kept, i));
            }
            TraceEvent::InitiatorPhase { phase, ckpt }
                if n.rank == 0 && *phase == phase_code::COLLECTING_READY =>
            {
                round_starts.entry(*ckpt).or_insert(i);
            }
            _ => {}
        }
    }

    for (i, n) in g.nodes.iter().enumerate() {
        match n.event {
            // R1: every late delivery (and its log append) of epoch e is
            // ordered before commit e. A late message concurrent with its
            // commit could miss the recovery log the commit certifies.
            TraceEvent::RecvClassified {
                class: c3_core::epoch::MsgClass::Late,
                src,
                message_id,
                receiver_epoch,
                ..
            } => {
                // A catch-up re-enactment of a delivery the superseded
                // incarnation already received (and is checked on) is
                // not a wire event; the epoch's commit may legitimately
                // predate the respawn.
                if g.catch_up[i] {
                    continue;
                }
                let e = u64::from(*receiver_epoch);
                for &(ckpt, c) in &commits {
                    if ckpt == e && !g.before(i, c) {
                        flag(
                            race::R1,
                            i,
                            format!(
                                "late delivery (src {src}, id {message_id}) \
                                 of epoch {e} races the commit of \
                                 checkpoint {e}"
                            ),
                        );
                    }
                }
            }
            // R2: a rank's log finalization is ordered before the commit
            // of the same checkpoint — the commit certifies the log is on
            // stable storage, so a concurrent finalization is a
            // lost-update race on the recovery line.
            TraceEvent::LogFinalized { ckpt, .. } => {
                // Same exemption as R1: a replayed finalization's log
                // blob was deduplicated at the staging layer, so it
                // writes nothing the commit could race with.
                if g.catch_up[i] {
                    continue;
                }
                for &(c_ckpt, c) in &commits {
                    if c_ckpt == *ckpt && !g.before(i, c) {
                        flag(
                            race::R2,
                            i,
                            format!(
                                "log finalization for checkpoint {ckpt} on \
                                 rank {} races its commit",
                                n.rank
                            ),
                        );
                    }
                }
            }
            // R3: every staged blob is ordered before the drain barrier
            // that claims to cover it (two-phase commit over async I/O).
            TraceEvent::BlobStaged { ckpt, .. } => {
                for &(d_ckpt, d) in &drains {
                    if d_ckpt == *ckpt && !g.before(i, d) {
                        flag(
                            race::R3,
                            i,
                            format!(
                                "blob staged for checkpoint {ckpt} on rank \
                                 {} races the drain barrier covering it",
                                n.rank
                            ),
                        );
                    }
                }
                // R5: a blob write concurrent with a GC sweep that could
                // collect it (sweep keeps `kept`, so it may touch any
                // chunk of checkpoints <= kept).
                for &(kept, gc) in &gcs {
                    if *ckpt <= kept && !g.before(i, gc) {
                        flag(
                            race::R5,
                            i,
                            format!(
                                "blob staged for checkpoint {ckpt} on rank \
                                 {} races the GC sweep keeping {kept}",
                                n.rank
                            ),
                        );
                    }
                }
            }
            // R4: a local checkpoint is caused by the initiator round
            // that requested it (please-checkpoint edge), unless a
            // barrier alignment forced it locally.
            TraceEvent::CheckpointTaken { ckpt, .. } => {
                let Some(&start) = round_starts.get(ckpt) else {
                    continue; // no round recorded; I12 owns justification
                };
                let aligned = barrier_aligned_to(g, i, *ckpt);
                if !aligned && !g.before(start, i) {
                    flag(
                        race::R4,
                        i,
                        format!(
                            "local checkpoint {ckpt} on rank {} is \
                             unordered with the initiator round that \
                             requested it",
                            n.rank
                        ),
                    );
                }
            }
            // R6: a suppressed re-send happens after the suppression
            // list from its receiver arrived — the decision must be
            // ordered after the receipt record it depends on.
            TraceEvent::Send {
                dst,
                message_id,
                suppressed: true,
                ..
            } => {
                let authorized = g.nodes.iter().enumerate().any(|(j, m)| {
                    m.rank == n.rank
                        && matches!(
                            m.event,
                            TraceEvent::SuppressRecv { src, .. }
                                if *src == *dst
                        )
                        && g.before(j, i)
                });
                if !authorized {
                    flag(
                        race::R6,
                        i,
                        format!(
                            "suppressed re-send to {dst} (id {message_id}) \
                             races the suppression list authorizing it"
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// True when node `i` (a `CheckpointTaken { ckpt }`) was forced by a
/// barrier alignment: a `BarrierAligned { to_epoch: ckpt }` earlier in
/// the same stream with no other checkpoint in between.
fn barrier_aligned_to(g: &HbGraph<'_>, i: usize, ckpt: u64) -> bool {
    let rank = g.nodes[i].rank;
    // Chain position is (incarnation, seq): seq restarts at zero in a
    // respawned incarnation's stream.
    let pos = (g.nodes[i].inc, g.nodes[i].seq);
    let mut best: Option<((u32, u64), bool)> = None; // (pos, is_alignment)
    for n in &g.nodes {
        if n.rank != rank || (n.inc, n.seq) >= pos {
            continue;
        }
        let hit = match n.event {
            TraceEvent::BarrierAligned { to_epoch, .. } => {
                (u64::from(*to_epoch) == ckpt).then_some(true)
            }
            TraceEvent::CheckpointTaken { .. } => Some(false),
            _ => None,
        };
        if let Some(is_alignment) = hit {
            if best.is_none_or(|(p, _)| (n.inc, n.seq) > p) {
                best = Some(((n.inc, n.seq), is_alignment));
            }
        }
    }
    matches!(best, Some((_, true)))
}

/// Check a recorded trace for protocol races (R0–R6).
///
/// Returns a [`Report`] whose violations carry [`race`] identifiers; a
/// clean report certifies that every conflicting event pair the protocol
/// depends on was actually ordered by the execution's happens-before
/// relation, not just observed in a benign order.
pub fn race_check(records: &[TraceRecord]) -> Report {
    let (by_attempt, ranks_seen) = crate::analyzer::group_trace(records);
    // Same T0 guard as the analyzer: vector clocks are sized by the
    // world size, so a corrupted rank field must not drive allocation.
    if ranks_seen as usize > records.len() {
        return Report {
            violations: vec![Violation {
                invariant: crate::analyzer::invariant::T0,
                attempt: 0,
                rank: 0,
                seq: 0,
                detail: format!(
                    "trace claims {ranks_seen} ranks but holds only {} \
                     record(s)",
                    records.len()
                ),
            }],
            records: records.len(),
            attempts: by_attempt.len(),
            ranks: ranks_seen,
            commits: Vec::new(),
        };
    }

    let mut violations = Vec::new();
    let mut commits = Vec::new();
    for (&attempt, ranks) in &by_attempt {
        let g = build_graph(attempt, ranks_seen as usize, ranks);
        check_races(&g, &mut violations);
        for n in &g.nodes {
            if n.rank == 0 {
                if let TraceEvent::Commit { ckpt } = n.event {
                    commits.push(*ckpt);
                }
            }
        }
    }

    violations.sort_by_key(|v| (v.attempt, v.rank, v.seq));
    violations.dedup();
    Report {
        violations,
        records: records.len(),
        attempts: by_attempt.len(),
        ranks: ranks_seen,
        commits,
    }
}

/// Build the happens-before graphs (one per attempt) and return the
/// total event and cross-edge counts — exposed for tests and the CLI's
/// diagnostics.
pub fn graph_stats(records: &[TraceRecord]) -> (usize, usize) {
    let (by_attempt, ranks_seen) = crate::analyzer::group_trace(records);
    if ranks_seen as usize > records.len() {
        return (0, 0); // corrupted rank field; see race_check's T0 guard
    }
    let mut events = 0;
    let mut edges = 0;
    for (&attempt, ranks) in &by_attempt {
        let g = build_graph(attempt, ranks_seen as usize, ranks);
        events += g.len();
        edges += g.nodes.iter().map(|n| n.preds.len()).sum::<usize>();
    }
    (events, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c3_core::epoch::MsgClass;
    use c3_core::trace::control_kind;

    fn rec(rank: u32, seq: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            rank,
            attempt: 1,
            incarnation: 0,
            seq,
            event,
        }
    }

    /// A minimal healthy round on 2 ranks: request, checkpoint, counts,
    /// stop-logging, finalize, drain, commit, GC. Every R-invariant's
    /// ordered pair is present and ordered.
    fn healthy_round() -> Vec<TraceRecord> {
        use TraceEvent::*;
        let mut t = Vec::new();
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut r0 = |e| {
            s0 += 1;
            rec(0, s0 - 1, e)
        };
        let mut r1 = |e| {
            s1 += 1;
            rec(1, s1 - 1, e)
        };
        // Rank 1 sends one epoch-0 message that will arrive late.
        t.push(r1(Send {
            comm: 0,
            dst: 0,
            tag: 1,
            epoch: 0,
            logging: false,
            message_id: 0,
            suppressed: false,
            payload_len: 8,
        }));
        // Round start on rank 0.
        t.push(r0(InitiatorPhase {
            phase: phase_code::COLLECTING_READY,
            ckpt: 1,
        }));
        for d in 0..2u32 {
            t.push(r0(ControlSent {
                dst: d,
                kind: control_kind::PLEASE_CHECKPOINT,
                arg: 1,
            }));
        }
        t.push(r0(ControlRecv {
            src: 0,
            kind: control_kind::PLEASE_CHECKPOINT,
            arg: 1,
        }));
        t.push(r0(CheckpointTaken {
            ckpt: 1,
            send_counts: vec![0, 0],
            early_counts: vec![0, 0],
        }));
        t.push(r0(BlobStaged { ckpt: 1, kind: 0 }));
        for d in 0..2u32 {
            t.push(r0(ControlSent {
                dst: d,
                kind: control_kind::MY_SEND_COUNT,
                arg: 0,
            }));
        }
        t.push(r1(ControlRecv {
            src: 0,
            kind: control_kind::PLEASE_CHECKPOINT,
            arg: 1,
        }));
        t.push(r1(CheckpointTaken {
            ckpt: 1,
            send_counts: vec![1, 0],
            early_counts: vec![0, 0],
        }));
        t.push(r1(BlobStaged { ckpt: 1, kind: 0 }));
        t.push(r1(ControlSent {
            dst: 0,
            kind: control_kind::MY_SEND_COUNT,
            arg: 1,
        }));
        t.push(r1(ControlSent {
            dst: 1,
            kind: control_kind::MY_SEND_COUNT,
            arg: 0,
        }));
        // Rank 0 receives the late message, then both balance and the
        // round completes.
        t.push(r0(RecvClassified {
            comm: 0,
            src: 1,
            tag: 1,
            message_id: 0,
            class: MsgClass::Late,
            sender_logging: false,
            receiver_epoch: 1,
            receiver_logging: true,
        }));
        t.push(r0(LateLogged {
            src: 1,
            message_id: 0,
        }));
        t.push(r0(ControlRecv {
            src: 0,
            kind: control_kind::MY_SEND_COUNT,
            arg: 0,
        }));
        t.push(r0(ControlRecv {
            src: 1,
            kind: control_kind::MY_SEND_COUNT,
            arg: 1,
        }));
        t.push(r0(ControlSent {
            dst: 0,
            kind: control_kind::READY_TO_STOP_LOGGING,
            arg: 0,
        }));
        t.push(r0(ControlRecv {
            src: 0,
            kind: control_kind::READY_TO_STOP_LOGGING,
            arg: 0,
        }));
        t.push(r1(ControlRecv {
            src: 0,
            kind: control_kind::MY_SEND_COUNT,
            arg: 0,
        }));
        t.push(r1(ControlSent {
            dst: 0,
            kind: control_kind::READY_TO_STOP_LOGGING,
            arg: 0,
        }));
        t.push(r0(ControlRecv {
            src: 1,
            kind: control_kind::READY_TO_STOP_LOGGING,
            arg: 0,
        }));
        t.push(r0(InitiatorPhase {
            phase: phase_code::COLLECTING_STOPPED,
            ckpt: 1,
        }));
        for d in 0..2u32 {
            t.push(r0(ControlSent {
                dst: d,
                kind: control_kind::STOP_LOGGING,
                arg: 0,
            }));
        }
        t.push(r0(ControlRecv {
            src: 0,
            kind: control_kind::STOP_LOGGING,
            arg: 0,
        }));
        t.push(r0(LogFinalized {
            ckpt: 1,
            late: 1,
            nondet: 0,
            collectives: 0,
        }));
        t.push(r0(BlobStaged { ckpt: 1, kind: 1 }));
        t.push(r0(ControlSent {
            dst: 0,
            kind: control_kind::STOPPED_LOGGING,
            arg: 0,
        }));
        t.push(r0(ControlRecv {
            src: 0,
            kind: control_kind::STOPPED_LOGGING,
            arg: 0,
        }));
        t.push(r1(ControlRecv {
            src: 0,
            kind: control_kind::STOP_LOGGING,
            arg: 0,
        }));
        t.push(r1(LogFinalized {
            ckpt: 1,
            late: 0,
            nondet: 0,
            collectives: 0,
        }));
        t.push(r1(BlobStaged { ckpt: 1, kind: 1 }));
        t.push(r1(ControlSent {
            dst: 0,
            kind: control_kind::STOPPED_LOGGING,
            arg: 0,
        }));
        t.push(r0(ControlRecv {
            src: 1,
            kind: control_kind::STOPPED_LOGGING,
            arg: 0,
        }));
        t.push(r0(InitiatorPhase {
            phase: phase_code::IDLE,
            ckpt: 1,
        }));
        t.push(r0(PipelineDrained { ckpt: 1, blobs: 4 }));
        t.push(r0(Commit { ckpt: 1 }));
        t.push(r0(GcRan { kept: 1 }));
        t
    }

    #[test]
    fn healthy_round_is_race_clean() {
        let report = race_check(&healthy_round());
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.commits, vec![1]);
    }

    #[test]
    fn vector_clocks_order_the_round() {
        let records = healthy_round();
        let (events, edges) = graph_stats(&records);
        assert_eq!(events, records.len());
        assert!(edges > 4, "cross edges must exist, got {edges}");
    }

    /// Cut the stoppedLogging edge from rank 1: its finalization and the
    /// late accounting become concurrent with the commit.
    #[test]
    fn severed_stop_ack_is_a_race() {
        let mut records = healthy_round();
        records.retain(|r| {
            !matches!(
                r.event,
                TraceEvent::ControlRecv {
                    src: 1,
                    kind: control_kind::STOPPED_LOGGING,
                    ..
                }
            )
        });
        let report = race_check(&records);
        assert!(
            report.violations.iter().any(|v| v.invariant == race::R2),
            "severed stop ack must race the finalize:\n{}",
            report.render()
        );
        assert!(
            report.violations.iter().any(|v| v.invariant == race::R3),
            "rank 1's blobs must race the drain:\n{}",
            report.render()
        );
    }

    /// Two ranks each claim to have received the other's control
    /// message *before* sending their own: the message edges contradict
    /// program order and no execution can realize the recorded streams.
    #[test]
    fn contradictory_order_is_a_cycle() {
        use TraceEvent::*;
        let k = control_kind::MY_SEND_COUNT;
        let records = vec![
            rec(
                0,
                0,
                ControlRecv {
                    src: 1,
                    kind: k,
                    arg: 9,
                },
            ),
            rec(
                0,
                1,
                ControlSent {
                    dst: 1,
                    kind: k,
                    arg: 7,
                },
            ),
            rec(
                1,
                0,
                ControlRecv {
                    src: 0,
                    kind: k,
                    arg: 7,
                },
            ),
            rec(
                1,
                1,
                ControlSent {
                    dst: 0,
                    kind: k,
                    arg: 9,
                },
            ),
        ];
        let report = race_check(&records);
        assert!(
            report.violations.iter().any(|v| v.invariant == race::R0),
            "contradictory order must be reported as a cycle:\n{}",
            report.render()
        );
    }

    #[test]
    fn unreceipted_suppression_is_a_race() {
        use TraceEvent::*;
        // A recovered rank re-sends with suppression but never received
        // the authorizing list.
        let records = vec![
            rec(
                0,
                0,
                RecoveryStart {
                    ckpt: 1,
                    late_in_log: 0,
                    early_counts: vec![0, 0],
                },
            ),
            rec(
                0,
                1,
                Send {
                    comm: 0,
                    dst: 1,
                    tag: 0,
                    epoch: 1,
                    logging: false,
                    message_id: 0,
                    suppressed: true,
                    payload_len: 8,
                },
            ),
        ];
        let report = race_check(&records);
        assert!(
            report.violations.iter().any(|v| v.invariant == race::R6),
            "{}",
            report.render()
        );
    }
}
