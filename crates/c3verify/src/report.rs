//! Violation reports produced by the [`crate::analyzer`].

use std::fmt;

/// One invariant violation, anchored to the rank decision that exposed it.
///
/// `seq` is the per-rank decision index of the offending [`TraceRecord`]
/// (or of the *last* record examined when the violation is a cross-rank
/// property with no single culprit record).
///
/// [`TraceRecord`]: c3_core::trace::TraceRecord
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Invariant identifier (see [`crate::analyzer::invariant`]).
    pub invariant: &'static str,
    /// The job attempt the violation occurred in.
    pub attempt: u64,
    /// The rank whose stream exposed the violation.
    pub rank: u32,
    /// The rank-local decision index the violation anchors to.
    pub seq: u64,
    /// Human-readable description with the relevant epoch / op context.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] attempt {} rank {} seq {}: {}",
            self.invariant, self.attempt, self.rank, self.seq, self.detail
        )
    }
}

/// The analyzer's verdict over a whole trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Every violation found, in (attempt, rank, seq) order.
    pub violations: Vec<Violation>,
    /// Trace records examined.
    pub records: usize,
    /// Number of job attempts covered by the trace.
    pub attempts: usize,
    /// Number of ranks covered by the trace.
    pub ranks: u32,
    /// Globally committed checkpoints observed (initiator `Commit` events).
    pub commits: Vec<u64>,
}

impl Report {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render the report for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "c3verify: {} records, {} attempt(s), {} rank(s), commits {:?}\n",
            self.records, self.attempts, self.ranks, self.commits
        ));
        if self.is_clean() {
            out.push_str("OK: all protocol invariants hold\n");
        } else {
            out.push_str(&format!(
                "FAIL: {} invariant violation(s)\n",
                self.violations.len()
            ));
            for v in &self.violations {
                out.push_str(&format!("  {v}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_mentions_every_violation() {
        let mut r = Report {
            records: 3,
            attempts: 1,
            ranks: 2,
            ..Report::default()
        };
        assert!(r.is_clean());
        assert!(r.render().contains("OK"));
        r.violations.push(Violation {
            invariant: "I1-epoch-monotone",
            attempt: 1,
            rank: 1,
            seq: 7,
            detail: "checkpoint 3 from epoch 1".into(),
        });
        let text = r.render();
        assert!(!r.is_clean());
        assert!(text.contains("FAIL: 1"));
        assert!(text.contains("I1-epoch-monotone"));
        assert!(text.contains("rank 1 seq 7"));
    }
}
