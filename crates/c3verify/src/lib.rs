//! Protocol-invariant verification tooling for the C³ checkpointing
//! protocol (Bronevetsky, Marques, Pingali, Stodghill — "Automated
//! application-level checkpointing of MPI programs", PPoPP 2003).
//!
//! Three layers, stacked on the trace recorder in `c3_core::trace`:
//!
//! 1. **[`analyzer`]** — an offline pass over a recorded trace that
//!    checks sixteen safety invariants of the protocol (epoch monotonicity,
//!    classification soundness, the late-message accounting equation, the
//!    initiator's phase gating, the collective conjunction rule, …) and
//!    reports violations with rank / attempt / operation context.
//! 2. **[`explorer`]** — a bounded exhaustive scheduler that runs short
//!    multi-rank programs through a model of the protocol layer (built
//!    from the real `c3-core` components) under *every* message-delivery
//!    interleaving, analyzing each one.
//! 3. **the `c3verify` binary** — decodes a trace artifact written with
//!    [`c3_core::trace::encode_trace`], prints the report, and exits
//!    non-zero when an invariant is violated, so chaos harnesses and CI
//!    can gate on it.
//!
//! To record a trace, install a [`TraceSink`] in the job's
//! [`C3Config`](c3_core::C3Config) via `with_trace` and hand the sink's
//! records to [`analyze`] (in process) or serialize them with
//! [`c3_core::trace::encode_trace`] for the CLI.

pub mod analyzer;
pub mod explorer;
pub mod hb;
pub mod report;
pub mod verdict;

use std::path::Path;

use c3_core::trace::{decode_trace, TraceRecord, TraceSink};

pub use analyzer::{analyze, invariant};
pub use explorer::{explore, ExploreConfig, ExploreOutcome, Op, Reduction};
pub use hb::{race, race_check};
pub use report::{Report, Violation};
pub use verdict::{verdict, verdict_records, CheckKind, Verdict};

/// Decode a trace artifact file (magic `C3TRACE2`).
pub fn read_trace_file(path: &Path) -> Result<Vec<TraceRecord>, String> {
    let bytes =
        std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    decode_trace(&bytes).map_err(|e| format!("{}: {e}", path.display()))
}

/// Analyze a trace artifact file.
pub fn analyze_file(path: &Path) -> Result<Report, String> {
    Ok(analyze(&read_trace_file(path)?))
}

/// Analyze the records currently held by a live sink (without draining
/// it).
pub fn analyze_sink(sink: &TraceSink) -> Report {
    analyze(&sink.snapshot())
}

/// Race-check a trace artifact file (magic `C3TRACE2`).
pub fn race_check_file(path: &Path) -> Result<Report, String> {
    Ok(race_check(&read_trace_file(path)?))
}

/// Race-check the records currently held by a live sink (without
/// draining it).
pub fn race_check_sink(sink: &TraceSink) -> Report {
    race_check(&sink.snapshot())
}
