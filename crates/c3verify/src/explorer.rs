//! Bounded exhaustive exploration of message-delivery interleavings.
//!
//! The explorer runs a small deterministic model of the C³ protocol layer
//! — built from the *real* `c3-core` components ([`ChannelCounters`],
//! [`Initiator`], [`ControlMsg`], the epoch classifier) — over every
//! schedule of a short multi-rank program, and feeds each interleaving's
//! trace through [`crate::analyzer::analyze`]. It answers the question a
//! single chaos run cannot: do the protocol invariants hold on *every*
//! delivery order, not just the ones the runtime happened to produce?
//!
//! The model per rank mirrors Figure 4's state (epoch, `amLogging`,
//! per-epoch message ids, channel counters, early-id records) and the
//! paper's control handlers, including the stop-logging-on-intra-epoch
//! rule (Section 4.1, phase 4, condition ii) and the initiator's
//! four-phase commit. Channels are FIFO per (sender, receiver), matching
//! the transport; the scheduler's choice point is *which rank executes
//! its next operation*, which subsumes delivery-order choices because a
//! receive always takes the head of its channel.
//!
//! Two deliberate reductions keep the state space tractable, both sound
//! for the safety invariants being checked:
//!
//! * control messages are drained eagerly before each operation (the
//!   runtime drains them opportunistically at every intercepted call, so
//!   eager delivery is one of its real schedules);
//! * failures are not injected — recovery-path invariants are exercised
//!   by the runtime chaos tests instead; the explorer targets the
//!   checkpoint-coordination concurrency, where interleaving diversity
//!   actually lives.
//!
//! Exploration is exhaustive up to [`ExploreConfig::max_interleavings`];
//! hitting the cap is reported explicitly via
//! [`ExploreOutcome::truncated`], never silently.

use std::collections::VecDeque;

use c3_core::control::ControlMsg;
use c3_core::counters::ChannelCounters;
use c3_core::epoch::{classify_by_epoch, MsgClass};
use c3_core::initiator::{Action, Initiator};
use c3_core::trace::{
    control_code, phase_code, TraceEvent, TraceRecord, TraceSink,
};

use crate::analyzer::analyze;
use crate::report::Violation;

/// One operation of a model program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Send one message to `dst` with `tag`.
    Send {
        /// Destination rank.
        dst: usize,
        /// Application tag.
        tag: i32,
    },
    /// Receive one message from `src` (blocks until its channel is
    /// non-empty).
    Recv {
        /// Source rank.
        src: usize,
    },
    /// A `potential_checkpoint` site: honor a pending `pleaseCheckpoint`,
    /// otherwise a no-op.
    Ckpt,
    /// Trigger the initiator (rank 0 only; a no-op if a round is already
    /// in progress).
    Initiate,
}

/// An exploration setup: one program per rank.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// `programs[r]` is rank `r`'s operation sequence.
    pub programs: Vec<Vec<Op>>,
    /// Hard cap on enumerated interleavings (reported via
    /// [`ExploreOutcome::truncated`] when hit).
    pub max_interleavings: usize,
}

/// What exploration found.
#[derive(Debug, Clone, Default)]
pub struct ExploreOutcome {
    /// Complete interleavings enumerated and analyzed.
    pub interleavings: usize,
    /// True if [`ExploreConfig::max_interleavings`] cut enumeration short.
    pub truncated: bool,
    /// Interleavings that ended with a rank blocked on a receive.
    pub deadlocks: usize,
    /// Every invariant violation found, across all interleavings.
    pub violations: Vec<Violation>,
    /// The trace of the first complete interleaving (handy for tests and
    /// for seeding mutation checks).
    pub sample_trace: Vec<TraceRecord>,
}

impl ExploreOutcome {
    /// True when every enumerated interleaving satisfied every invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// An in-flight application message (header only — the model never needs
/// payloads).
#[derive(Debug, Clone, Copy)]
struct AppMsg {
    epoch: u32,
    logging: bool,
    id: u32,
    tag: i32,
}

/// Figure 4's per-process state, driven by the model scheduler.
struct RankVm {
    tracer: c3_core::trace::RankTracer,
    pc: usize,
    epoch: u32,
    logging: bool,
    next_id: u32,
    counters: ChannelCounters,
    early_ids: Vec<Vec<u32>>,
    late_count: u64,
    ckpt_requested: Option<u64>,
    ready_sent: bool,
}

struct Vm {
    n: usize,
    programs: Vec<Vec<Op>>,
    ranks: Vec<RankVm>,
    /// FIFO application channels, `app[src][dst]`.
    app: Vec<Vec<VecDeque<AppMsg>>>,
    /// FIFO control channels, `ctrl[src][dst]`.
    ctrl: Vec<Vec<VecDeque<ControlMsg>>>,
    ini: Initiator,
    sink: TraceSink,
}

impl Vm {
    fn new(programs: &[Vec<Op>]) -> Vm {
        let n = programs.len();
        let sink = TraceSink::new();
        let ranks = (0..n)
            .map(|r| RankVm {
                tracer: sink.for_rank(r as u32, 1),
                pc: 0,
                epoch: 0,
                logging: false,
                next_id: 0,
                counters: ChannelCounters::new(n),
                early_ids: vec![Vec::new(); n],
                late_count: 0,
                ckpt_requested: None,
                ready_sent: false,
            })
            .collect();
        Vm {
            n,
            programs: programs.to_vec(),
            ranks,
            app: vec![vec![VecDeque::new(); n]; n],
            ctrl: vec![vec![VecDeque::new(); n]; n],
            ini: Initiator::new(n, 1, false),
            sink,
        }
    }

    fn send_ctrl(&mut self, from: usize, to: usize, cm: ControlMsg) {
        let (kind, arg) = control_code(&cm);
        self.ranks[from].tracer.record(TraceEvent::ControlSent {
            dst: to as u32,
            kind,
            arg,
        });
        self.ctrl[from][to].push_back(cm);
    }

    /// Execute an initiator action on rank 0 (mirrors `Process::perform`).
    fn perform(&mut self, action: Option<Action>) {
        let Some(action) = action else { return };
        match action {
            Action::BroadcastPleaseCheckpoint { ckpt } => {
                self.ranks[0].tracer.record(TraceEvent::InitiatorPhase {
                    phase: phase_code::COLLECTING_READY,
                    ckpt,
                });
                for dst in 0..self.n {
                    self.send_ctrl(
                        0,
                        dst,
                        ControlMsg::PleaseCheckpoint { ckpt },
                    );
                }
            }
            Action::BroadcastStopLogging => {
                let ckpt = self.ini.current_ckpt();
                self.ranks[0].tracer.record(TraceEvent::InitiatorPhase {
                    phase: phase_code::COLLECTING_STOPPED,
                    ckpt,
                });
                for dst in 0..self.n {
                    self.send_ctrl(0, dst, ControlMsg::StopLogging);
                }
            }
            Action::Commit { ckpt } => {
                self.ranks[0].tracer.record(TraceEvent::InitiatorPhase {
                    phase: phase_code::IDLE,
                    ckpt,
                });
                self.ranks[0].tracer.record(TraceEvent::Commit { ckpt });
            }
        }
    }

    /// Pop the next pending control message for `to`, scanning source
    /// channels in rank order (each channel stays FIFO).
    fn next_ctrl(&mut self, to: usize) -> Option<(usize, ControlMsg)> {
        (0..self.n)
            .find_map(|src| self.ctrl[src][to].pop_front().map(|cm| (src, cm)))
    }

    /// Deliver and handle every pending control message for rank `r`
    /// (mirrors `Process::pump` + `handle_control`).
    fn drain_ctrl(&mut self, r: usize) {
        while let Some((src, cm)) = self.next_ctrl(r) {
            let (kind, arg) = control_code(&cm);
            self.ranks[r].tracer.record(TraceEvent::ControlRecv {
                src: src as u32,
                kind,
                arg,
            });
            match cm {
                ControlMsg::PleaseCheckpoint { ckpt } => {
                    if u64::from(self.ranks[r].epoch) < ckpt {
                        self.ranks[r].ckpt_requested = Some(ckpt);
                    }
                }
                ControlMsg::MySendCount { count } => {
                    self.ranks[r].counters.set_total_sent(src, count);
                    if self.ranks[r].logging {
                        self.check_ready(r);
                    }
                }
                ControlMsg::StopLogging => {
                    if self.ranks[r].logging {
                        self.finalize_log(r);
                    }
                }
                ControlMsg::ReadyToStopLogging => {
                    if r == 0 {
                        let action = self.ini.on_ready_to_stop_logging(src);
                        self.perform(action);
                    }
                }
                ControlMsg::StoppedLogging => {
                    if r == 0 {
                        let action = self.ini.on_stopped_logging(src);
                        self.perform(action);
                    }
                }
                ControlMsg::RecoveryComplete => {}
            }
        }
    }

    fn check_ready(&mut self, r: usize) {
        if !self.ranks[r].ready_sent && self.ranks[r].counters.received_all() {
            self.ranks[r].ready_sent = true;
            self.send_ctrl(r, 0, ControlMsg::ReadyToStopLogging);
        }
    }

    fn finalize_log(&mut self, r: usize) {
        let rk = &mut self.ranks[r];
        rk.tracer.record(TraceEvent::LogFinalized {
            ckpt: u64::from(rk.epoch),
            late: rk.late_count,
            nondet: 0,
            collectives: 0,
        });
        rk.logging = false;
        self.send_ctrl(r, 0, ControlMsg::StoppedLogging);
    }

    fn take_checkpoint(&mut self, r: usize, ckpt: u64) {
        let send_counts: Vec<u64> = (0..self.n)
            .map(|d| self.ranks[r].counters.send_count(d))
            .collect();
        let early_counts: Vec<u64> = self.ranks[r]
            .early_ids
            .iter()
            .map(|v| v.len() as u64)
            .collect();
        self.ranks[r].tracer.record(TraceEvent::CheckpointTaken {
            ckpt,
            send_counts: send_counts.clone(),
            early_counts: early_counts.clone(),
        });
        for (dst, &count) in send_counts.iter().enumerate() {
            self.send_ctrl(r, dst, ControlMsg::MySendCount { count });
        }
        let rk = &mut self.ranks[r];
        rk.counters.rotate_at_checkpoint(&early_counts);
        rk.early_ids = vec![Vec::new(); self.n];
        rk.ckpt_requested = None;
        rk.epoch = ckpt as u32;
        rk.logging = true;
        rk.ready_sent = false;
        rk.next_id = 0;
        rk.late_count = 0;
        self.check_ready(r);
    }

    /// True if rank `r` can execute its next operation now.
    fn enabled(&self, r: usize) -> bool {
        match self.programs[r].get(self.ranks[r].pc) {
            None => false,
            Some(Op::Recv { src }) => !self.app[*src][r].is_empty(),
            Some(_) => true,
        }
    }

    fn enabled_ranks(&self) -> Vec<usize> {
        (0..self.n).filter(|&r| self.enabled(r)).collect()
    }

    fn unfinished(&self) -> bool {
        (0..self.n).any(|r| self.ranks[r].pc < self.programs[r].len())
    }

    /// Execute rank `r`'s next operation (the scheduler's step).
    fn step(&mut self, r: usize) {
        self.drain_ctrl(r);
        let op = self.programs[r][self.ranks[r].pc];
        self.ranks[r].pc += 1;
        match op {
            Op::Send { dst, tag } => {
                let rk = &mut self.ranks[r];
                let id = rk.next_id;
                rk.next_id += 1;
                rk.counters.on_send(dst);
                let (epoch, logging) = (rk.epoch, rk.logging);
                rk.tracer.record(TraceEvent::Send {
                    comm: 0,
                    dst: dst as u32,
                    tag,
                    epoch,
                    logging,
                    message_id: id,
                    suppressed: false,
                    payload_len: 8,
                });
                self.app[r][dst].push_back(AppMsg {
                    epoch,
                    logging,
                    id,
                    tag,
                });
            }
            Op::Recv { src } => {
                let m = self.app[src][r]
                    .pop_front()
                    .expect("scheduler stepped a disabled receive");
                let class = classify_by_epoch(m.epoch, self.ranks[r].epoch);
                {
                    let rk = &mut self.ranks[r];
                    rk.tracer.record(TraceEvent::RecvClassified {
                        comm: 0,
                        src: src as u32,
                        tag: m.tag,
                        message_id: m.id,
                        class,
                        sender_logging: m.logging,
                        receiver_epoch: rk.epoch,
                        receiver_logging: rk.logging,
                    });
                }
                match class {
                    MsgClass::IntraEpoch => {
                        // Section 4.1, phase 4, condition ii: an
                        // intra-epoch message from a non-logging sender
                        // means everyone has checkpointed.
                        if self.ranks[r].logging && !m.logging {
                            self.finalize_log(r);
                        }
                        self.ranks[r].counters.on_intra_epoch_recv(src);
                    }
                    MsgClass::Late => {
                        let rk = &mut self.ranks[r];
                        rk.late_count += 1;
                        rk.tracer.record(TraceEvent::LateLogged {
                            src: src as u32,
                            message_id: m.id,
                        });
                        rk.counters.on_late_recv(src);
                        self.check_ready(r);
                    }
                    MsgClass::Early => {
                        let rk = &mut self.ranks[r];
                        rk.early_ids[src].push(m.id);
                        rk.tracer.record(TraceEvent::EarlyRecorded {
                            src: src as u32,
                            message_id: m.id,
                        });
                    }
                }
            }
            Op::Ckpt => {
                if let Some(k) = self.ranks[r].ckpt_requested {
                    if u64::from(self.ranks[r].epoch) < k {
                        self.take_checkpoint(r, k);
                    }
                }
            }
            Op::Initiate => {
                if r == 0 {
                    let action = self.ini.initiate();
                    self.perform(action);
                }
            }
        }
    }

    /// Drain all control traffic to a fixpoint (the post-program
    /// settling the runtime performs while ranks idle at finalize).
    fn quiesce(&mut self) {
        loop {
            let pending = (0..self.n)
                .any(|to| (0..self.n).any(|s| !self.ctrl[s][to].is_empty()));
            if !pending {
                return;
            }
            for r in 0..self.n {
                self.drain_ctrl(r);
            }
        }
    }
}

/// Enumerate every interleaving of the configured programs (depth-first
/// over scheduler choices), analyzing each complete trace.
pub fn explore(cfg: &ExploreConfig) -> ExploreOutcome {
    let mut out = ExploreOutcome::default();
    // Each stack entry is a schedule prefix; a fresh VM is replayed along
    // it (programs are tiny, so re-execution is cheaper than snapshotting
    // the protocol state).
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    while let Some(path) = stack.pop() {
        if out.interleavings >= cfg.max_interleavings {
            out.truncated = true;
            return out;
        }
        let mut vm = Vm::new(&cfg.programs);
        for &r in &path {
            vm.step(r);
        }
        let enabled = vm.enabled_ranks();
        if enabled.is_empty() {
            if vm.unfinished() {
                out.deadlocks += 1;
            }
            vm.quiesce();
            out.interleavings += 1;
            let trace = vm.sink.take();
            out.violations.extend(analyze(&trace).violations);
            if out.sample_trace.is_empty() {
                out.sample_trace = trace;
            }
        } else {
            // Reverse so lower ranks are explored first (pure cosmetics —
            // exploration is exhaustive either way).
            for &r in enabled.iter().rev() {
                let mut next = path.clone();
                next.push(r);
                stack.push(next);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-rank checkpoint round with cross traffic: every interleaving
    /// must satisfy every invariant, and the mix must produce all three
    /// message classes across the schedule space.
    #[test]
    fn two_rank_checkpoint_round_is_invariant_clean() {
        let cfg = ExploreConfig {
            programs: vec![
                vec![
                    Op::Initiate,
                    Op::Send { dst: 1, tag: 7 },
                    Op::Ckpt,
                    Op::Send { dst: 1, tag: 7 },
                    Op::Recv { src: 1 },
                    Op::Recv { src: 1 },
                ],
                vec![
                    Op::Send { dst: 0, tag: 9 },
                    Op::Ckpt,
                    Op::Send { dst: 0, tag: 9 },
                    Op::Recv { src: 0 },
                    Op::Recv { src: 0 },
                ],
            ],
            max_interleavings: 100_000,
        };
        let out = explore(&cfg);
        assert!(!out.truncated, "cap hit at {}", out.interleavings);
        assert_eq!(out.deadlocks, 0);
        assert!(out.interleavings > 50, "only {}", out.interleavings);
        assert!(
            out.violations.is_empty(),
            "violations: {:#?}",
            out.violations
        );
    }

    /// Scheduling freedom really does produce different classifications
    /// (late and intra at least; early when a receive precedes the
    /// receiver's checkpoint site).
    #[test]
    fn interleavings_cover_multiple_message_classes() {
        let cfg = ExploreConfig {
            programs: vec![
                vec![
                    Op::Initiate,
                    Op::Recv { src: 1 },
                    Op::Ckpt,
                    Op::Recv { src: 1 },
                ],
                vec![
                    Op::Send { dst: 0, tag: 1 },
                    Op::Ckpt,
                    Op::Send { dst: 0, tag: 1 },
                ],
            ],
            max_interleavings: 100_000,
        };
        let out = explore(&cfg);
        assert!(out.is_clean(), "violations: {:#?}", out.violations);
        // Re-run collecting classes across all interleavings.
        let mut classes = std::collections::BTreeSet::new();
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        while let Some(path) = stack.pop() {
            let mut vm = Vm::new(&cfg.programs);
            for &r in &path {
                vm.step(r);
            }
            let enabled = vm.enabled_ranks();
            if enabled.is_empty() {
                vm.quiesce();
                for rec in vm.sink.take() {
                    if let TraceEvent::RecvClassified { class, .. } = rec.event
                    {
                        classes.insert(format!("{class:?}"));
                    }
                }
            } else {
                for &r in &enabled {
                    let mut next = path.clone();
                    next.push(r);
                    stack.push(next);
                }
            }
        }
        assert!(
            classes.len() >= 2,
            "schedules produced only {classes:?} — the explorer is not \
             exercising classification diversity"
        );
    }

    /// The cap is reported, never silent.
    #[test]
    fn truncation_is_reported() {
        let cfg = ExploreConfig {
            programs: vec![
                vec![Op::Send { dst: 1, tag: 0 }; 4],
                vec![Op::Recv { src: 0 }; 4],
            ],
            max_interleavings: 3,
        };
        let out = explore(&cfg);
        assert!(out.truncated);
        assert_eq!(out.interleavings, 3);
    }

    /// A receive with no matching send deadlocks that schedule; the
    /// outcome says so.
    #[test]
    fn missing_sender_reports_deadlock() {
        let cfg = ExploreConfig {
            programs: vec![vec![Op::Recv { src: 1 }], vec![]],
            max_interleavings: 10,
        };
        let out = explore(&cfg);
        assert_eq!(out.deadlocks, 1);
        assert_eq!(out.interleavings, 1);
    }
}
