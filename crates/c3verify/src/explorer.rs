//! Bounded exhaustive exploration of message-delivery interleavings,
//! with optional dynamic partial-order reduction.
//!
//! The explorer runs a small deterministic model of the C³ protocol layer
//! — built from the *real* `c3-core` components ([`ChannelCounters`],
//! [`Initiator`], [`ControlMsg`], the epoch classifier) — over every
//! schedule of a short multi-rank program, and feeds each interleaving's
//! trace through [`crate::analyzer::analyze`]. It answers the question a
//! single chaos run cannot: do the protocol invariants hold on *every*
//! delivery order, not just the ones the runtime happened to produce?
//!
//! The model per rank mirrors Figure 4's state (epoch, `amLogging`,
//! per-epoch message ids, channel counters, early-id records) and the
//! paper's control handlers, including the stop-logging-on-intra-epoch
//! rule (Section 4.1, phase 4, condition ii) and the initiator's
//! four-phase commit. Channels are FIFO per (sender, receiver), matching
//! the transport; the scheduler's choice point is *which rank executes
//! its next operation*, which subsumes delivery-order choices because a
//! receive always takes the head of its channel.
//!
//! # Partial-order reduction
//!
//! [`Reduction::Dpor`] enables persistent-set + sleep-set dynamic
//! partial-order reduction (Flanagan–Godefroid, POPL 2005). Two
//! scheduler steps are **dependent** when they cannot be commuted
//! without changing some rank's observations:
//!
//! * steps of the same rank (program order);
//! * steps touching the same application channel (a send and the
//!   receive it feeds, FIFO head vs tail);
//! * any step and a step of rank 0 — every step's control drain may
//!   emit a reactive ack (`readyToStopLogging`, `stoppedLogging`) to
//!   the initiator, and every rank-0 step may broadcast;
//! * a `Ckpt` step and anything — taking a checkpoint broadcasts
//!   `mySendCount` to every rank.
//!
//! The last two clauses are deliberate *static over-approximations* of
//! the dynamic write set: whether a drain actually emits an ack depends
//! on counter state, so using the observed writes would make dependence
//! path-sensitive and unsound. Over-approximation only adds backtrack
//! points, so it is conservative: every Mazurkiewicz trace (equivalence
//! class of schedules under commuting independent steps) still gets at
//! least one representative, and independent steps leave per-rank
//! streams — hence analyzer verdicts — untouched. The explorer's tests
//! assert this directly by comparing canonical trace-signature sets
//! between full and reduced exploration.
//!
//! [`Reduction::Full`] runs the same search with dependence ≡ true,
//! which degenerates to the exhaustive DFS: every schedule, one leaf
//! each.
//!
//! Two deliberate model reductions keep the state space tractable, both
//! sound for the safety invariants being checked:
//!
//! * control messages are drained eagerly before each operation (the
//!   runtime drains them opportunistically at every intercepted call, so
//!   eager delivery is one of its real schedules);
//! * failures are not injected — recovery-path invariants are exercised
//!   by the runtime chaos tests instead; the explorer targets the
//!   checkpoint-coordination concurrency, where interleaving diversity
//!   actually lives.
//!
//! Exploration is exhaustive up to [`ExploreConfig::max_interleavings`];
//! hitting the cap is reported explicitly via
//! [`ExploreOutcome::truncated`], never silently.

use std::collections::{BTreeSet, VecDeque};

use c3_core::control::ControlMsg;
use c3_core::counters::ChannelCounters;
use c3_core::epoch::{classify_by_epoch, MsgClass};
use c3_core::initiator::{Action, Initiator};
use c3_core::trace::{
    control_code, encode_trace, phase_code, TraceEvent, TraceRecord, TraceSink,
};

use crate::analyzer::analyze;
use crate::report::Violation;

/// One operation of a model program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Send one message to `dst` with `tag`.
    Send {
        /// Destination rank.
        dst: usize,
        /// Application tag.
        tag: i32,
    },
    /// Receive one message from `src` (blocks until its channel is
    /// non-empty).
    Recv {
        /// Source rank.
        src: usize,
    },
    /// A `potential_checkpoint` site: honor a pending `pleaseCheckpoint`,
    /// otherwise a no-op.
    Ckpt,
    /// Trigger the initiator (rank 0 only; a no-op if a round is already
    /// in progress).
    Initiate,
}

/// Search strategy for [`explore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reduction {
    /// Enumerate every schedule (dependence ≡ true).
    #[default]
    Full,
    /// Persistent-set + sleep-set dynamic partial-order reduction: one
    /// representative per Mazurkiewicz trace, same verdicts.
    Dpor,
}

/// An exploration setup: one program per rank.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// `programs[r]` is rank `r`'s operation sequence.
    pub programs: Vec<Vec<Op>>,
    /// Hard cap on enumerated interleavings (reported via
    /// [`ExploreOutcome::truncated`] when hit).
    pub max_interleavings: usize,
    /// Search strategy.
    pub reduction: Reduction,
    /// Collect a canonical signature per analyzed interleaving into
    /// [`ExploreOutcome::signatures`] (off by default: it retains every
    /// leaf trace's encoding in memory).
    pub collect_signatures: bool,
}

impl ExploreConfig {
    /// A full-enumeration setup (the historical default).
    pub fn new(programs: Vec<Vec<Op>>, max_interleavings: usize) -> Self {
        ExploreConfig {
            programs,
            max_interleavings,
            reduction: Reduction::Full,
            collect_signatures: false,
        }
    }

    /// Select the search strategy.
    pub fn with_reduction(mut self, reduction: Reduction) -> Self {
        self.reduction = reduction;
        self
    }

    /// Enable canonical-signature collection.
    pub fn with_signatures(mut self) -> Self {
        self.collect_signatures = true;
        self
    }
}

/// What exploration found.
#[derive(Debug, Clone, Default)]
pub struct ExploreOutcome {
    /// Complete interleavings enumerated and analyzed.
    pub interleavings: usize,
    /// True if [`ExploreConfig::max_interleavings`] cut enumeration short.
    pub truncated: bool,
    /// Interleavings that ended with a rank blocked on a receive.
    pub deadlocks: usize,
    /// Every invariant violation found, across all interleavings.
    pub violations: Vec<Violation>,
    /// The trace of the first complete interleaving (handy for tests and
    /// for seeding mutation checks).
    pub sample_trace: Vec<TraceRecord>,
    /// Scheduler states visited (choice points + leaves).
    pub states_explored: usize,
    /// States cut off without analysis because every enabled rank was in
    /// the sleep set (its subtree is a guaranteed replica of an already
    /// explored one).
    pub states_pruned: usize,
    /// Scheduler transitions executed (tree edges walked).
    pub transitions: usize,
    /// Canonical per-interleaving trace signatures (only populated when
    /// [`ExploreConfig::collect_signatures`] is set). Equal signature
    /// sets mean equal analyzer-visible coverage.
    pub signatures: BTreeSet<Vec<u8>>,
}

impl ExploreOutcome {
    /// True when every enumerated interleaving satisfied every invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// An in-flight application message (header only — the model never needs
/// payloads).
#[derive(Debug, Clone, Copy)]
struct AppMsg {
    epoch: u32,
    logging: bool,
    id: u32,
    tag: i32,
}

/// Figure 4's per-process state, driven by the model scheduler.
struct RankVm {
    tracer: c3_core::trace::RankTracer,
    pc: usize,
    epoch: u32,
    logging: bool,
    next_id: u32,
    counters: ChannelCounters,
    early_ids: Vec<Vec<u32>>,
    late_count: u64,
    ckpt_requested: Option<u64>,
    ready_sent: bool,
}

struct Vm {
    n: usize,
    programs: Vec<Vec<Op>>,
    ranks: Vec<RankVm>,
    /// FIFO application channels, `app[src][dst]`.
    app: Vec<Vec<VecDeque<AppMsg>>>,
    /// FIFO control channels, `ctrl[src][dst]`.
    ctrl: Vec<Vec<VecDeque<ControlMsg>>>,
    ini: Initiator,
    sink: TraceSink,
}

impl Vm {
    fn new(programs: &[Vec<Op>]) -> Vm {
        let n = programs.len();
        let sink = TraceSink::new();
        let ranks = (0..n)
            .map(|r| RankVm {
                tracer: sink.for_rank(r as u32, 1),
                pc: 0,
                epoch: 0,
                logging: false,
                next_id: 0,
                counters: ChannelCounters::new(n),
                early_ids: vec![Vec::new(); n],
                late_count: 0,
                ckpt_requested: None,
                ready_sent: false,
            })
            .collect();
        Vm {
            n,
            programs: programs.to_vec(),
            ranks,
            app: vec![vec![VecDeque::new(); n]; n],
            ctrl: vec![vec![VecDeque::new(); n]; n],
            ini: Initiator::new(n, 1, false),
            sink,
        }
    }

    fn send_ctrl(&mut self, from: usize, to: usize, cm: ControlMsg) {
        let (kind, arg) = control_code(&cm);
        self.ranks[from].tracer.record(TraceEvent::ControlSent {
            dst: to as u32,
            kind,
            arg,
        });
        self.ctrl[from][to].push_back(cm);
    }

    /// Execute an initiator action on rank 0 (mirrors `Process::perform`).
    fn perform(&mut self, action: Option<Action>) {
        let Some(action) = action else { return };
        match action {
            Action::BroadcastPleaseCheckpoint { ckpt } => {
                self.ranks[0].tracer.record(TraceEvent::InitiatorPhase {
                    phase: phase_code::COLLECTING_READY,
                    ckpt,
                });
                for dst in 0..self.n {
                    self.send_ctrl(
                        0,
                        dst,
                        ControlMsg::PleaseCheckpoint { ckpt },
                    );
                }
            }
            Action::BroadcastStopLogging => {
                let ckpt = self.ini.current_ckpt();
                self.ranks[0].tracer.record(TraceEvent::InitiatorPhase {
                    phase: phase_code::COLLECTING_STOPPED,
                    ckpt,
                });
                for dst in 0..self.n {
                    self.send_ctrl(0, dst, ControlMsg::StopLogging);
                }
            }
            Action::Commit { ckpt } => {
                self.ranks[0].tracer.record(TraceEvent::InitiatorPhase {
                    phase: phase_code::IDLE,
                    ckpt,
                });
                self.ranks[0].tracer.record(TraceEvent::Commit { ckpt });
            }
        }
    }

    /// Pop the next pending control message for `to`, scanning source
    /// channels in rank order (each channel stays FIFO).
    fn next_ctrl(&mut self, to: usize) -> Option<(usize, ControlMsg)> {
        (0..self.n)
            .find_map(|src| self.ctrl[src][to].pop_front().map(|cm| (src, cm)))
    }

    /// Deliver and handle every pending control message for rank `r`
    /// (mirrors `Process::pump` + `handle_control`).
    fn drain_ctrl(&mut self, r: usize) {
        while let Some((src, cm)) = self.next_ctrl(r) {
            let (kind, arg) = control_code(&cm);
            self.ranks[r].tracer.record(TraceEvent::ControlRecv {
                src: src as u32,
                kind,
                arg,
            });
            match cm {
                ControlMsg::PleaseCheckpoint { ckpt } => {
                    if u64::from(self.ranks[r].epoch) < ckpt {
                        self.ranks[r].ckpt_requested = Some(ckpt);
                    }
                }
                ControlMsg::MySendCount { count } => {
                    self.ranks[r].counters.set_total_sent(src, count);
                    if self.ranks[r].logging {
                        self.check_ready(r);
                    }
                }
                ControlMsg::StopLogging => {
                    if self.ranks[r].logging {
                        self.finalize_log(r);
                    }
                }
                ControlMsg::ReadyToStopLogging => {
                    if r == 0 {
                        let action = self.ini.on_ready_to_stop_logging(src);
                        self.perform(action);
                    }
                }
                ControlMsg::StoppedLogging => {
                    if r == 0 {
                        let action = self.ini.on_stopped_logging(src);
                        self.perform(action);
                    }
                }
                ControlMsg::RecoveryComplete => {}
            }
        }
    }

    fn check_ready(&mut self, r: usize) {
        if !self.ranks[r].ready_sent && self.ranks[r].counters.received_all() {
            self.ranks[r].ready_sent = true;
            self.send_ctrl(r, 0, ControlMsg::ReadyToStopLogging);
        }
    }

    fn finalize_log(&mut self, r: usize) {
        let rk = &mut self.ranks[r];
        rk.tracer.record(TraceEvent::LogFinalized {
            ckpt: u64::from(rk.epoch),
            late: rk.late_count,
            nondet: 0,
            collectives: 0,
        });
        rk.logging = false;
        self.send_ctrl(r, 0, ControlMsg::StoppedLogging);
    }

    fn take_checkpoint(&mut self, r: usize, ckpt: u64) {
        let send_counts: Vec<u64> = (0..self.n)
            .map(|d| self.ranks[r].counters.send_count(d))
            .collect();
        let early_counts: Vec<u64> = self.ranks[r]
            .early_ids
            .iter()
            .map(|v| v.len() as u64)
            .collect();
        self.ranks[r].tracer.record(TraceEvent::CheckpointTaken {
            ckpt,
            send_counts: send_counts.clone(),
            early_counts: early_counts.clone(),
        });
        for (dst, &count) in send_counts.iter().enumerate() {
            self.send_ctrl(r, dst, ControlMsg::MySendCount { count });
        }
        let rk = &mut self.ranks[r];
        rk.counters.rotate_at_checkpoint(&early_counts);
        rk.early_ids = vec![Vec::new(); self.n];
        rk.ckpt_requested = None;
        rk.epoch = ckpt as u32;
        rk.logging = true;
        rk.ready_sent = false;
        rk.next_id = 0;
        rk.late_count = 0;
        self.check_ready(r);
    }

    /// True if rank `r` can execute its next operation now.
    fn enabled(&self, r: usize) -> bool {
        match self.programs[r].get(self.ranks[r].pc) {
            None => false,
            Some(Op::Recv { src }) => !self.app[*src][r].is_empty(),
            Some(_) => true,
        }
    }

    fn enabled_ranks(&self) -> Vec<usize> {
        (0..self.n).filter(|&r| self.enabled(r)).collect()
    }

    fn unfinished(&self) -> bool {
        (0..self.n).any(|r| self.ranks[r].pc < self.programs[r].len())
    }

    /// Execute rank `r`'s next operation (the scheduler's step).
    fn step(&mut self, r: usize) {
        self.drain_ctrl(r);
        let op = self.programs[r][self.ranks[r].pc];
        self.ranks[r].pc += 1;
        match op {
            Op::Send { dst, tag } => {
                let rk = &mut self.ranks[r];
                let id = rk.next_id;
                rk.next_id += 1;
                rk.counters.on_send(dst);
                let (epoch, logging) = (rk.epoch, rk.logging);
                rk.tracer.record(TraceEvent::Send {
                    comm: 0,
                    dst: dst as u32,
                    tag,
                    epoch,
                    logging,
                    message_id: id,
                    suppressed: false,
                    payload_len: 8,
                });
                self.app[r][dst].push_back(AppMsg {
                    epoch,
                    logging,
                    id,
                    tag,
                });
            }
            Op::Recv { src } => {
                let m = self.app[src][r]
                    .pop_front()
                    .expect("scheduler stepped a disabled receive");
                let class = classify_by_epoch(m.epoch, self.ranks[r].epoch);
                {
                    let rk = &mut self.ranks[r];
                    rk.tracer.record(TraceEvent::RecvClassified {
                        comm: 0,
                        src: src as u32,
                        tag: m.tag,
                        message_id: m.id,
                        class,
                        sender_logging: m.logging,
                        receiver_epoch: rk.epoch,
                        receiver_logging: rk.logging,
                    });
                }
                match class {
                    MsgClass::IntraEpoch => {
                        // Section 4.1, phase 4, condition ii: an
                        // intra-epoch message from a non-logging sender
                        // means everyone has checkpointed.
                        if self.ranks[r].logging && !m.logging {
                            self.finalize_log(r);
                        }
                        self.ranks[r].counters.on_intra_epoch_recv(src);
                    }
                    MsgClass::Late => {
                        let rk = &mut self.ranks[r];
                        rk.late_count += 1;
                        rk.tracer.record(TraceEvent::LateLogged {
                            src: src as u32,
                            message_id: m.id,
                        });
                        rk.counters.on_late_recv(src);
                        self.check_ready(r);
                    }
                    MsgClass::Early => {
                        let rk = &mut self.ranks[r];
                        rk.early_ids[src].push(m.id);
                        rk.tracer.record(TraceEvent::EarlyRecorded {
                            src: src as u32,
                            message_id: m.id,
                        });
                    }
                }
            }
            Op::Ckpt => {
                if let Some(k) = self.ranks[r].ckpt_requested {
                    if u64::from(self.ranks[r].epoch) < k {
                        self.take_checkpoint(r, k);
                    }
                }
            }
            Op::Initiate => {
                if r == 0 {
                    let action = self.ini.initiate();
                    self.perform(action);
                }
            }
        }
    }

    /// Drain all control traffic to a fixpoint (the post-program
    /// settling the runtime performs while ranks idle at finalize).
    fn quiesce(&mut self) {
        loop {
            let pending = (0..self.n)
                .any(|to| (0..self.n).any(|s| !self.ctrl[s][to].is_empty()));
            if !pending {
                return;
            }
            for r in 0..self.n {
                self.drain_ctrl(r);
            }
        }
    }
}

/// The static may-touch set of one scheduler step, used by the
/// independence relation (see the module docs for the soundness
/// argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Footprint {
    rank: usize,
    /// Application channel `(src, dst)` read or written, if any.
    app: Option<(usize, usize)>,
    /// May write control traffic to *every* rank (initiator broadcast
    /// or `mySendCount` announcement). Every step may write to rank 0
    /// regardless (reactive acks), which the relation encodes directly.
    ctrl_all: bool,
}

/// The footprint of rank `r` executing `op`. Static in `(r, op)` — it
/// never depends on protocol state, which is what makes the dependence
/// relation sound to reuse across reordered schedules.
fn footprint(r: usize, op: Op) -> Footprint {
    Footprint {
        rank: r,
        app: match op {
            Op::Send { dst, .. } => Some((r, dst)),
            Op::Recv { src } => Some((src, r)),
            Op::Ckpt | Op::Initiate => None,
        },
        ctrl_all: r == 0 || matches!(op, Op::Ckpt),
    }
}

/// True when the two steps may not commute.
fn conflicting(a: Footprint, b: Footprint) -> bool {
    a.rank == b.rank
        || a.rank == 0
        || b.rank == 0
        || a.ctrl_all
        || b.ctrl_all
        || (a.app.is_some() && a.app == b.app)
}

/// One executed transition on the current DFS path.
struct TrailEntry {
    rank: usize,
    fp: Footprint,
    /// `clock[q]` = 1-based trail index of the latest rank-`q` transition
    /// that happens-before this one (transitively, through dependence).
    clock: Vec<usize>,
}

/// The choice-point bookkeeping for one state on the current DFS path.
struct Frame {
    /// Ranks scheduled (or to be scheduled) from this state.
    backtrack: BTreeSet<usize>,
    /// Ranks whose subtrees are already covered by an explored sibling
    /// (with the footprint they had when they went to sleep).
    sleep: Vec<(usize, Footprint)>,
    /// Ranks enabled at this state (the conservative backtrack target).
    pre_enabled: Vec<usize>,
}

struct Dfs<'a> {
    cfg: &'a ExploreConfig,
    out: ExploreOutcome,
    trail: Vec<TrailEntry>,
    frames: Vec<Frame>,
    stop: bool,
}

impl Dfs<'_> {
    fn dependent(&self, a: Footprint, b: Footprint) -> bool {
        match self.cfg.reduction {
            Reduction::Full => true,
            Reduction::Dpor => conflicting(a, b),
        }
    }

    /// Rebuild the VM state at the current path (programs are tiny, so
    /// re-execution is cheaper than snapshotting the protocol state).
    fn replay(&self) -> Vm {
        let mut vm = Vm::new(&self.cfg.programs);
        for e in &self.trail {
            vm.step(e.rank);
        }
        vm
    }

    /// The next operation rank `p` would execute at the current state.
    fn next_op(&self, p: usize) -> Op {
        let pc = self.trail.iter().filter(|e| e.rank == p).count();
        self.cfg.programs[p][pc]
    }

    /// Flanagan–Godefroid backtrack rule: find the deepest trail entry
    /// dependent with `p`'s next transition and not already ordered
    /// before `p` by happens-before; schedule `p` (or, if `p` was not
    /// enabled there, everything) at that entry's state.
    fn add_backtracks(&mut self, p: usize, fp_p: Footprint) {
        let last_p_clock = self
            .trail
            .iter()
            .rev()
            .find(|e| e.rank == p)
            .map(|e| e.clock.clone());
        for j in (0..self.trail.len()).rev() {
            let (rank_j, fp_j) = (self.trail[j].rank, self.trail[j].fp);
            if rank_j == p || !self.dependent(fp_j, fp_p) {
                continue;
            }
            // Clocks are 1-based trail indices: entry j is index j + 1.
            let hb = last_p_clock.as_ref().is_some_and(|c| c[rank_j] > j);
            if hb {
                continue;
            }
            let frame = &mut self.frames[j];
            if frame.pre_enabled.contains(&p) {
                frame.backtrack.insert(p);
            } else {
                frame.backtrack.extend(frame.pre_enabled.iter().copied());
            }
            return;
        }
    }

    /// Vector clock of `p`'s next transition: join of every dependent
    /// predecessor's clock, then its own (about-to-be) index.
    fn clock_for(&self, p: usize, fp_p: Footprint) -> Vec<usize> {
        let n = self.cfg.programs.len();
        let mut clock = vec![0usize; n];
        for e in &self.trail {
            if self.dependent(e.fp, fp_p) {
                for (c, &ec) in clock.iter_mut().zip(&e.clock) {
                    *c = (*c).max(ec);
                }
            }
        }
        clock[p] = self.trail.len() + 1;
        clock
    }

    fn leaf(&mut self, mut vm: Vm) {
        if self.out.interleavings >= self.cfg.max_interleavings {
            self.out.truncated = true;
            self.stop = true;
            return;
        }
        if vm.unfinished() {
            self.out.deadlocks += 1;
        }
        vm.quiesce();
        self.out.interleavings += 1;
        let trace = vm.sink.take();
        self.out.violations.extend(analyze(&trace).violations);
        if self.cfg.collect_signatures {
            let mut canon = trace.clone();
            canon.sort_by(|a, b| {
                (a.rank, a.attempt, a.seq).cmp(&(b.rank, b.attempt, b.seq))
            });
            self.out.signatures.insert(encode_trace(&canon));
        }
        if self.out.sample_trace.is_empty() {
            self.out.sample_trace = trace;
        }
    }

    fn run(&mut self, sleep: Vec<(usize, Footprint)>) {
        if self.stop {
            return;
        }
        let vm = self.replay();
        self.out.states_explored += 1;
        let enabled = vm.enabled_ranks();
        if enabled.is_empty() {
            self.leaf(vm);
            return;
        }
        let Some(&first) = enabled
            .iter()
            .find(|&&r| !sleep.iter().any(|&(q, _)| q == r))
        else {
            self.out.states_pruned += 1;
            return;
        };
        drop(vm);
        let d = self.frames.len();
        self.frames.push(Frame {
            backtrack: BTreeSet::from([first]),
            sleep,
            pre_enabled: enabled,
        });
        loop {
            if self.stop {
                break;
            }
            let frame = &self.frames[d];
            let Some(p) = frame
                .backtrack
                .iter()
                .copied()
                .find(|&p| !frame.sleep.iter().any(|&(q, _)| q == p))
            else {
                break;
            };
            let fp_p = footprint(p, self.next_op(p));
            self.add_backtracks(p, fp_p);
            let clock = self.clock_for(p, fp_p);
            let child_sleep: Vec<(usize, Footprint)> = self.frames[d]
                .sleep
                .iter()
                .copied()
                .filter(|&(_, fq)| !self.dependent(fq, fp_p))
                .collect();
            self.trail.push(TrailEntry {
                rank: p,
                fp: fp_p,
                clock,
            });
            self.out.transitions += 1;
            self.run(child_sleep);
            self.trail.pop();
            self.frames[d].sleep.push((p, fp_p));
        }
        self.frames.pop();
    }
}

/// Enumerate the configured programs' interleavings (every schedule
/// under [`Reduction::Full`]; one representative per Mazurkiewicz trace
/// under [`Reduction::Dpor`]), analyzing each complete trace.
pub fn explore(cfg: &ExploreConfig) -> ExploreOutcome {
    let mut dfs = Dfs {
        cfg,
        out: ExploreOutcome::default(),
        trail: Vec::new(),
        frames: Vec::new(),
        stop: false,
    };
    dfs.run(Vec::new());
    dfs.out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-rank checkpoint round with cross traffic: every interleaving
    /// must satisfy every invariant, and the mix must produce all three
    /// message classes across the schedule space.
    #[test]
    fn two_rank_checkpoint_round_is_invariant_clean() {
        let cfg = ExploreConfig::new(
            vec![
                vec![
                    Op::Initiate,
                    Op::Send { dst: 1, tag: 7 },
                    Op::Ckpt,
                    Op::Send { dst: 1, tag: 7 },
                    Op::Recv { src: 1 },
                    Op::Recv { src: 1 },
                ],
                vec![
                    Op::Send { dst: 0, tag: 9 },
                    Op::Ckpt,
                    Op::Send { dst: 0, tag: 9 },
                    Op::Recv { src: 0 },
                    Op::Recv { src: 0 },
                ],
            ],
            100_000,
        );
        let out = explore(&cfg);
        assert!(!out.truncated, "cap hit at {}", out.interleavings);
        assert_eq!(out.deadlocks, 0);
        assert!(out.interleavings > 50, "only {}", out.interleavings);
        assert!(
            out.violations.is_empty(),
            "violations: {:#?}",
            out.violations
        );
        assert!(out.interleavings + out.states_pruned > 0);
        assert!(out.transitions >= out.interleavings);
    }

    /// Scheduling freedom really does produce different classifications
    /// (late and intra at least; early when a receive precedes the
    /// receiver's checkpoint site).
    #[test]
    fn interleavings_cover_multiple_message_classes() {
        let cfg = ExploreConfig::new(
            vec![
                vec![
                    Op::Initiate,
                    Op::Recv { src: 1 },
                    Op::Ckpt,
                    Op::Recv { src: 1 },
                ],
                vec![
                    Op::Send { dst: 0, tag: 1 },
                    Op::Ckpt,
                    Op::Send { dst: 0, tag: 1 },
                ],
            ],
            100_000,
        );
        let out = explore(&cfg);
        assert!(out.is_clean(), "violations: {:#?}", out.violations);
        // Re-run collecting classes across all interleavings.
        let mut classes = std::collections::BTreeSet::new();
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        while let Some(path) = stack.pop() {
            let mut vm = Vm::new(&cfg.programs);
            for &r in &path {
                vm.step(r);
            }
            let enabled = vm.enabled_ranks();
            if enabled.is_empty() {
                vm.quiesce();
                for rec in vm.sink.take() {
                    if let TraceEvent::RecvClassified { class, .. } = rec.event
                    {
                        classes.insert(format!("{class:?}"));
                    }
                }
            } else {
                for &r in &enabled {
                    let mut next = path.clone();
                    next.push(r);
                    stack.push(next);
                }
            }
        }
        assert!(
            classes.len() >= 2,
            "schedules produced only {classes:?} — the explorer is not \
             exercising classification diversity"
        );
    }

    /// The cap is reported, never silent.
    #[test]
    fn truncation_is_reported() {
        let cfg = ExploreConfig::new(
            vec![
                vec![Op::Send { dst: 1, tag: 0 }; 4],
                vec![Op::Recv { src: 0 }; 4],
            ],
            3,
        );
        let out = explore(&cfg);
        assert!(out.truncated);
        assert_eq!(out.interleavings, 3);
    }

    /// A receive with no matching send deadlocks that schedule; the
    /// outcome says so.
    #[test]
    fn missing_sender_reports_deadlock() {
        let cfg =
            ExploreConfig::new(vec![vec![Op::Recv { src: 1 }], vec![]], 10);
        let out = explore(&cfg);
        assert_eq!(out.deadlocks, 1);
        assert_eq!(out.interleavings, 1);
    }

    /// A 4-rank ring of worker sends around a checkpoint round: the
    /// workers' steps are pairwise independent, so DPOR must collapse
    /// their relative orders while full enumeration pays for every one.
    fn ring_programs() -> Vec<Vec<Op>> {
        vec![
            vec![Op::Initiate, Op::Ckpt],
            vec![Op::Send { dst: 2, tag: 1 }, Op::Send { dst: 2, tag: 1 }],
            vec![Op::Send { dst: 3, tag: 2 }, Op::Send { dst: 3, tag: 2 }],
            vec![Op::Send { dst: 1, tag: 3 }, Op::Send { dst: 1, tag: 3 }],
        ]
    }

    /// DPOR at 4 ranks: at least 5x fewer interleavings than full
    /// enumeration, with *identical* analyzer-visible coverage — the
    /// canonical signature sets must be equal, not just the verdicts.
    #[test]
    fn dpor_reduces_interleavings_with_equal_coverage() {
        let full = explore(
            &ExploreConfig::new(ring_programs(), 100_000).with_signatures(),
        );
        let dpor = explore(
            &ExploreConfig::new(ring_programs(), 100_000)
                .with_reduction(Reduction::Dpor)
                .with_signatures(),
        );
        assert!(!full.truncated && !dpor.truncated);
        assert!(full.is_clean(), "violations: {:#?}", full.violations);
        assert!(dpor.is_clean(), "violations: {:#?}", dpor.violations);
        assert!(
            full.interleavings >= 5 * dpor.interleavings,
            "reduction too weak: full {} vs dpor {}",
            full.interleavings,
            dpor.interleavings
        );
        assert_eq!(
            full.signatures,
            dpor.signatures,
            "DPOR changed the analyzer-visible coverage (full {} vs dpor \
             {} signatures)",
            full.signatures.len(),
            dpor.signatures.len()
        );
    }

    /// With partial independence *and* real protocol traffic (a
    /// checkpoint round with cross-rank sends), DPOR's verdicts and
    /// signature coverage still match full enumeration exactly.
    #[test]
    fn dpor_matches_full_on_checkpoint_round() {
        let programs = vec![
            vec![Op::Initiate, Op::Ckpt, Op::Recv { src: 1 }],
            vec![Op::Send { dst: 0, tag: 1 }, Op::Ckpt, Op::Recv { src: 2 }],
            vec![Op::Send { dst: 1, tag: 2 }, Op::Ckpt],
        ];
        let full = explore(
            &ExploreConfig::new(programs.clone(), 100_000).with_signatures(),
        );
        let dpor = explore(
            &ExploreConfig::new(programs, 100_000)
                .with_reduction(Reduction::Dpor)
                .with_signatures(),
        );
        assert!(!full.truncated && !dpor.truncated);
        assert_eq!(full.is_clean(), dpor.is_clean());
        assert_eq!(full.deadlocks, dpor.deadlocks);
        assert!(dpor.interleavings <= full.interleavings);
        assert_eq!(full.signatures, dpor.signatures);
    }

    /// Equal state budget, deeper reach: a budget that truncates full
    /// enumeration lets DPOR finish the whole (deeper) schedule space.
    #[test]
    fn dpor_reaches_deeper_at_equal_budget() {
        let budget = 400;
        let full = explore(&ExploreConfig::new(ring_programs(), budget));
        let dpor = explore(
            &ExploreConfig::new(ring_programs(), budget)
                .with_reduction(Reduction::Dpor),
        );
        assert!(
            full.truncated,
            "budget {budget} was meant to truncate full enumeration \
             (got {} interleavings)",
            full.interleavings
        );
        assert!(
            !dpor.truncated,
            "DPOR must finish the space within the same budget (got {})",
            dpor.interleavings
        );
        assert!(dpor.states_pruned > 0 || dpor.interleavings < budget);
    }
}
