//! Library-callable verdicts: the binary's report/exit-code logic as an
//! API.
//!
//! Historically the only way to get `c3verify`'s pass/fail/error
//! three-state answer was to shell out to the binary and inspect its
//! exit status. A [`Verdict`] is that answer as a value: build one from
//! trace files or in-memory records, ask [`Verdict::exit_code`] for the
//! CLI contract (0 clean, 1 violated, 2 error), and render the same
//! per-file output the binary prints. The binary itself is a thin shell
//! around this module, so tests and the `ftfuzz` campaign runner get
//! byte-for-byte the CLI's semantics without spawning a process.

use std::path::Path;

use c3_core::trace::TraceRecord;

use crate::report::Report;

/// Which invariant family to check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// The state invariants I1..I16 + T0 (`c3verify check`).
    Invariants,
    /// The happens-before ordering invariants R0..R6 (`c3verify race`).
    Races,
}

impl CheckKind {
    /// The CLI verb this kind corresponds to.
    pub fn verb(self) -> &'static str {
        match self {
            CheckKind::Invariants => "check",
            CheckKind::Races => "race",
        }
    }

    /// Run this check over in-memory records.
    pub fn run(self, records: &[TraceRecord]) -> Report {
        match self {
            CheckKind::Invariants => crate::analyze(records),
            CheckKind::Races => crate::race_check(records),
        }
    }
}

/// One input's result: the report, or the error that prevented one.
#[derive(Debug)]
pub struct FileVerdict {
    /// The path (or `"<memory>"` for in-process records).
    pub input: String,
    /// The check's report, or a read/decode error.
    pub outcome: Result<Report, String>,
}

/// The aggregate answer over a set of inputs, carrying the exit-code
/// contract of the `c3verify` binary.
#[derive(Debug)]
pub struct Verdict {
    /// Which family of invariants was checked.
    pub kind: CheckKind,
    /// Per-input results, in input order. Evaluation stops at the first
    /// error (matching the CLI), so an errored verdict's last entry is
    /// the error.
    pub files: Vec<FileVerdict>,
}

/// Run `kind` over a set of trace artifact files. Evaluation stops at
/// the first unreadable/undecodable file, as the CLI does.
pub fn verdict<P: AsRef<Path>>(kind: CheckKind, paths: &[P]) -> Verdict {
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let path = p.as_ref();
        let outcome = match kind {
            CheckKind::Invariants => crate::analyze_file(path),
            CheckKind::Races => crate::race_check_file(path),
        };
        let errored = outcome.is_err();
        files.push(FileVerdict {
            input: path.display().to_string(),
            outcome,
        });
        if errored {
            break;
        }
    }
    Verdict { kind, files }
}

/// Run `kind` over in-memory records (a sink snapshot): the single-input
/// verdict with no I/O and hence no error arm.
pub fn verdict_records(kind: CheckKind, records: &[TraceRecord]) -> Verdict {
    Verdict {
        kind,
        files: vec![FileVerdict {
            input: "<memory>".into(),
            outcome: Ok(kind.run(records)),
        }],
    }
}

impl Verdict {
    /// True when every input was readable and every report clean.
    pub fn is_clean(&self) -> bool {
        self.files
            .iter()
            .all(|f| matches!(&f.outcome, Ok(r) if r.is_clean()))
    }

    /// The first I/O or decode error, if any input had one.
    pub fn first_error(&self) -> Option<&str> {
        self.files
            .iter()
            .find_map(|f| f.outcome.as_ref().err().map(String::as_str))
    }

    /// All violations across all readable inputs.
    pub fn violations(&self) -> Vec<&crate::Violation> {
        self.files
            .iter()
            .filter_map(|f| f.outcome.as_ref().ok())
            .flat_map(|r| r.violations.iter())
            .collect()
    }

    /// The binary's exit-status contract: 0 every invariant holds,
    /// 1 some invariant is violated, 2 an input could not be checked.
    pub fn exit_code(&self) -> u8 {
        if self.first_error().is_some() {
            2
        } else if self.is_clean() {
            0
        } else {
            1
        }
    }

    /// Render the reports exactly as the CLI prints them on stdout:
    /// per-file prefixes when checking several files, clean reports
    /// suppressed under `quiet`. Errors are not part of this (the CLI
    /// sends them to stderr); fetch them via [`Verdict::first_error`].
    pub fn render(&self, quiet: bool) -> String {
        let many = self.files.len() > 1;
        let mut out = String::new();
        for f in &self.files {
            if let Ok(report) = &f.outcome {
                if !quiet || !report.is_clean() {
                    if many {
                        out.push_str(&f.input);
                        out.push_str(": ");
                    }
                    out.push_str(&report.render());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c3_core::trace::{encode_trace, TraceEvent};

    fn rec(rank: u32, seq: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            rank,
            attempt: 1,
            incarnation: 0,
            seq,
            event,
        }
    }

    #[test]
    fn records_verdict_matches_report() {
        // An empty trace is vacuously clean under both families.
        for kind in [CheckKind::Invariants, CheckKind::Races] {
            let v = verdict_records(kind, &[]);
            assert!(v.is_clean());
            assert_eq!(v.exit_code(), 0);
            assert!(v.first_error().is_none());
            assert!(v.violations().is_empty());
        }
    }

    #[test]
    fn absurd_rank_trips_t0_instead_of_allocating() {
        // Regression (found fuzzing the CLI with byte flips): a
        // corrupted rank field claimed a ~4-billion-rank world and the
        // checkers sized per-rank state by it — an effective hang.
        // Both families must flag T0 and return promptly.
        let records = vec![rec(
            0xff03_0000,
            1,
            TraceEvent::Send {
                comm: 0,
                dst: 1,
                tag: 0,
                epoch: 0,
                logging: false,
                message_id: 0,
                suppressed: false,
                payload_len: 8,
            },
        )];
        for kind in [CheckKind::Invariants, CheckKind::Races] {
            let v = verdict_records(kind, &records);
            assert_eq!(v.exit_code(), 1, "{kind:?}");
            let viols = v.violations();
            assert_eq!(viols.len(), 1);
            assert_eq!(viols[0].invariant, "T0-well-formed");
            assert!(viols[0].detail.contains("claims"), "{}", viols[0].detail);
        }
    }

    #[test]
    fn file_verdict_covers_all_three_exit_codes() {
        let dir = std::env::temp_dir().join("c3verify-verdict-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Clean file: a lone send violates nothing in `check`.
        let clean = dir.join("clean.c3trace");
        let records = vec![rec(
            0,
            1,
            TraceEvent::Send {
                comm: 0,
                dst: 1,
                tag: 0,
                epoch: 0,
                logging: false,
                message_id: 0,
                suppressed: false,
                payload_len: 8,
            },
        )];
        std::fs::write(&clean, encode_trace(&records)).unwrap();
        // Violated file: a message classified late in epoch 0 — no
        // previous epoch exists, so the analyzer must flag it (I2).
        let bad = dir.join("bad.c3trace");
        let records = vec![rec(
            0,
            1,
            TraceEvent::RecvClassified {
                comm: 0,
                src: 1,
                tag: 0,
                message_id: 9,
                class: c3_core::epoch::MsgClass::Late,
                sender_logging: false,
                receiver_epoch: 0,
                receiver_logging: false,
            },
        )];
        std::fs::write(&bad, encode_trace(&records)).unwrap();
        // Garbage file: wrong magic.
        let garbage = dir.join("garbage.c3trace");
        std::fs::write(&garbage, b"not a trace").unwrap();

        let v = verdict(CheckKind::Invariants, &[&clean]);
        assert_eq!(v.exit_code(), 0);
        assert!(!v.render(false).is_empty());
        assert!(v.render(true).is_empty(), "quiet hides clean reports");

        let v = verdict(CheckKind::Invariants, &[&clean, &bad]);
        assert_eq!(v.exit_code(), 1);
        assert!(!v.violations().is_empty());
        let out = v.render(true);
        assert!(
            out.contains("bad.c3trace: "),
            "multi-file render keeps the prefix: {out}"
        );

        let v = verdict(CheckKind::Invariants, &[&garbage, &clean]);
        assert_eq!(v.exit_code(), 2);
        assert!(v.first_error().unwrap().contains("garbage.c3trace"));
        assert_eq!(v.files.len(), 1, "evaluation stops at the error");
        std::fs::remove_dir_all(&dir).ok();
    }
}
