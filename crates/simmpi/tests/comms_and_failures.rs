//! Communicator creation and the abort / fail-stop machinery.

use std::time::Duration;

use simmpi::{JobControl, MpiError, ReduceOp, World};

#[test]
fn comm_dup_isolates_traffic() {
    World::run(2, |mpi| {
        let world = mpi.world();
        let dup = mpi.comm_dup(&world)?;
        assert_eq!(dup.size(), 2);
        assert_ne!(dup.context(), world.context());
        if mpi.rank() == 0 {
            // Same (dst, tag) on both communicators; contexts keep them apart.
            mpi.send(&world, 1, 5, b"world")?;
            mpi.send(&dup, 1, 5, b"dup")?;
        } else {
            // Receive in the opposite order of sending.
            let d = mpi.recv(&dup, 0, 5)?;
            let w = mpi.recv(&world, 0, 5)?;
            assert_eq!(&d.payload[..], b"dup");
            assert_eq!(&w.payload[..], b"world");
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn repeated_dups_get_distinct_contexts() {
    World::run(3, |mpi| {
        let world = mpi.world();
        let a = mpi.comm_dup(&world)?;
        let b = mpi.comm_dup(&world)?;
        let c = mpi.comm_dup(&a)?;
        let mut ctxs =
            [world.context(), a.context(), b.context(), c.context()];
        ctxs.sort();
        ctxs.windows(2).for_each(|w| assert_ne!(w[0], w[1]));
        // Collectives work on dups.
        let s = mpi.allreduce_t::<u64>(&c, ReduceOp::Sum, &[1])?;
        assert_eq!(s, vec![3]);
        Ok(())
    })
    .unwrap();
}

#[test]
fn comm_split_partitions_by_color() {
    World::run(6, |mpi| {
        let world = mpi.world();
        let me = mpi.rank();
        let color = (me % 2) as i32;
        let sub = mpi.comm_split(&world, color, me as i32)?.unwrap();
        assert_eq!(sub.size(), 3);
        // Even ranks {0,2,4}; odd {1,3,5}; ordered by key = old rank.
        let expected: Vec<usize> =
            (0..6).filter(|r| r % 2 == me % 2).collect();
        assert_eq!(sub.members(), &expected[..]);
        assert_eq!(sub.rank(), me / 2);
        // Collectives within the half only.
        let s = mpi.allreduce_t::<u64>(&sub, ReduceOp::Sum, &[me as u64])?;
        let expect: u64 = expected.iter().map(|&r| r as u64).sum();
        assert_eq!(s, vec![expect]);
        Ok(())
    })
    .unwrap();
}

#[test]
fn comm_split_key_controls_ordering() {
    World::run(4, |mpi| {
        let world = mpi.world();
        let me = mpi.rank();
        // Everyone in one color; keys reverse the order.
        let sub = mpi.comm_split(&world, 0, -(me as i32))?.unwrap();
        assert_eq!(sub.members(), &[3, 2, 1, 0]);
        assert_eq!(sub.rank(), 3 - me);
        Ok(())
    })
    .unwrap();
}

#[test]
fn comm_split_negative_color_opts_out() {
    World::run(4, |mpi| {
        let world = mpi.world();
        let me = mpi.rank();
        let color = if me == 0 { -1 } else { 0 };
        let sub = mpi.comm_split(&world, color, 0)?;
        if me == 0 {
            assert!(sub.is_none());
        } else {
            let sub = sub.unwrap();
            assert_eq!(sub.members(), &[1, 2, 3]);
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn abort_unblocks_a_stuck_receive() {
    let control = JobControl::new(2);
    let ctl = control.clone();
    let results = World::run_collect(2, control, |mpi| -> Result<(), _> {
        let comm = mpi.world();
        if mpi.rank() == 0 {
            // Blocks forever: nobody ever sends tag 99.
            let r = mpi.recv(&comm, 1, 99);
            assert_eq!(r.unwrap_err(), MpiError::Aborted);
            Err(MpiError::Aborted)
        } else {
            // Simulate the failure detector firing after a moment.
            std::thread::sleep(Duration::from_millis(20));
            ctl.abort();
            Err(MpiError::Aborted)
        }
    });
    assert_eq!(results[0].as_ref().unwrap_err(), &MpiError::Aborted);
    assert_eq!(results[1].as_ref().unwrap_err(), &MpiError::Aborted);
}

#[test]
fn fail_stop_silences_only_the_failed_rank() {
    let control = JobControl::new(2);
    let ctl = control.clone();
    let results = World::run_collect(2, control, |mpi| {
        let comm = mpi.world();
        if mpi.rank() == 0 {
            ctl.fail_rank(0);
            // The very next MPI call observes the stop.
            match mpi.send(&comm, 1, 1, b"never") {
                Err(MpiError::FailStop) => Err(MpiError::FailStop),
                other => panic!("expected FailStop, got {other:?}"),
            }
        } else {
            // Rank 1 does local work and finishes fine.
            Ok(41 + 1)
        }
    });
    assert_eq!(results[0].as_ref().unwrap_err(), &MpiError::FailStop);
    assert_eq!(*results[1].as_ref().unwrap(), 42);
}

#[test]
fn abort_unblocks_a_stuck_collective() {
    let control = JobControl::new(3);
    let ctl = control.clone();
    let results = World::run_collect(3, control, |mpi| -> Result<(), _> {
        let comm = mpi.world();
        match mpi.rank() {
            0 => {
                // Never joins the barrier; fail-stops instead.
                ctl.fail_rank(0);
                std::thread::sleep(Duration::from_millis(20));
                ctl.abort(); // the detector notices and aborts the attempt
                Err(MpiError::FailStop)
            }
            _ => {
                let r = mpi.barrier(&comm);
                assert_eq!(r.unwrap_err(), MpiError::Aborted);
                Err(MpiError::Aborted)
            }
        }
    });
    assert!(results[1].is_err());
    assert!(results[2].is_err());
}

#[test]
fn messages_to_failed_rank_are_dropped_not_fatal() {
    let control = JobControl::new(2);
    let ctl = control.clone();
    let results = World::run_collect(2, control, |mpi| {
        let comm = mpi.world();
        if mpi.rank() == 1 {
            ctl.fail_rank(1);
            Err(MpiError::FailStop)
        } else {
            // Give rank 1 a moment to die, then send into the void; the
            // reliable transport buffers/drops without error.
            std::thread::sleep(Duration::from_millis(20));
            mpi.send(&comm, 1, 1, b"void")?;
            Ok(())
        }
    });
    assert!(results[0].is_ok());
    assert!(results[1].is_err());
}

#[test]
fn op_count_advances() {
    World::run(2, |mpi| {
        let comm = mpi.world();
        let start = mpi.op_count();
        if mpi.rank() == 0 {
            mpi.send(&comm, 1, 1, b"x")?;
            mpi.send(&comm, 1, 1, b"y")?;
        } else {
            mpi.recv(&comm, 0, 1)?;
            mpi.recv(&comm, 0, 1)?;
        }
        assert!(mpi.op_count() >= start + 2);
        Ok(())
    })
    .unwrap();
}
