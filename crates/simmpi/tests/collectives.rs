//! Collective operations across real rank threads, at several job sizes
//! (including non-powers of two, which exercise the tree edge cases).

use bytes::Bytes;
use simmpi::{DType, MpiError, ReduceOp, World};

const SIZES: &[usize] = &[1, 2, 3, 4, 7, 8];

#[test]
fn barrier_all_sizes() {
    for &n in SIZES {
        World::run(n, |mpi| {
            let comm = mpi.world();
            for _ in 0..5 {
                mpi.barrier(&comm)?;
            }
            Ok(())
        })
        .unwrap();
    }
}

#[test]
fn bcast_from_every_root() {
    for &n in SIZES {
        for root in 0..n {
            World::run(n, |mpi| {
                let comm = mpi.world();
                let data = if mpi.rank() == root {
                    Bytes::from(vec![root as u8; 17])
                } else {
                    Bytes::new()
                };
                let out = mpi.bcast(&comm, root, data)?;
                assert_eq!(&out[..], &vec![root as u8; 17][..]);
                Ok(())
            })
            .unwrap();
        }
    }
}

#[test]
fn bcast_typed() {
    World::run(4, |mpi| {
        let comm = mpi.world();
        let data = if mpi.rank() == 2 {
            vec![3.5f64, -1.0]
        } else {
            vec![]
        };
        let out = mpi.bcast_t::<f64>(&comm, 2, &data)?;
        assert_eq!(out, vec![3.5, -1.0]);
        Ok(())
    })
    .unwrap();
}

#[test]
fn gather_ragged_chunks() {
    World::run(4, |mpi| {
        let comm = mpi.world();
        let me = mpi.rank();
        let mine = vec![me as u8; me + 1]; // ragged: rank r sends r+1 bytes
        let out = mpi.gather(&comm, 1, &mine)?;
        if me == 1 {
            let chunks = out.unwrap();
            for (r, c) in chunks.iter().enumerate() {
                assert_eq!(c, &vec![r as u8; r + 1]);
            }
        } else {
            assert!(out.is_none());
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn allgather_all_sizes() {
    for &n in SIZES {
        World::run(n, |mpi| {
            let comm = mpi.world();
            let me = mpi.rank();
            let chunks = mpi.allgather(&comm, &[me as u8, 0xFF])?;
            assert_eq!(chunks.len(), n);
            for (r, c) in chunks.iter().enumerate() {
                assert_eq!(c, &vec![r as u8, 0xFF]);
            }
            Ok(())
        })
        .unwrap();
    }
}

#[test]
fn allgather_flat_typed_matches_rank_order() {
    World::run(3, |mpi| {
        let comm = mpi.world();
        let me = mpi.rank() as u64;
        let flat =
            mpi.allgather_flat_t::<u64>(&comm, &[me * 10, me * 10 + 1])?;
        assert_eq!(flat, vec![0, 1, 10, 11, 20, 21]);
        Ok(())
    })
    .unwrap();
}

#[test]
fn scatter_distributes_root_chunks() {
    World::run(4, |mpi| {
        let comm = mpi.world();
        let me = mpi.rank();
        let chunks: Option<Vec<Bytes>> = if me == 0 {
            Some((0..4).map(|r| Bytes::from(vec![r as u8; 3])).collect())
        } else {
            None
        };
        let mine = mpi.scatter(&comm, 0, chunks.as_deref())?;
        assert_eq!(mine, vec![me as u8; 3]);
        Ok(())
    })
    .unwrap();
}

#[test]
fn scatter_wrong_chunk_count_errors_at_root() {
    World::run(2, |mpi| {
        let comm = mpi.world();
        if mpi.rank() == 0 {
            // Wrong: 3 chunks for 2 ranks.
            let chunks = vec![Bytes::from_static(&[1u8]); 3];
            match mpi.scatter(&comm, 0, Some(&chunks)) {
                Err(MpiError::CollectiveMismatch(_)) => {}
                other => panic!("expected mismatch, got {other:?}"),
            }
            // Unblock rank 1, which is waiting for its chunk.
            let good =
                vec![Bytes::from_static(&[7u8]), Bytes::from_static(&[8u8])];
            let mine = mpi.scatter(&comm, 0, Some(&good))?;
            assert_eq!(mine, vec![7]);
        } else {
            let mine = mpi.scatter(&comm, 0, None)?;
            assert_eq!(mine, vec![8]);
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn reduce_sum_at_root() {
    for &n in SIZES {
        World::run(n, |mpi| {
            let comm = mpi.world();
            let me = mpi.rank() as i64;
            let out =
                mpi.reduce_t::<i64>(&comm, 0, ReduceOp::Sum, &[me, 1])?;
            if mpi.rank() == 0 {
                let expect: i64 = (0..n as i64).sum();
                assert_eq!(out.unwrap(), vec![expect, n as i64]);
            } else {
                assert!(out.is_none());
            }
            Ok(())
        })
        .unwrap();
    }
}

#[test]
fn allreduce_ops() {
    World::run(5, |mpi| {
        let comm = mpi.world();
        let me = mpi.rank() as i64;
        let sum = mpi.allreduce_t::<i64>(&comm, ReduceOp::Sum, &[me])?;
        assert_eq!(sum, vec![1 + 2 + 3 + 4]);
        let min = mpi.allreduce_t::<i64>(&comm, ReduceOp::Min, &[me])?;
        assert_eq!(min, vec![0]);
        let max = mpi.allreduce_t::<i64>(&comm, ReduceOp::Max, &[me])?;
        assert_eq!(max, vec![4]);
        Ok(())
    })
    .unwrap();
}

#[test]
fn allreduce_f64_is_deterministic_across_calls() {
    // Combination order is ascending rank, so repeated calls agree exactly.
    World::run(4, |mpi| {
        let comm = mpi.world();
        let me = mpi.rank();
        let x = [0.1 * (me as f64 + 1.0), 7.25];
        let a = mpi.allreduce_t::<f64>(&comm, ReduceOp::Sum, &x)?;
        let b = mpi.allreduce_t::<f64>(&comm, ReduceOp::Sum, &x)?;
        assert_eq!(a, b);
        assert!((a[0] - 1.0).abs() < 1e-12);
        assert_eq!(a[1], 29.0);
        Ok(())
    })
    .unwrap();
}

#[test]
fn allreduce_bytes_interface() {
    World::run(3, |mpi| {
        let comm = mpi.world();
        let me = mpi.rank() as u64;
        let bytes = me.to_le_bytes();
        let out =
            mpi.allreduce_bytes(&comm, ReduceOp::Sum, DType::U64, &bytes)?;
        assert_eq!(u64::from_le_bytes(out[..8].try_into().unwrap()), 3);
        Ok(())
    })
    .unwrap();
}

#[test]
fn scan_inclusive_prefix_sums() {
    World::run(5, |mpi| {
        let comm = mpi.world();
        let me = mpi.rank() as i64;
        let out = mpi.scan_t::<i64>(&comm, ReduceOp::Sum, &[me, 1])?;
        let expect: i64 = (0..=me).sum();
        assert_eq!(out, vec![expect, me + 1]);
        Ok(())
    })
    .unwrap();
}

#[test]
fn alltoall_personalized_exchange() {
    for &n in &[2usize, 3, 5] {
        World::run(n, |mpi| {
            let comm = mpi.world();
            let me = mpi.rank();
            // chunk for dst d: [me, d]
            let chunks: Vec<Bytes> = (0..n)
                .map(|d| Bytes::from(vec![me as u8, d as u8]))
                .collect();
            let out = mpi.alltoall(&comm, &chunks)?;
            for (s, c) in out.iter().enumerate() {
                assert_eq!(c, &vec![s as u8, me as u8]);
            }
            Ok(())
        })
        .unwrap();
    }
}

#[test]
fn consecutive_collectives_do_not_cross_talk() {
    World::run(4, |mpi| {
        let comm = mpi.world();
        for round in 0..20u64 {
            let s = mpi.allreduce_t::<u64>(&comm, ReduceOp::Sum, &[round])?;
            assert_eq!(s, vec![4 * round]);
            let g = mpi.allgather(&comm, &[mpi.rank() as u8])?;
            assert_eq!(g.len(), 4);
            mpi.barrier(&comm)?;
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn collectives_do_not_disturb_pending_p2p_receives() {
    // A wildcard application receive must never match collective internals.
    World::run(2, |mpi| {
        let comm = mpi.world();
        if mpi.rank() == 0 {
            let mut req =
                mpi.irecv(&comm, simmpi::ANY_SOURCE, simmpi::ANY_TAG)?;
            // Run a pile of collectives while the wildcard recv is posted.
            for _ in 0..5 {
                mpi.barrier(&comm)?;
                mpi.allreduce_t::<u64>(&comm, ReduceOp::Sum, &[1])?;
            }
            // Only now does rank 1 send the real application message.
            let msg = mpi.wait_recv(&comm, &mut req)?;
            assert_eq!(&msg.payload[..], b"app");
        } else {
            for _ in 0..5 {
                mpi.barrier(&comm)?;
                mpi.allreduce_t::<u64>(&comm, ReduceOp::Sum, &[1])?;
            }
            mpi.send(&comm, 0, 0, b"app")?;
        }
        Ok(())
    })
    .unwrap();
}
