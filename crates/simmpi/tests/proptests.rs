//! Property tests: the matching engine preserves MPI semantics for
//! arbitrary interleavings of posts and deliveries, the reliable-delivery
//! sublayer masks arbitrary lossy-wire conditions, and reductions agree
//! with a sequential model.

use std::time::{Duration, Instant};

use bytes::Bytes;
use proptest::prelude::*;

use simmpi::matching::{MatchEngine, PostOutcome};
use simmpi::netsim::NetEndpoint;
use simmpi::transport::Fabric;
use simmpi::{DType, JobControl, Message, MpiType, NetCond, ReduceOp};

fn msg(src: usize, tag: i32, uid: u64) -> Message {
    Message {
        src,
        dst: 0,
        context: 1,
        tag,
        header: simmpi::HeaderBytes::empty(),
        payload: Bytes::copy_from_slice(&uid.to_le_bytes()),
        seq: uid,
    }
}

fn uid_of(m: &Message) -> u64 {
    u64::from_le_bytes(m.payload[..8].try_into().unwrap())
}

proptest! {
    /// Every message is delivered exactly once, and per-(src, tag) channel
    /// order is preserved (non-overtaking), no matter how posts and
    /// arrivals interleave.
    #[test]
    fn matching_is_exactly_once_and_non_overtaking(
        // Each event: true = deliver next message, false = post a recv;
        // recvs use (src, tag) patterns drawn from a small space, with
        // src=3 meaning ANY and tag=3 meaning ANY.
        events in proptest::collection::vec(
            (any::<bool>(), 0usize..4, 0i32..4, 0usize..3, 0i32..3),
            1..80,
        ),
    ) {
        let mut eng = MatchEngine::new();
        let mut uid = 0u64;
        let mut sent: Vec<(usize, i32, u64)> = Vec::new();
        let mut received: Vec<(usize, i32, u64)> = Vec::new();
        let mut pending = Vec::new();

        for (is_deliver, psrc, ptag, msrc, mtag) in events {
            if is_deliver {
                uid += 1;
                sent.push((msrc, mtag, uid));
                if let Some((_id, m)) = eng.deliver(msg(msrc, mtag, uid)) {
                    received.push((m.src, m.tag, uid_of(&m)));
                }
            } else {
                let src = (psrc < 3).then_some(psrc);
                let tag = (ptag < 3).then_some(ptag);
                match eng.post(src, 1, tag) {
                    PostOutcome::Matched(m) => {
                        received.push((m.src, m.tag, uid_of(&m)));
                    }
                    PostOutcome::Pending(id) => pending.push(id),
                }
            }
        }

        // Exactly-once: no duplicates among received uids.
        let mut uids: Vec<u64> = received.iter().map(|r| r.2).collect();
        uids.sort_unstable();
        uids.dedup();
        prop_assert_eq!(uids.len(), received.len(), "duplicate delivery");

        // Every received uid was sent with matching (src, tag).
        for &(src, tag, uid) in &received {
            prop_assert!(sent.contains(&(src, tag, uid)));
        }

        // Non-overtaking per (src, tag) channel: received uids from one
        // channel appear in send order.
        for s in 0..3usize {
            for t in 0..3i32 {
                let got: Vec<u64> = received
                    .iter()
                    .filter(|r| r.0 == s && r.1 == t)
                    .map(|r| r.2)
                    .collect();
                let mut sorted = got.clone();
                sorted.sort_unstable();
                prop_assert_eq!(got, sorted, "channel ({}, {}) overtaken", s, t);
            }
        }

        // Conservation: everything sent is either received, still
        // unexpected, or will match a pending recv later.
        prop_assert_eq!(
            received.len() + eng.unexpected_len()
                + (sent.len() - received.len() - eng.unexpected_len()),
            sent.len()
        );
    }

    /// The lossy-wire companion of `matching_is_exactly_once_and_non_
    /// overtaking`: under seeded sweeps of drop (≤ 10%), duplication,
    /// bounded reorder, and delay/jitter, delivery *through the
    /// reliable-delivery sublayer* is exactly-once and per-(src, dst)
    /// FIFO — which implies pairwise non-overtaking for every
    /// (src, dst, comm, tag) channel the matcher sees above it.
    ///
    /// Two sender endpoints feed one receiver over the wire on a virtual
    /// clock, so retransmission timers run deterministically and the
    /// whole schedule is a pure function of the drawn inputs.
    #[test]
    fn lossy_wire_delivery_is_exactly_once_and_non_overtaking(
        seed in any::<u64>(),
        drop_ppm in 1u32..=100_000,
        dup_ppm in 0u32..=50_000,
        reorder_ppm in 0u32..=200_000,
        delay_ppm in 0u32..=200_000,
        sends in proptest::collection::vec((0usize..2, 0i32..3), 1..60),
    ) {
        let cond = NetCond {
            seed,
            drop_ppm,
            dup_ppm,
            reorder_ppm,
            reorder_span: 3,
            delay_ppm,
            delay_us: 100,
            jitter_us: 150,
            ..NetCond::perfect()
        };
        let control = JobControl::new(3);
        let (fabric, rx) = Fabric::new_with_net(3, control, cond.clone());
        let mut senders = [
            NetEndpoint::new(0, 3, cond.retransmit.clone()),
            NetEndpoint::new(1, 3, cond.retransmit.clone()),
        ];
        let mut receiver = NetEndpoint::new(2, 3, cond.retransmit.clone());

        let start = Instant::now();
        let mut uid = 0u64;
        let mut sent_per_src: [Vec<(i32, u64)>; 2] = [Vec::new(), Vec::new()];
        for &(src, tag) in &sends {
            uid += 1;
            sent_per_src[src].push((tag, uid));
            let m = Message {
                src,
                dst: 2,
                context: 1,
                tag,
                header: simmpi::HeaderBytes::empty(),
                payload: Bytes::copy_from_slice(&uid.to_le_bytes()),
                seq: uid,
            };
            senders[src].send(&fabric, m, start).unwrap();
        }

        // Shuttle on the virtual clock until both senders drain.
        let mut delivered: Vec<Message> = Vec::new();
        let mut t = 0u64;
        while !(senders[0].all_acked() && senders[1].all_acked()) {
            t += 100;
            prop_assert!(t < 120_000_000, "sublayer did not converge");
            let now = start + Duration::from_micros(t);
            for ep in senders.iter_mut() {
                ep.poll(&fabric, now).unwrap();
            }
            receiver.poll(&fabric, now).unwrap();
            while let Ok(f) = rx[2].try_recv() {
                delivered.extend(receiver.on_frame(&fabric, f, now));
            }
            for (r, ep) in rx.iter().zip(senders.iter_mut()).take(2) {
                while let Ok(f) = r.try_recv() {
                    ep.on_frame(&fabric, f, now);
                }
            }
        }

        // Exactly-once and per-(src, dst) FIFO: each sender's messages
        // arrive exactly in send order — hence every (src, dst, comm,
        // tag) sub-channel is non-overtaking.
        for (src, sent) in sent_per_src.iter().enumerate() {
            let got: Vec<(i32, u64)> = delivered
                .iter()
                .filter(|m| m.src == src)
                .map(|m| {
                    (m.tag, u64::from_le_bytes(m.payload[..8].try_into().unwrap()))
                })
                .collect();
            prop_assert_eq!(
                &got,
                sent,
                "src {} channel corrupted under {:?}",
                src,
                cond
            );
        }
    }

    /// Element-wise reductions match a sequential fold for any operand
    /// list (integer ops, exact).
    #[test]
    fn reduce_ops_match_sequential_fold(
        contributions in proptest::collection::vec(
            proptest::collection::vec(any::<i64>(), 4..5),
            1..8,
        ),
        op_idx in 0usize..4,
    ) {
        let op = [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min, ReduceOp::Max][op_idx];
        let mut acc = i64::slice_to_bytes(&contributions[0]);
        for c in &contributions[1..] {
            op.combine(DType::I64, &mut acc, &i64::slice_to_bytes(c)).unwrap();
        }
        let got = i64::bytes_to_vec(&acc).unwrap();

        let mut expect = contributions[0].clone();
        for c in &contributions[1..] {
            for (e, &v) in expect.iter_mut().zip(c.iter()) {
                *e = match op {
                    ReduceOp::Sum => e.wrapping_add(v),
                    ReduceOp::Prod => e.wrapping_mul(v),
                    ReduceOp::Min => (*e).min(v),
                    ReduceOp::Max => (*e).max(v),
                    _ => unreachable!(),
                };
            }
        }
        prop_assert_eq!(got, expect);
    }

    /// Typed slice encode/decode is the identity for every dtype.
    #[test]
    fn typed_slices_round_trip(
        f64s in proptest::collection::vec(any::<f64>(), 0..64),
        i32s in proptest::collection::vec(any::<i32>(), 0..64),
        u64s in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let enc = f64::slice_to_bytes(&f64s);
        let back = f64::bytes_to_vec(&enc).unwrap();
        prop_assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            f64s.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        prop_assert_eq!(i32::bytes_to_vec(&i32::slice_to_bytes(&i32s)).unwrap(), i32s);
        prop_assert_eq!(u64::bytes_to_vec(&u64::slice_to_bytes(&u64s)).unwrap(), u64s);
    }
}
