//! Property tests: the matching engine preserves MPI semantics for
//! arbitrary interleavings of posts and deliveries, and reductions agree
//! with a sequential model.

use bytes::Bytes;
use proptest::prelude::*;

use simmpi::matching::{MatchEngine, PostOutcome};
use simmpi::{DType, Message, MpiType, ReduceOp};

fn msg(src: usize, tag: i32, uid: u64) -> Message {
    Message {
        src,
        dst: 0,
        context: 1,
        tag,
        payload: Bytes::copy_from_slice(&uid.to_le_bytes()),
        seq: uid,
    }
}

fn uid_of(m: &Message) -> u64 {
    u64::from_le_bytes(m.payload[..8].try_into().unwrap())
}

proptest! {
    /// Every message is delivered exactly once, and per-(src, tag) channel
    /// order is preserved (non-overtaking), no matter how posts and
    /// arrivals interleave.
    #[test]
    fn matching_is_exactly_once_and_non_overtaking(
        // Each event: true = deliver next message, false = post a recv;
        // recvs use (src, tag) patterns drawn from a small space, with
        // src=3 meaning ANY and tag=3 meaning ANY.
        events in proptest::collection::vec(
            (any::<bool>(), 0usize..4, 0i32..4, 0usize..3, 0i32..3),
            1..80,
        ),
    ) {
        let mut eng = MatchEngine::new();
        let mut uid = 0u64;
        let mut sent: Vec<(usize, i32, u64)> = Vec::new();
        let mut received: Vec<(usize, i32, u64)> = Vec::new();
        let mut pending = Vec::new();

        for (is_deliver, psrc, ptag, msrc, mtag) in events {
            if is_deliver {
                uid += 1;
                sent.push((msrc, mtag, uid));
                if let Some((_id, m)) = eng.deliver(msg(msrc, mtag, uid)) {
                    received.push((m.src, m.tag, uid_of(&m)));
                }
            } else {
                let src = (psrc < 3).then_some(psrc);
                let tag = (ptag < 3).then_some(ptag);
                match eng.post(src, 1, tag) {
                    PostOutcome::Matched(m) => {
                        received.push((m.src, m.tag, uid_of(&m)));
                    }
                    PostOutcome::Pending(id) => pending.push(id),
                }
            }
        }

        // Exactly-once: no duplicates among received uids.
        let mut uids: Vec<u64> = received.iter().map(|r| r.2).collect();
        uids.sort_unstable();
        uids.dedup();
        prop_assert_eq!(uids.len(), received.len(), "duplicate delivery");

        // Every received uid was sent with matching (src, tag).
        for &(src, tag, uid) in &received {
            prop_assert!(sent.contains(&(src, tag, uid)));
        }

        // Non-overtaking per (src, tag) channel: received uids from one
        // channel appear in send order.
        for s in 0..3usize {
            for t in 0..3i32 {
                let got: Vec<u64> = received
                    .iter()
                    .filter(|r| r.0 == s && r.1 == t)
                    .map(|r| r.2)
                    .collect();
                let mut sorted = got.clone();
                sorted.sort_unstable();
                prop_assert_eq!(got, sorted, "channel ({}, {}) overtaken", s, t);
            }
        }

        // Conservation: everything sent is either received, still
        // unexpected, or will match a pending recv later.
        prop_assert_eq!(
            received.len() + eng.unexpected_len()
                + (sent.len() - received.len() - eng.unexpected_len()),
            sent.len()
        );
    }

    /// Element-wise reductions match a sequential fold for any operand
    /// list (integer ops, exact).
    #[test]
    fn reduce_ops_match_sequential_fold(
        contributions in proptest::collection::vec(
            proptest::collection::vec(any::<i64>(), 4..5),
            1..8,
        ),
        op_idx in 0usize..4,
    ) {
        let op = [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min, ReduceOp::Max][op_idx];
        let mut acc = i64::slice_to_bytes(&contributions[0]);
        for c in &contributions[1..] {
            op.combine(DType::I64, &mut acc, &i64::slice_to_bytes(c)).unwrap();
        }
        let got = i64::bytes_to_vec(&acc).unwrap();

        let mut expect = contributions[0].clone();
        for c in &contributions[1..] {
            for (e, &v) in expect.iter_mut().zip(c.iter()) {
                *e = match op {
                    ReduceOp::Sum => e.wrapping_add(v),
                    ReduceOp::Prod => e.wrapping_mul(v),
                    ReduceOp::Min => (*e).min(v),
                    ReduceOp::Max => (*e).max(v),
                    _ => unreachable!(),
                };
            }
        }
        prop_assert_eq!(got, expect);
    }

    /// Typed slice encode/decode is the identity for every dtype.
    #[test]
    fn typed_slices_round_trip(
        f64s in proptest::collection::vec(any::<f64>(), 0..64),
        i32s in proptest::collection::vec(any::<i32>(), 0..64),
        u64s in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let enc = f64::slice_to_bytes(&f64s);
        let back = f64::bytes_to_vec(&enc).unwrap();
        prop_assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            f64s.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        prop_assert_eq!(i32::bytes_to_vec(&i32::slice_to_bytes(&i32s)).unwrap(), i32s);
        prop_assert_eq!(u64::bytes_to_vec(&u64::slice_to_bytes(&u64s)).unwrap(), u64s);
    }
}
