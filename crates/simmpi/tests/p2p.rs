//! Point-to-point semantics across real rank threads.

use bytes::Bytes;
use simmpi::{MpiError, World, ANY_SOURCE, ANY_TAG};

#[test]
fn ping_pong() {
    World::run(2, |mpi| {
        let comm = mpi.world();
        if mpi.rank() == 0 {
            mpi.send(&comm, 1, 7, b"ping")?;
            let msg = mpi.recv(&comm, 1, 8)?;
            assert_eq!(&msg.payload[..], b"pong");
            assert_eq!(msg.src, 1);
            assert_eq!(msg.tag, 8);
        } else {
            let msg = mpi.recv(&comm, 0, 7)?;
            assert_eq!(&msg.payload[..], b"ping");
            mpi.send(&comm, 0, 8, b"pong")?;
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn typed_send_recv() {
    World::run(2, |mpi| {
        let comm = mpi.world();
        if mpi.rank() == 0 {
            mpi.send_t::<f64>(&comm, 1, 1, &[1.5, -2.5, 3.25])?;
        } else {
            let v = mpi.recv_t::<f64>(&comm, 0, 1)?;
            assert_eq!(v, vec![1.5, -2.5, 3.25]);
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn tag_matching_out_of_send_order() {
    // Receiver takes tag 2 before tag 1 although they were sent 1-then-2:
    // the application-level non-FIFO behaviour of Section 3.3.
    World::run(2, |mpi| {
        let comm = mpi.world();
        if mpi.rank() == 0 {
            mpi.send(&comm, 1, 1, b"first")?;
            mpi.send(&comm, 1, 2, b"second")?;
        } else {
            let second = mpi.recv(&comm, 0, 2)?;
            let first = mpi.recv(&comm, 0, 1)?;
            assert_eq!(&second.payload[..], b"second");
            assert_eq!(&first.payload[..], b"first");
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn any_source_any_tag() {
    World::run(4, |mpi| {
        let comm = mpi.world();
        if mpi.rank() == 0 {
            let mut seen = vec![false; 4];
            for _ in 0..3 {
                let msg = mpi.recv(&comm, ANY_SOURCE, ANY_TAG)?;
                assert_eq!(msg.tag, 100 + msg.src as i32);
                assert!(!seen[msg.src]);
                seen[msg.src] = true;
            }
            assert_eq!(seen, vec![false, true, true, true]);
        } else {
            let me = mpi.rank();
            mpi.send(&comm, 0, 100 + me as i32, &[me as u8])?;
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn nonblocking_requests_complete_out_of_order() {
    World::run(2, |mpi| {
        let comm = mpi.world();
        if mpi.rank() == 0 {
            // Post both receives up front, then wait in reverse.
            let mut r1 = mpi.irecv(&comm, 1, 1)?;
            let mut r2 = mpi.irecv(&comm, 1, 2)?;
            let m2 = mpi.wait_recv(&comm, &mut r2)?;
            let m1 = mpi.wait_recv(&comm, &mut r1)?;
            assert_eq!(&m1.payload[..], b"a");
            assert_eq!(&m2.payload[..], b"b");
        } else {
            mpi.send(&comm, 0, 1, b"a")?;
            mpi.send(&comm, 0, 2, b"b")?;
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn waitany_returns_a_ready_request() {
    World::run(2, |mpi| {
        let comm = mpi.world();
        if mpi.rank() == 0 {
            let mut reqs =
                vec![mpi.irecv(&comm, 1, 10)?, mpi.irecv(&comm, 1, 11)?];
            let (idx, msg) = mpi.waitany(&comm, &mut reqs)?;
            let msg = msg.unwrap();
            assert_eq!(idx, 1, "only tag 11 was sent");
            assert_eq!(&msg.payload[..], b"only");
            // The other request is still pending; cancel it.
            mpi.cancel(&mut reqs[0])?;
        } else {
            mpi.send(&comm, 0, 11, b"only")?;
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn double_wait_is_an_error() {
    World::run(2, |mpi| {
        let comm = mpi.world();
        if mpi.rank() == 0 {
            let mut req = mpi.irecv(&comm, 1, 1)?;
            mpi.wait_recv(&comm, &mut req)?;
            match mpi.wait(&comm, &mut req) {
                Err(MpiError::BadRequest(_)) => {}
                other => panic!("expected BadRequest, got {other:?}"),
            }
        } else {
            mpi.send(&comm, 0, 1, b"x")?;
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn test_polls_without_blocking() {
    World::run(2, |mpi| {
        let comm = mpi.world();
        if mpi.rank() == 0 {
            let mut req = mpi.irecv(&comm, 1, 1)?;
            // Eventually the message arrives; poll until test says ready.
            while !mpi.test(&mut req)? {
                std::thread::yield_now();
            }
            let msg = mpi.wait_recv(&comm, &mut req)?;
            assert_eq!(&msg.payload[..], b"polled");
        } else {
            mpi.send(&comm, 0, 1, b"polled")?;
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn sendrecv_halo_exchange_ring() {
    let n = 5;
    World::run(n, |mpi| {
        let comm = mpi.world();
        let me = mpi.rank();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let msg = mpi.sendrecv(&comm, right, 3, &[me as u8], left, 3)?;
        assert_eq!(msg.src, left);
        assert_eq!(&msg.payload[..], &[left as u8]);
        Ok(())
    })
    .unwrap();
}

#[test]
fn iprobe_sees_pending_message() {
    World::run(2, |mpi| {
        let comm = mpi.world();
        if mpi.rank() == 0 {
            loop {
                if let Some((src, tag, len)) = mpi.iprobe(&comm, 1, 9)? {
                    assert_eq!((src, tag, len), (1, 9, 4));
                    break;
                }
                std::thread::yield_now();
            }
            let msg = mpi.recv(&comm, 1, 9)?;
            assert_eq!(&msg.payload[..], b"prob");
        } else {
            mpi.send(&comm, 0, 9, b"prob")?;
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn large_payload_round_trip() {
    World::run(2, |mpi| {
        let comm = mpi.world();
        let big: Vec<u8> =
            (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        if mpi.rank() == 0 {
            mpi.send_bytes(&comm, 1, 1, Bytes::from(big.clone()))?;
        } else {
            let msg = mpi.recv(&comm, 0, 1)?;
            assert_eq!(msg.payload.len(), big.len());
            assert_eq!(&msg.payload[..], &big[..]);
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn self_send_works() {
    World::run(1, |mpi| {
        let comm = mpi.world();
        mpi.send(&comm, 0, 1, b"me")?;
        let msg = mpi.recv(&comm, 0, 1)?;
        assert_eq!(&msg.payload[..], b"me");
        Ok(())
    })
    .unwrap();
}

#[test]
fn invalid_destination_rank_errors() {
    World::run(2, |mpi| {
        let comm = mpi.world();
        match mpi.send(&comm, 5, 1, b"x") {
            Err(MpiError::InvalidRank { rank: 5, size: 2 }) => Ok(()),
            other => panic!("expected InvalidRank, got {other:?}"),
        }
    })
    .unwrap();
}
