//! End-to-end jobs over the lossy wire: real rank threads, real timers,
//! the full point-to-point + collective surface — with the netsim wire
//! dropping, duplicating, reordering, and delaying frames underneath.

use simmpi::{
    JobControl, MpiError, MpiResult, NetCond, RetransmitPolicy, World,
};

/// Ring halo exchange + tag-reordered p2p + collectives, the same mix the
/// upper layers lean on. Returns a per-rank digest.
fn mixed_app(mpi: &mut simmpi::Mpi) -> MpiResult<u64> {
    let comm = mpi.world();
    let me = mpi.rank();
    let n = mpi.size();
    let right = (me + 1) % n;
    let left = (me + n - 1) % n;

    let mut digest = 0u64;
    for round in 0..6u64 {
        // Halo exchange around the ring.
        let got = mpi.sendrecv(
            &comm,
            right,
            10,
            &(me as u64 * 1000 + round).to_le_bytes(),
            left,
            10,
        )?;
        digest = digest.wrapping_mul(31).wrapping_add(u64::from_le_bytes(
            got.payload[..8].try_into().unwrap(),
        ));

        // Two tags posted in reverse order: application-level reordering
        // on top of wire-level reordering.
        mpi.send(&comm, right, 21, &[round as u8, 1])?;
        mpi.send(&comm, right, 22, &[round as u8, 2])?;
        let b = mpi.recv(&comm, left, 22)?;
        let a = mpi.recv(&comm, left, 21)?;
        digest = digest.wrapping_mul(31).wrapping_add(
            u64::from(a.payload[1]) * 2 + u64::from(b.payload[1]),
        );

        // Collectives ride the same wire on the collective plane.
        let sum = mpi.allreduce_t::<u64>(
            &comm,
            simmpi::ReduceOp::Sum,
            &[me as u64 + round],
        )?;
        digest = digest.wrapping_mul(31).wrapping_add(sum[0]);
    }
    Ok(digest)
}

#[test]
fn mixed_app_survives_lossy_wire_across_seeds() {
    let reference = World::run(4, mixed_app).unwrap();
    for seed in 0..6u64 {
        let out = World::run_net(4, NetCond::lossy(seed), mixed_app)
            .unwrap_or_else(|e| panic!("seed {seed} failed: {e}"));
        assert_eq!(out, reference, "seed {seed} diverged from perfect wire");
    }
}

#[test]
fn lossy_runs_with_equal_seed_agree_and_wire_faults_fire() {
    let cond = NetCond::lossy(42).with_drop_ppm(100_000);
    let run = || {
        let control = JobControl::new(4);
        World::run_collect_net(4, control, cond.clone(), |mpi| {
            let d = mixed_app(mpi)?;
            Ok((d, mpi.net_stats()))
        })
        .into_iter()
        .collect::<MpiResult<Vec<_>>>()
        .unwrap()
    };
    let a = run();
    let b = run();
    // Outputs are deterministic; wire-fault counters may differ between
    // runs only through timing-driven repair traffic, so compare digests.
    let da: Vec<u64> = a.iter().map(|(d, _)| *d).collect();
    let db: Vec<u64> = b.iter().map(|(d, _)| *d).collect();
    assert_eq!(da, db);
    let total_faults: u64 = a
        .iter()
        .map(|(_, s)| {
            s.wire.dropped
                + s.wire.duplicated
                + s.wire.reordered
                + s.wire.delayed
        })
        .sum();
    assert!(total_faults > 0, "lossy wire produced no faults");
    let total_repair: u64 = a.iter().map(|(_, s)| s.retransmits).sum();
    assert!(total_repair > 0, "10% drop requires retransmissions");
}

#[test]
fn transient_partition_is_masked_by_the_sublayer() {
    // Sever ranks 0 ↔ 1 for their first 8 frames each way; the sublayer's
    // retransmissions advance the link clock until it heals.
    let cond = NetCond::perfect().with_partition(0, 1, 0, 8);
    let out = World::run_net(2, cond, |mpi| {
        let comm = mpi.world();
        if mpi.rank() == 0 {
            mpi.send(&comm, 1, 5, b"over the gap")?;
            Ok(mpi.recv(&comm, 1, 6)?.payload.len() as u64)
        } else {
            let m = mpi.recv(&comm, 0, 5)?;
            mpi.send(&comm, 0, 6, &m.payload)?;
            Ok(m.payload.len() as u64)
        }
    })
    .unwrap();
    assert_eq!(out, vec![12, 12]);
}

#[test]
fn permanent_partition_exhausts_budget_as_net_unreachable() {
    let cond = NetCond::perfect()
        .with_partition(0, 1, 0, u64::MAX)
        .with_retransmit(RetransmitPolicy {
            base_delay_us: 100,
            max_delay_us: 500,
            budget: 5,
        });
    let control = JobControl::new(2);
    let results = World::run_collect_net(2, control, cond, |mpi| {
        let comm = mpi.world();
        if mpi.rank() == 0 {
            mpi.send(&comm, 1, 7, b"into the void")?;
            // Drive the sublayer until the budget verdict surfaces, then
            // abort so the peer's blocked receive unwinds too (what the
            // failure detector does for rank deaths).
            for _ in 0..10_000 {
                if let Err(e) =
                    mpi.iprobe(&comm, simmpi::ANY_SOURCE, simmpi::ANY_TAG)
                {
                    mpi.control().abort();
                    return Err(e);
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            panic!("retry budget never exhausted");
        } else {
            mpi.recv(&comm, 0, 7).map(|_| 0u64)
        }
    });
    assert_eq!(
        results[0],
        Err(MpiError::NetUnreachable {
            dst: 1,
            attempts: 5
        })
    );
    assert_eq!(results[1], Err(MpiError::Aborted));
}

#[test]
fn dead_rank_under_lossy_wire_still_vanishes_silently() {
    // A fail-stopped rank neither receives nor acks; the sublayer must
    // write its traffic off instead of erroring, so the failure detector
    // (not a spurious NetUnreachable) decides the job's fate.
    let cond = NetCond::lossy(3);
    let control = JobControl::new(2);
    let results = World::run_collect_net(2, control, cond, |mpi| {
        let comm = mpi.world();
        if mpi.rank() == 0 {
            // The peer dies without ever receiving; sends must succeed
            // and the post-run flush must write them off, not hang or
            // surface NetUnreachable.
            for i in 0..5u8 {
                mpi.send(&comm, 1, 9, &[i])?;
            }
            Ok(0u64)
        } else {
            Err(MpiError::FailStop)
        }
    });
    assert_eq!(results[0], Ok(0));
    assert_eq!(results[1], Err(MpiError::FailStop));
}
