//! Deterministic lossy-interconnect simulation with a reliable-delivery
//! sublayer.
//!
//! The paper assumes "a reliable transport layer for delivering
//! application messages" (Section 1.1, citing LA-MPI). The perfect-wire
//! fabric gets that for free from in-process channels; this module makes
//! the assumption *earn its keep* by splitting the fabric into:
//!
//! * a **lossy wire** ([`NetCond`] + the per-link state inside
//!   [`crate::transport::Fabric`]): seeded per-frame drop, duplication,
//!   bounded reorder, delay/jitter, and transient link partitions. Every
//!   fault decision is a pure hash of `(seed, salt, src, dst, wire_seq,
//!   attempt)`, so a wire schedule is reproducible from the seed alone,
//!   independent of thread interleaving;
//! * a **reliable-delivery sublayer** ([`NetEndpoint`], one per rank):
//!   per-(src, dst) wire sequence numbers, cumulative acknowledgements,
//!   retransmission with exponential backoff and a retry budget,
//!   duplicate suppression, and in-order reassembly. It restores exactly
//!   the per-sender FIFO guarantee the layers above were built on —
//!   MPI's pairwise non-overtaking — while the wire underneath does its
//!   worst.
//!
//! With [`NetCond::perfect`] (the default everywhere) the sublayer is
//! not instantiated at all and the fabric keeps its original zero-copy
//! hot path.
//!
//! All time-dependent entry points take an explicit `now: Instant` so
//! tests can drive the state machines on a virtual clock.

use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

use crate::envelope::Message;
use crate::error::{MpiError, MpiResult};
use crate::transport::Fabric;

/// Hash salts separating the independent fault decision streams.
const SALT_DROP: u64 = 0xD509;
const SALT_DUP: u64 = 0xD0B1;
const SALT_REORDER: u64 = 0x2E0D;
const SALT_DELAY: u64 = 0xDE1A;
const SALT_JITTER: u64 = 0x717E;
const SALT_ACK_DROP: u64 = 0xACD0;

/// How long a reordered frame may be parked before the wire releases it
/// regardless of subsequent traffic (a liveness backstop; the retransmit
/// timer would recover anyway, this just keeps latency bounded).
const REORDER_PARK: Duration = Duration::from_millis(2);

/// SplitMix64 finalizer: the deterministic mixing primitive behind every
/// wire fault decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Retransmission policy of the reliable-delivery sublayer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetransmitPolicy {
    /// Delay before the first retransmission, in microseconds.
    pub base_delay_us: u64,
    /// Cap on the exponentially growing retransmit delay, in microseconds.
    pub max_delay_us: u64,
    /// Maximum transmissions per frame (first send included). Exhausting
    /// the budget surfaces as [`MpiError::NetUnreachable`].
    pub budget: u32,
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        RetransmitPolicy {
            base_delay_us: 200,
            max_delay_us: 5_000,
            budget: 32,
        }
    }
}

impl RetransmitPolicy {
    /// Backoff before transmission `attempt + 1`, having already made
    /// `attempt` (≥ 1) transmissions: `base · 2^(attempt-1)`, capped.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let us = self
            .base_delay_us
            .saturating_mul(1u64 << exp)
            .min(self.max_delay_us);
        Duration::from_micros(us)
    }
}

/// A transient symmetric link partition: frames between ranks `a` and `b`
/// (either direction) are severed while the directed link's frame index
/// lies in `from..until`. Because retransmissions keep advancing the
/// index, a partition always heals — the sublayer's own repair traffic
/// is what ends it, like a real fabric coming back under load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// One endpoint rank.
    pub a: usize,
    /// The other endpoint rank.
    pub b: usize,
    /// First severed frame index on each directed link.
    pub from: u64,
    /// First frame index past the partition.
    pub until: u64,
}

impl Partition {
    /// True if the partition severs frame `idx` on the directed link
    /// `src → dst`.
    fn severs(&self, src: usize, dst: usize, idx: u64) -> bool {
        let on_link = (self.a == src && self.b == dst)
            || (self.a == dst && self.b == src);
        on_link && idx >= self.from && idx < self.until
    }
}

/// Seeded network conditions for the lossy wire.
///
/// Probabilities are in parts-per-million so the whole struct is `Eq`
/// and hashable, and every fault decision is an exact integer function
/// of the seed. The default is a perfect wire: no faults, and the
/// reliable-delivery sublayer is bypassed entirely (zero cost).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetCond {
    /// Seed for every fault decision stream.
    pub seed: u64,
    /// Per-frame drop probability, parts per million.
    pub drop_ppm: u32,
    /// Per-frame duplication probability, parts per million.
    pub dup_ppm: u32,
    /// Per-frame probability of being held back (reordered), ppm.
    pub reorder_ppm: u32,
    /// How many later frames may overtake a held-back frame.
    pub reorder_span: u32,
    /// Per-frame probability of an added delivery delay, ppm.
    pub delay_ppm: u32,
    /// Base added delay for delayed frames, microseconds.
    pub delay_us: u64,
    /// Uniform extra jitter on top of `delay_us`, microseconds.
    pub jitter_us: u64,
    /// Transient link partitions.
    pub partitions: Vec<Partition>,
    /// Retransmission policy of the reliability sublayer.
    pub retransmit: RetransmitPolicy,
}

impl NetCond {
    /// A perfect wire: no loss, no duplication, no reorder, no delay.
    /// The fabric detects this and keeps its original direct path.
    pub fn perfect() -> Self {
        Self::default()
    }

    /// A typical hostile-but-survivable wire: 5% drop, 2% duplication,
    /// 10% bounded reorder, 15% delayed frames with jitter.
    pub fn lossy(seed: u64) -> Self {
        NetCond {
            seed,
            drop_ppm: 50_000,
            dup_ppm: 20_000,
            reorder_ppm: 100_000,
            reorder_span: 4,
            delay_ppm: 150_000,
            delay_us: 150,
            jitter_us: 250,
            ..Self::default()
        }
    }

    /// Derive a whole wire profile from a single seed — the fuzzer's
    /// network dimension. Roughly a quarter of seeds keep the perfect
    /// wire; the rest draw every knob independently within survivable
    /// bounds (at or below the [`NetCond::lossy`] scale, so the default
    /// retransmit budget always suffices), and about a quarter of the
    /// lossy profiles add one transient partition between two ranks of
    /// an `nranks`-rank job. Decisions chain through the same SplitMix64
    /// finalizer as the per-frame fault streams, so the profile is a
    /// pure function of `(seed, nranks)`.
    pub fn from_seed(seed: u64, nranks: usize) -> Self {
        assert!(nranks >= 2, "a wire needs at least two endpoints");
        const SALT_PROFILE: u64 = 0x9F0F_11E5;
        let mut h = mix(seed ^ SALT_PROFILE);
        let mut next = |span: u64| -> u64 {
            h = mix(h);
            h % span.max(1)
        };
        if next(4) == 0 {
            return NetCond::perfect();
        }
        let mut cond = NetCond {
            seed,
            drop_ppm: next(60_001) as u32,
            dup_ppm: next(25_001) as u32,
            ..NetCond::default()
        };
        if next(2) == 0 {
            cond.reorder_ppm = next(120_001) as u32;
            cond.reorder_span = 2 + next(4) as u32;
        }
        if next(2) == 0 {
            cond.delay_ppm = next(150_001) as u32;
            cond.delay_us = 50 + next(201);
            cond.jitter_us = next(301);
        }
        if next(4) == 0 {
            let a = next(nranks as u64) as usize;
            let b = (a + 1 + next(nranks as u64 - 1) as usize) % nranks;
            let from = next(64);
            cond = cond.with_partition(a, b, from, from + 1 + next(48));
        }
        cond
    }

    /// True if no wire fault can ever fire (the sublayer is skipped).
    pub fn is_perfect(&self) -> bool {
        self.drop_ppm == 0
            && self.dup_ppm == 0
            && self.reorder_ppm == 0
            && self.delay_ppm == 0
            && self.partitions.is_empty()
    }

    /// Set the drop probability (parts per million).
    pub fn with_drop_ppm(mut self, ppm: u32) -> Self {
        self.drop_ppm = ppm;
        self
    }

    /// Set the duplication probability (parts per million).
    pub fn with_dup_ppm(mut self, ppm: u32) -> Self {
        self.dup_ppm = ppm;
        self
    }

    /// Set the reorder probability (ppm) and overtaking span.
    pub fn with_reorder(mut self, ppm: u32, span: u32) -> Self {
        self.reorder_ppm = ppm;
        self.reorder_span = span;
        self
    }

    /// Set the delay probability (ppm), base delay and jitter (µs).
    pub fn with_delay(
        mut self,
        ppm: u32,
        delay_us: u64,
        jitter_us: u64,
    ) -> Self {
        self.delay_ppm = ppm;
        self.delay_us = delay_us;
        self.jitter_us = jitter_us;
        self
    }

    /// Add a transient symmetric partition between ranks `a` and `b`
    /// covering directed-link frame indices `from..until`.
    pub fn with_partition(
        mut self,
        a: usize,
        b: usize,
        from: u64,
        until: u64,
    ) -> Self {
        self.partitions.push(Partition { a, b, from, until });
        self
    }

    /// Replace the retransmission policy.
    pub fn with_retransmit(mut self, policy: RetransmitPolicy) -> Self {
        self.retransmit = policy;
        self
    }

    /// Deterministic uniform draw for frame `(src, dst, wire_seq,
    /// attempt)` under `salt`.
    fn draw(
        &self,
        salt: u64,
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
    ) -> u64 {
        let mut h = mix(self.seed ^ salt);
        h = mix(h ^ src as u64);
        h = mix(h ^ dst as u64);
        h = mix(h ^ seq);
        mix(h ^ u64::from(attempt))
    }

    /// Deterministic Bernoulli roll with probability `ppm / 1e6`.
    fn roll(
        &self,
        salt: u64,
        ppm: u32,
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
    ) -> bool {
        ppm != 0
            && self.draw(salt, src, dst, seq, attempt) % 1_000_000
                < u64::from(ppm)
    }

    /// True if the directed link `src → dst` is severed at frame `idx`.
    fn severed(&self, src: usize, dst: usize, idx: u64) -> bool {
        self.partitions.iter().any(|p| p.severs(src, dst, idx))
    }
}

/// A frame on the wire.
///
/// The perfect wire carries bare [`Frame::Direct`] messages exactly as
/// the original transport did; the lossy wire carries sequenced
/// [`Frame::Data`] frames plus [`Frame::Ack`] repair traffic.
#[derive(Debug, Clone)]
pub enum Frame {
    /// A message on the perfect wire (no reliability header).
    Direct(Message),
    /// A message under the reliable-delivery sublayer.
    Data {
        /// Per-(src, dst) wire sequence number.
        wire_seq: u64,
        /// Transmission attempt, 1-based (used only to decorrelate the
        /// wire's fault decisions between retransmissions).
        attempt: u32,
        /// The application message.
        msg: Message,
    },
    /// Cumulative acknowledgement: the sending rank `peer` has delivered
    /// every frame with `wire_seq < cum` on the link `dst → peer`.
    Ack {
        /// The acknowledging rank.
        peer: usize,
        /// One past the highest contiguously delivered wire sequence.
        cum: u64,
    },
}

/// Per-sender counters of the lossy wire, attributed to the sending rank
/// of each link (see [`Fabric::wire_stats_for`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Frames dropped by the loss roll.
    pub dropped: u64,
    /// Frames duplicated.
    pub duplicated: u64,
    /// Frames held back for reordering.
    pub reordered: u64,
    /// Frames held back for delay/jitter.
    pub delayed: u64,
    /// Frames severed by a transient partition.
    pub partition_dropped: u64,
}

impl WireStats {
    /// Accumulate another link's counters into this total.
    pub fn absorb(&mut self, o: &WireStats) {
        self.dropped += o.dropped;
        self.duplicated += o.duplicated;
        self.reordered += o.reordered;
        self.delayed += o.delayed;
        self.partition_dropped += o.partition_dropped;
    }
}

/// A frame parked inside the wire (reordered or delayed).
struct HeldFrame {
    frame: Frame,
    /// Release once the link's frame index passes this (reorder), or …
    release_idx: u64,
    /// … once this deadline passes (delay, and reorder's backstop).
    deadline: Instant,
}

/// Mutable state of one directed link of the lossy wire.
#[derive(Default)]
pub(crate) struct LinkWire {
    /// Frames offered to this link so far (the partition/reorder clock).
    sent: u64,
    held: Vec<HeldFrame>,
    stats: WireStats,
}

impl LinkWire {
    pub(crate) fn new() -> Self {
        Self {
            held: Vec::new(),
            ..Self::default()
        }
    }

    pub(crate) fn stats(&self) -> WireStats {
        self.stats
    }

    /// Push every due held frame into `deliver`.
    fn release_due(&mut self, now: Instant, deliver: &mut impl FnMut(Frame)) {
        let idx = self.sent;
        let mut k = 0;
        while k < self.held.len() {
            let due = self.held[k].release_idx <= idx
                || self.held[k].deadline <= now;
            if due {
                deliver(self.held[k].frame.clone());
                self.held.swap_remove(k);
            } else {
                k += 1;
            }
        }
    }

    /// Offer one frame to the lossy wire; every surviving copy is handed
    /// to `deliver` (possibly zero, one, or two times, possibly later
    /// through [`LinkWire::release_due`]).
    pub(crate) fn transmit(
        &mut self,
        cond: &NetCond,
        src: usize,
        dst: usize,
        frame: Frame,
        now: Instant,
        deliver: &mut impl FnMut(Frame),
    ) {
        let idx = self.sent;
        self.sent += 1;
        self.release_due(now, deliver);

        let (seq, attempt) = match &frame {
            Frame::Data {
                wire_seq, attempt, ..
            } => (*wire_seq, *attempt),
            // Acks are identified by their position on the link; they are
            // only ever dropped, never duplicated or held.
            Frame::Ack { cum, .. } => (*cum ^ idx.rotate_left(17), 0),
            Frame::Direct(_) => unreachable!("direct frames bypass the wire"),
        };

        if cond.severed(src, dst, idx) {
            self.stats.partition_dropped += 1;
            return;
        }
        if let Frame::Ack { .. } = frame {
            if cond.roll(SALT_ACK_DROP, cond.drop_ppm, src, dst, seq, 0) {
                self.stats.dropped += 1;
                return;
            }
            deliver(frame);
            return;
        }
        if cond.roll(SALT_DROP, cond.drop_ppm, src, dst, seq, attempt) {
            self.stats.dropped += 1;
            return;
        }
        let dup = cond.roll(SALT_DUP, cond.dup_ppm, src, dst, seq, attempt);
        if cond.roll(SALT_REORDER, cond.reorder_ppm, src, dst, seq, attempt) {
            self.stats.reordered += 1;
            self.held.push(HeldFrame {
                frame: frame.clone(),
                release_idx: idx + u64::from(cond.reorder_span.max(1)),
                deadline: now + REORDER_PARK,
            });
        } else if cond.roll(SALT_DELAY, cond.delay_ppm, src, dst, seq, attempt)
        {
            let jitter = if cond.jitter_us == 0 {
                0
            } else {
                cond.draw(SALT_JITTER, src, dst, seq, attempt)
                    % (cond.jitter_us + 1)
            };
            self.stats.delayed += 1;
            self.held.push(HeldFrame {
                frame: frame.clone(),
                release_idx: u64::MAX,
                deadline: now + Duration::from_micros(cond.delay_us + jitter),
            });
        } else {
            deliver(frame.clone());
        }
        if dup {
            self.stats.duplicated += 1;
            deliver(frame);
        }
    }

    /// Release due held frames without offering new traffic (the
    /// receiver-side poll).
    pub(crate) fn pump(
        &mut self,
        now: Instant,
        deliver: &mut impl FnMut(Frame),
    ) {
        self.release_due(now, deliver);
    }
}

/// Per-rank statistics of the reliable-delivery sublayer plus the wire
/// faults charged to this rank's outgoing links.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Data frames retransmitted by this rank.
    pub retransmits: u64,
    /// Duplicate data frames this rank received and discarded.
    pub dup_delivered: u64,
    /// Cumulative acks this rank emitted.
    pub acks_sent: u64,
    /// Wire faults on this rank's outgoing links.
    pub wire: WireStats,
}

struct Unacked {
    wire_seq: u64,
    msg: Message,
    attempts: u32,
    next_due: Instant,
}

#[derive(Default)]
struct TxChan {
    next_seq: u64,
    unacked: VecDeque<Unacked>,
}

#[derive(Default)]
struct RxChan {
    /// Next wire sequence to deliver (= cumulative ack value).
    next_expected: u64,
    /// Frames received ahead of sequence.
    ooo: BTreeMap<u64, Message>,
}

/// The reliable-delivery sublayer endpoint of one rank.
///
/// Sender side: assigns per-(src, dst) wire sequence numbers, buffers
/// unacknowledged frames, retransmits with exponential backoff under a
/// retry budget. Receiver side: deduplicates, reassembles wire order,
/// and emits cumulative acknowledgements. The layer above receives
/// messages in exactly the per-sender order they were sent — the wire's
/// loss, duplication and reordering are fully masked (or surface as
/// [`MpiError::NetUnreachable`] when the budget is exhausted).
pub struct NetEndpoint {
    rank: usize,
    policy: RetransmitPolicy,
    tx: Vec<TxChan>,
    rx: Vec<RxChan>,
    retransmits: u64,
    dup_delivered: u64,
    acks_sent: u64,
    #[cfg(feature = "obs")]
    obs: Option<crate::obs::NetObs>,
}

impl NetEndpoint {
    /// Endpoint for `rank` in a job of `n` ranks.
    pub fn new(rank: usize, n: usize, policy: RetransmitPolicy) -> Self {
        NetEndpoint {
            rank,
            policy,
            tx: (0..n).map(|_| TxChan::default()).collect(),
            rx: (0..n).map(|_| RxChan::default()).collect(),
            retransmits: 0,
            dup_delivered: 0,
            acks_sent: 0,
            #[cfg(feature = "obs")]
            obs: None,
        }
    }

    /// Attach pre-registered sublayer metric handles.
    #[cfg(feature = "obs")]
    pub(crate) fn attach_obs(&mut self, obs: crate::obs::NetObs) {
        self.obs = Some(obs);
    }

    /// Sublayer statistics for this endpoint (wire stats not included;
    /// see [`Fabric::wire_stats_for`]).
    pub fn stats(&self) -> NetStats {
        NetStats {
            retransmits: self.retransmits,
            dup_delivered: self.dup_delivered,
            acks_sent: self.acks_sent,
            wire: WireStats::default(),
        }
    }

    /// True if every data frame this endpoint ever sent has been
    /// cumulatively acknowledged (or written off to a dead peer).
    pub fn all_acked(&self) -> bool {
        self.tx.iter().all(|t| t.unacked.is_empty())
    }

    /// Send `msg` through the sublayer: assign the wire sequence, buffer
    /// for retransmission, and offer the first transmission to the wire.
    pub fn send(
        &mut self,
        fabric: &Fabric,
        msg: Message,
        now: Instant,
    ) -> MpiResult<()> {
        fabric.validate_send(msg.dst)?;
        let dst = msg.dst;
        let control = fabric.control();
        if control.is_done(dst)
            || (control.is_failed(dst) && !control.holds_failed_traffic())
        {
            // Messages to a dead or departed rank silently vanish, as on
            // the perfect wire (stopping-failure model). Under a splice
            // supervisor a failed rank's mailbox outlives it, so traffic
            // is buffered for the incarnation to come instead.
            return Ok(());
        }
        let chan = &mut self.tx[dst];
        let wire_seq = chan.next_seq;
        chan.next_seq += 1;
        chan.unacked.push_back(Unacked {
            wire_seq,
            msg: msg.clone(),
            attempts: 1,
            next_due: now + self.policy.backoff(1),
        });
        fabric.wire_transmit(
            self.rank,
            dst,
            Frame::Data {
                wire_seq,
                attempt: 1,
                msg,
            },
            now,
        );
        Ok(())
    }

    /// Handle one frame from this rank's mailbox. Data frames that
    /// complete a contiguous prefix are returned **in wire order** for
    /// delivery to the matching engine; acks and duplicates return
    /// nothing.
    pub fn on_frame(
        &mut self,
        fabric: &Fabric,
        frame: Frame,
        now: Instant,
    ) -> Vec<Message> {
        match frame {
            Frame::Direct(msg) => vec![msg],
            Frame::Ack { peer, cum } => {
                let chan = &mut self.tx[peer];
                while chan.unacked.front().is_some_and(|u| u.wire_seq < cum) {
                    chan.unacked.pop_front();
                }
                Vec::new()
            }
            Frame::Data { wire_seq, msg, .. } => {
                let src = msg.src;
                let rx = &mut self.rx[src];
                let mut out = Vec::new();
                if wire_seq < rx.next_expected
                    || rx.ooo.contains_key(&wire_seq)
                {
                    // Duplicate: discard, but re-ack — the original ack
                    // may have been lost.
                    self.dup_delivered += 1;
                } else {
                    rx.ooo.insert(wire_seq, msg);
                    while let Some(m) = rx.ooo.remove(&rx.next_expected) {
                        out.push(m);
                        rx.next_expected += 1;
                    }
                }
                let cum = self.rx[src].next_expected;
                self.ack(fabric, src, cum, now);
                out
            }
        }
    }

    fn ack(&mut self, fabric: &Fabric, to: usize, cum: u64, now: Instant) {
        self.acks_sent += 1;
        fabric.wire_transmit(
            self.rank,
            to,
            Frame::Ack {
                peer: self.rank,
                cum,
            },
            now,
        );
    }

    /// Drive the sublayer's timers: release due wire frames destined to
    /// this rank, write off traffic to dead/departed peers, and
    /// retransmit overdue unacknowledged frames. Surfaces
    /// [`MpiError::NetUnreachable`] when a frame exhausts its budget
    /// against a live peer.
    pub fn poll(&mut self, fabric: &Fabric, now: Instant) -> MpiResult<()> {
        fabric.wire_pump_to(self.rank, now);
        let control = fabric.control();
        for (dst, chan) in self.tx.iter_mut().enumerate() {
            if chan.unacked.is_empty() {
                continue;
            }
            if control.is_failed(dst) {
                if control.holds_failed_traffic() {
                    // A supervisor may splice in a new incarnation that
                    // will drain this channel: freeze it — no write-off,
                    // no retransmission, no retry-budget burn — until
                    // the fail-stop flag clears.
                    continue;
                }
                // A dead rank neither receives nor acks; the frames
                // vanish, as on the perfect wire.
                chan.unacked.clear();
                continue;
            }
            if control.is_done(dst) {
                // A departed rank has already delivered everything it
                // was going to.
                chan.unacked.clear();
                continue;
            }
            for u in chan.unacked.iter_mut() {
                if u.next_due > now {
                    continue;
                }
                if u.attempts >= self.policy.budget {
                    return Err(MpiError::NetUnreachable {
                        dst,
                        attempts: u.attempts,
                    });
                }
                u.attempts += 1;
                let backoff = self.policy.backoff(u.attempts);
                u.next_due = now + backoff;
                self.retransmits += 1;
                #[cfg(feature = "obs")]
                if let Some(o) = &self.obs {
                    o.retransmits.inc();
                    o.backoff_us.record(backoff.as_micros() as u64);
                }
                fabric.wire_transmit(
                    self.rank,
                    dst,
                    Frame::Data {
                        wire_seq: u.wire_seq,
                        attempt: u.attempts,
                        msg: u.msg.clone(),
                    },
                    now,
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::JobControl;
    use bytes::Bytes;

    fn msg(src: usize, dst: usize, tag: i32, uid: u64) -> Message {
        Message {
            src,
            dst,
            context: 0,
            tag,
            header: crate::envelope::HeaderBytes::empty(),
            payload: Bytes::copy_from_slice(&uid.to_le_bytes()),
            seq: uid,
        }
    }

    fn uid_of(m: &Message) -> u64 {
        u64::from_le_bytes(m.payload[..8].try_into().unwrap())
    }

    /// Shuttle frames between two endpoints over a lossy fabric on a
    /// virtual clock until the sender's buffer drains (plus a settling
    /// tail that flushes held frames and straggler duplicates); returns
    /// the messages delivered at rank 1.
    fn shuttle(
        fabric: &Fabric,
        rx: &mut [crossbeam::channel::Receiver<Frame>],
        ep0: &mut NetEndpoint,
        ep1: &mut NetEndpoint,
        start: Instant,
    ) -> Vec<Message> {
        let mut delivered = Vec::new();
        let mut t = 0u64;
        let mut settle = 0u32;
        // 20ms of virtual settling tail covers every possible holdback
        // deadline (reorder park 2ms, delay + jitter well under 1ms).
        while settle < 200 {
            if ep0.all_acked() {
                settle += 1;
            }
            t += 100;
            let now = start + Duration::from_micros(t);
            ep0.poll(fabric, now).unwrap();
            ep1.poll(fabric, now).unwrap();
            while let Ok(f) = rx[1].try_recv() {
                delivered.extend(ep1.on_frame(fabric, f, now));
            }
            while let Ok(f) = rx[0].try_recv() {
                ep0.on_frame(fabric, f, now);
            }
            assert!(t < 60_000_000, "shuttle did not converge");
        }
        delivered
    }

    #[test]
    fn lossy_wire_is_masked_exactly_once_in_order() {
        for seed in 0..16u64 {
            let cond = NetCond::lossy(seed).with_drop_ppm(100_000);
            let control = JobControl::new(2);
            let (fabric, mut rx) =
                Fabric::new_with_net(2, control, cond.clone());
            let mut ep0 = NetEndpoint::new(0, 2, cond.retransmit.clone());
            let mut ep1 = NetEndpoint::new(1, 2, cond.retransmit.clone());
            let start = Instant::now();
            for uid in 0..200u64 {
                ep0.send(&fabric, msg(0, 1, (uid % 3) as i32, uid), start)
                    .unwrap();
            }
            let got = shuttle(&fabric, &mut rx, &mut ep0, &mut ep1, start);
            let uids: Vec<u64> = got.iter().map(uid_of).collect();
            assert_eq!(
                uids,
                (0..200).collect::<Vec<u64>>(),
                "seed {seed}: delivery must be exactly-once and in order"
            );
        }
    }

    #[test]
    fn wire_faults_actually_fire_and_are_seed_deterministic() {
        let cond = NetCond::lossy(7).with_drop_ppm(100_000);
        let run = || {
            let control = JobControl::new(2);
            let (fabric, mut rx) =
                Fabric::new_with_net(2, control, cond.clone());
            let mut ep0 = NetEndpoint::new(0, 2, cond.retransmit.clone());
            let mut ep1 = NetEndpoint::new(1, 2, cond.retransmit.clone());
            let start = Instant::now();
            for uid in 0..300u64 {
                ep0.send(&fabric, msg(0, 1, 0, uid), start).unwrap();
            }
            shuttle(&fabric, &mut rx, &mut ep0, &mut ep1, start);
            (fabric.wire_stats_for(0), ep0.stats(), ep1.stats())
        };
        let (w, s0, s1) = run();
        assert!(w.dropped > 0, "drops must fire: {w:?}");
        assert!(w.duplicated > 0, "dups must fire: {w:?}");
        assert!(w.reordered > 0, "reorders must fire: {w:?}");
        assert!(w.delayed > 0, "delays must fire: {w:?}");
        assert!(s0.retransmits > 0, "retransmits must fire");
        assert!(s1.dup_delivered > 0, "receiver dedup must fire");
        // First-transmission fault decisions are a pure function of the
        // seed; only timing-driven repair traffic may differ between
        // runs, and with a virtual clock even that is identical.
        let (w2, s02, s12) = run();
        assert_eq!(w, w2);
        assert_eq!(s0, s02);
        assert_eq!(s1, s12);
    }

    #[test]
    fn from_seed_is_deterministic_and_bounded() {
        let mut perfect = 0usize;
        let mut partitioned = 0usize;
        for seed in 0..256u64 {
            let a = NetCond::from_seed(seed, 4);
            assert_eq!(a, NetCond::from_seed(seed, 4), "seed {seed}");
            assert!(a.drop_ppm <= 60_000, "seed {seed}: {a:?}");
            assert!(a.dup_ppm <= 25_000);
            assert!(a.reorder_ppm <= 120_000);
            assert!(a.delay_ppm <= 150_000);
            if a.reorder_ppm > 0 {
                assert!((2..=5).contains(&a.reorder_span));
            }
            assert!(a.partitions.len() <= 1);
            for p in &a.partitions {
                assert!(p.a < 4 && p.b < 4 && p.a != p.b);
                assert!(p.until > p.from);
            }
            // Profiles never weaken the default repair policy.
            assert_eq!(a.retransmit, RetransmitPolicy::default());
            perfect += usize::from(a.is_perfect());
            partitioned += usize::from(!a.partitions.is_empty());
        }
        assert!((32..=128).contains(&perfect), "{perfect} perfect wires");
        assert!(partitioned >= 16, "{partitioned} partitioned profiles");
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let p = RetransmitPolicy {
            base_delay_us: 100,
            max_delay_us: 1_000,
            budget: 10,
        };
        let us: Vec<u64> =
            (1..=6).map(|a| p.backoff(a).as_micros() as u64).collect();
        assert_eq!(us, vec![100, 200, 400, 800, 1_000, 1_000]);
        // Astronomical attempt counts must not overflow.
        assert_eq!(p.backoff(u32::MAX).as_micros() as u64, 1_000);
    }

    #[test]
    fn dedup_window_reacks_duplicates_without_redelivery() {
        let cond = NetCond::perfect().with_dup_ppm(1); // net enabled, benign
        let control = JobControl::new(2);
        let (fabric, rx) = Fabric::new_with_net(2, control, cond.clone());
        let mut ep1 = NetEndpoint::new(1, 2, RetransmitPolicy::default());
        let now = Instant::now();
        let data = |wire_seq, uid| Frame::Data {
            wire_seq,
            attempt: 1,
            msg: msg(0, 1, 0, uid),
        };
        assert_eq!(ep1.on_frame(&fabric, data(0, 10), now).len(), 1);
        // Exact duplicate of an already-delivered frame: discarded.
        assert!(ep1.on_frame(&fabric, data(0, 10), now).is_empty());
        // Out-of-order arrival: parked, then released in order.
        assert!(ep1.on_frame(&fabric, data(2, 12), now).is_empty());
        // Duplicate of a parked out-of-order frame: also discarded.
        assert!(ep1.on_frame(&fabric, data(2, 12), now).is_empty());
        let released = ep1.on_frame(&fabric, data(1, 11), now);
        assert_eq!(
            released.iter().map(uid_of).collect::<Vec<_>>(),
            vec![11, 12]
        );
        assert_eq!(ep1.stats().dup_delivered, 2);
        // Every data frame triggered a cumulative ack back to rank 0.
        let mut acks = Vec::new();
        while let Ok(f) = rx[0].try_recv() {
            if let Frame::Ack { peer, cum } = f {
                acks.push((peer, cum));
            }
        }
        assert_eq!(acks, vec![(1, 1), (1, 1), (1, 1), (1, 1), (1, 3)]);
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_as_net_unreachable() {
        // A permanent partition: every frame 0 → 1 is severed.
        let cond = NetCond::perfect()
            .with_partition(0, 1, 0, u64::MAX)
            .with_retransmit(RetransmitPolicy {
                base_delay_us: 10,
                max_delay_us: 20,
                budget: 4,
            });
        let control = JobControl::new(2);
        let (fabric, _rx) = Fabric::new_with_net(2, control, cond.clone());
        let mut ep0 = NetEndpoint::new(0, 2, cond.retransmit.clone());
        let start = Instant::now();
        ep0.send(&fabric, msg(0, 1, 0, 1), start).unwrap();
        let mut t = 0;
        let err = loop {
            t += 50;
            match ep0.poll(&fabric, start + Duration::from_micros(t)) {
                Ok(()) => assert!(t < 1_000_000, "budget never exhausted"),
                Err(e) => break e,
            }
        };
        assert_eq!(
            err,
            MpiError::NetUnreachable {
                dst: 1,
                attempts: 4
            }
        );
        assert_eq!(fabric.wire_stats_for(0).partition_dropped, 4);
    }

    #[test]
    fn transient_partition_heals_by_frame_count() {
        let cond = NetCond::perfect().with_partition(0, 1, 0, 3);
        let control = JobControl::new(2);
        let (fabric, rx) = Fabric::new_with_net(2, control, cond.clone());
        let mut ep0 = NetEndpoint::new(0, 2, cond.retransmit.clone());
        let mut ep1 = NetEndpoint::new(1, 2, cond.retransmit.clone());
        let start = Instant::now();
        ep0.send(&fabric, msg(0, 1, 0, 42), start).unwrap();
        let mut t = 0u64;
        let mut delivered = Vec::new();
        while delivered.is_empty() {
            t += 500;
            assert!(t < 10_000_000, "partition never healed");
            let now = start + Duration::from_micros(t);
            ep0.poll(&fabric, now).unwrap();
            while let Ok(f) = rx[1].try_recv() {
                delivered.extend(ep1.on_frame(&fabric, f, now));
            }
        }
        assert_eq!(uid_of(&delivered[0]), 42);
        // Retransmissions advanced the link clock past the window.
        assert_eq!(fabric.wire_stats_for(0).partition_dropped, 3);
    }

    #[test]
    fn frames_to_failed_or_done_ranks_are_written_off() {
        let cond = NetCond::perfect().with_partition(0, 1, 0, u64::MAX);
        let control = JobControl::new(3);
        let (fabric, _rx) =
            Fabric::new_with_net(3, control.clone(), cond.clone());
        let mut ep0 = NetEndpoint::new(0, 3, cond.retransmit.clone());
        let start = Instant::now();
        ep0.send(&fabric, msg(0, 1, 0, 1), start).unwrap();
        assert!(!ep0.all_acked());
        control.fail_rank(1);
        ep0.poll(&fabric, start + Duration::from_millis(1)).unwrap();
        assert!(ep0.all_acked(), "frames to a failed rank must vanish");
        // Sends to a departed rank vanish at the source.
        control.mark_done(2);
        ep0.send(&fabric, msg(0, 2, 0, 2), start).unwrap();
        assert!(ep0.all_acked());
    }
}
