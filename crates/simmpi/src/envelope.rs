//! Wire-level message representation.

use bytes::Bytes;

/// Maximum length of the inline header segment of a [`Message`].
///
/// 16 bytes covers every header the protocol layer above sends (the
/// explicit piggyback triple is 9 bytes, the packed word 4) with room to
/// spare, while keeping the segment small enough to live inline in the
/// frame — no allocation, `memcpy` of at most 16 bytes per send.
pub const MAX_HEADER_LEN: usize = 16;

/// A small inline byte string: the header segment of a two-segment frame.
///
/// The protocol layer above simmpi prepends a control word to every
/// application message. Carrying that word in a separate fixed-size inline
/// segment (instead of a freshly allocated `header ++ payload` buffer)
/// makes the per-message protocol cost O(header), not O(payload): the
/// payload [`Bytes`] travels by refcount, untouched.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeaderBytes {
    len: u8,
    buf: [u8; MAX_HEADER_LEN],
}

impl HeaderBytes {
    /// The empty header segment (plain transport-level messages).
    pub const fn empty() -> Self {
        HeaderBytes {
            len: 0,
            buf: [0; MAX_HEADER_LEN],
        }
    }

    /// Copy `src` into an inline header segment.
    ///
    /// # Panics
    /// If `src` exceeds [`MAX_HEADER_LEN`] bytes — headers are protocol
    /// control words, never application data, so an oversized one is a
    /// programming error in the layer above.
    pub fn new(src: &[u8]) -> Self {
        assert!(
            src.len() <= MAX_HEADER_LEN,
            "header segment of {} bytes exceeds the {MAX_HEADER_LEN}-byte \
             inline limit",
            src.len()
        );
        let mut buf = [0; MAX_HEADER_LEN];
        buf[..src.len()].copy_from_slice(src);
        HeaderBytes {
            len: src.len() as u8,
            buf,
        }
    }

    /// Length of the header segment in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no header segment is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The header bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }
}

impl std::ops::Deref for HeaderBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Default for HeaderBytes {
    fn default() -> Self {
        Self::empty()
    }
}

impl std::fmt::Debug for HeaderBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HeaderBytes({:?})", self.as_slice())
    }
}

/// A message in flight between two ranks.
///
/// `context` scopes the message to a communicator (and, for internal
/// collective traffic, to the collective plane of that communicator), so
/// application point-to-point traffic can never match collective internals.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sender's world rank.
    pub src: usize,
    /// Destination's world rank.
    pub dst: usize,
    /// Communicator context identifier.
    pub context: u32,
    /// Application-visible tag.
    pub tag: i32,
    /// Optional inline header segment. The protocol layer above carries
    /// its piggybacked control word here; plain sends leave it empty. This
    /// crate never inspects either segment.
    pub header: HeaderBytes,
    /// Opaque payload, shipped by refcount end to end.
    pub payload: Bytes,
    /// Per-(src, dst, context) sequence number assigned at send time; used
    /// by the matcher to preserve MPI's non-overtaking guarantee.
    pub seq: u64,
}

/// What a completed receive hands back to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvMsg {
    /// World rank of the sender (useful after an `ANY_SOURCE` receive).
    pub src: usize,
    /// Tag of the matched message (useful after an `ANY_TAG` receive).
    pub tag: i32,
    /// The sender's inline header segment (empty for plain sends). The
    /// protocol layer decodes its control word from here without touching
    /// the payload.
    pub header: HeaderBytes,
    /// The payload.
    pub payload: Bytes,
}

impl RecvMsg {
    /// Total bytes received: header segment plus payload.
    pub fn total_len(&self) -> usize {
        self.header.len() + self.payload.len()
    }

    /// The two segments as one logically contiguous buffer. Free when no
    /// header segment is present (the common case after the protocol
    /// layer strips it); otherwise the segments are joined with one copy.
    pub fn contiguous(&self) -> Bytes {
        if self.header.is_empty() {
            return self.payload.clone();
        }
        let mut joined =
            Vec::with_capacity(self.header.len() + self.payload.len());
        joined.extend_from_slice(&self.header);
        joined.extend_from_slice(&self.payload);
        joined.into()
    }

    /// Decode the payload as a typed slice.
    pub fn to_vec<T: crate::datatype::MpiType>(
        &self,
    ) -> crate::error::MpiResult<Vec<T>> {
        T::bytes_to_vec(&self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_bytes_round_trip() {
        let h = HeaderBytes::new(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(h.len(), 9);
        assert_eq!(h.as_slice(), &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert!(!h.is_empty());
        assert!(HeaderBytes::empty().is_empty());
        assert_eq!(HeaderBytes::new(&[]), HeaderBytes::empty());
    }

    #[test]
    fn header_bytes_accepts_the_maximum_length() {
        let h = HeaderBytes::new(&[0xAB; MAX_HEADER_LEN]);
        assert_eq!(h.len(), MAX_HEADER_LEN);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_header_panics() {
        HeaderBytes::new(&[0; MAX_HEADER_LEN + 1]);
    }

    #[test]
    fn contiguous_joins_segments() {
        let m = RecvMsg {
            src: 0,
            tag: 1,
            header: HeaderBytes::new(&[9, 9]),
            payload: Bytes::from_static(b"abc"),
        };
        assert_eq!(m.total_len(), 5);
        assert_eq!(&m.contiguous()[..], b"\x09\x09abc");
        // Without a header segment, contiguous is the payload by refcount.
        let plain = RecvMsg {
            header: HeaderBytes::empty(),
            ..m
        };
        assert_eq!(&plain.contiguous()[..], b"abc");
    }
}
