//! Wire-level message representation.

use bytes::Bytes;

/// A message in flight between two ranks.
///
/// `context` scopes the message to a communicator (and, for internal
/// collective traffic, to the collective plane of that communicator), so
/// application point-to-point traffic can never match collective internals.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sender's world rank.
    pub src: usize,
    /// Destination's world rank.
    pub dst: usize,
    /// Communicator context identifier.
    pub context: u32,
    /// Application-visible tag.
    pub tag: i32,
    /// Opaque payload. The protocol layer above prepends its piggybacked
    /// control word here; this crate never inspects payloads.
    pub payload: Bytes,
    /// Per-(src, dst, context) sequence number assigned at send time; used
    /// by the matcher to preserve MPI's non-overtaking guarantee.
    pub seq: u64,
}

/// What a completed receive hands back to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvMsg {
    /// World rank of the sender (useful after an `ANY_SOURCE` receive).
    pub src: usize,
    /// Tag of the matched message (useful after an `ANY_TAG` receive).
    pub tag: i32,
    /// The payload.
    pub payload: Bytes,
}

impl RecvMsg {
    /// Decode the payload as a typed slice.
    pub fn to_vec<T: crate::datatype::MpiType>(
        &self,
    ) -> crate::error::MpiResult<Vec<T>> {
        T::bytes_to_vec(&self.payload)
    }
}
