//! Job lifecycle: spawn ranks, run them, and coordinate abort/fail-stop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::comm::Comm;
use crate::error::MpiError;
use crate::error::MpiResult;
use crate::netsim::NetCond;
use crate::rank::Mpi;
use crate::splice::{
    FlightRecorder, SpliceDecision, SpliceQuery, SpliceStats,
};
use crate::transport::Fabric;

/// Shared job control block.
///
/// * `abort()` — the failure detector (or recovery harness) declares the
///   current execution attempt dead; every blocking MPI call in every rank
///   returns [`crate::MpiError::Aborted`] so rank functions unwind promptly.
/// * `fail_rank(r)` — inject a stopping failure at rank `r`: its next MPI
///   call returns [`crate::MpiError::FailStop`] and it must go silent, mimicking a
///   hung process under the paper's stopping-failure model.
///
/// A fresh `JobControl` is created per execution attempt; it is cheap to
/// clone (shared interior).
#[derive(Clone)]
pub struct JobControl {
    inner: Arc<ControlInner>,
}

struct ControlInner {
    aborted: AtomicBool,
    failed: Vec<AtomicBool>,
    done: Vec<AtomicBool>,
    /// When set (supervised jobs), the reliable-delivery sublayer *holds*
    /// traffic to a failed rank instead of writing it off: a supervisor
    /// may splice in a new incarnation that will drain it.
    hold_failed_traffic: AtomicBool,
}

impl JobControl {
    /// Control block for a job of `n` ranks.
    pub fn new(n: usize) -> Self {
        JobControl {
            inner: Arc::new(ControlInner {
                aborted: AtomicBool::new(false),
                failed: (0..n).map(|_| AtomicBool::new(false)).collect(),
                done: (0..n).map(|_| AtomicBool::new(false)).collect(),
                hold_failed_traffic: AtomicBool::new(false),
            }),
        }
    }

    /// Declare the attempt dead; unblocks every rank with `Aborted`.
    pub fn abort(&self) {
        self.inner.aborted.store(true, Ordering::Release);
    }

    /// Whether the attempt has been aborted.
    pub fn is_aborted(&self) -> bool {
        self.inner.aborted.load(Ordering::Acquire)
    }

    /// Inject a stopping failure at `rank`.
    pub fn fail_rank(&self, rank: usize) {
        if let Some(flag) = self.inner.failed.get(rank) {
            flag.store(true, Ordering::Release);
        }
    }

    /// Whether `rank` has fail-stopped.
    pub fn is_failed(&self, rank: usize) -> bool {
        self.inner
            .failed
            .get(rank)
            .is_some_and(|f| f.load(Ordering::Acquire))
    }

    /// Whether any rank has fail-stopped (what a perfect distributed
    /// failure detector would eventually report to the runtime).
    pub fn any_failed(&self) -> bool {
        self.inner.failed.iter().any(|f| f.load(Ordering::Acquire))
    }

    /// Clear `rank`'s fail-stop flag: its next incarnation is live. Only
    /// the splice supervisor calls this, after the dead incarnation's
    /// thread has been joined.
    pub fn clear_failed(&self, rank: usize) {
        if let Some(flag) = self.inner.failed.get(rank) {
            flag.store(false, Ordering::Release);
        }
    }

    /// Ask peers to *hold* (keep retransmitting later, never write off)
    /// traffic to failed ranks, because a supervisor may splice in a new
    /// incarnation that will drain it. Set once before a supervised run.
    pub fn set_hold_failed_traffic(&self, hold: bool) {
        self.inner
            .hold_failed_traffic
            .store(hold, Ordering::Release);
    }

    /// Whether traffic to failed ranks is held for a possible respawn.
    pub fn holds_failed_traffic(&self) -> bool {
        self.inner.hold_failed_traffic.load(Ordering::Acquire)
    }

    /// Record that `rank`'s rank function has returned (it will issue no
    /// further MPI calls). The reliable-delivery sublayer uses this to
    /// write off unacknowledged frames to a departed rank instead of
    /// retransmitting into its abandoned mailbox forever — the in-process
    /// analogue of a connection's final ack being lost at close.
    pub fn mark_done(&self, rank: usize) {
        if let Some(flag) = self.inner.done.get(rank) {
            flag.store(true, Ordering::Release);
        }
    }

    /// Whether `rank`'s rank function has returned.
    pub fn is_done(&self, rank: usize) -> bool {
        self.inner
            .done
            .get(rank)
            .is_some_and(|f| f.load(Ordering::Acquire))
    }

    /// Number of ranks this control block covers.
    pub fn size(&self) -> usize {
        self.inner.failed.len()
    }
}

/// Entry point for running an `n`-rank job.
pub struct World;

impl World {
    /// Run `f` once per rank on its own thread and collect per-rank results.
    ///
    /// Unlike [`World::run`], individual rank errors (including injected
    /// `FailStop` and rollback `Aborted`) are returned per rank instead of
    /// failing the whole call — this is what the recovery harness uses.
    pub fn run_collect<T, F>(
        n: usize,
        control: JobControl,
        f: F,
    ) -> Vec<MpiResult<T>>
    where
        T: Send,
        F: Fn(&mut Mpi) -> MpiResult<T> + Send + Sync,
    {
        Self::run_collect_net(n, control, NetCond::perfect(), f)
    }

    /// Like [`World::run_collect`], but the fabric runs over the (possibly
    /// lossy) wire described by `cond`. With a perfect `cond` this is
    /// byte-for-byte the original direct-channel fabric.
    pub fn run_collect_net<T, F>(
        n: usize,
        control: JobControl,
        cond: NetCond,
        f: F,
    ) -> Vec<MpiResult<T>>
    where
        T: Send,
        F: Fn(&mut Mpi) -> MpiResult<T> + Send + Sync,
    {
        assert!(n > 0, "a job has at least one rank");
        assert_eq!(control.size(), n, "control block sized for wrong job");
        let (fabric, receivers) =
            Fabric::new_with_net(n, control.clone(), cond);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank, inbox) in receivers.into_iter().enumerate() {
                let fabric = fabric.clone();
                let control = control.clone();
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut mpi = Mpi::new(rank, n, fabric, inbox);
                    let out = f(&mut mpi);
                    // The rank stops issuing MPI calls now; let the
                    // sublayer write off whatever nobody will ever ack.
                    control.mark_done(rank);
                    match out {
                        // Linger until every frame this rank sent has been
                        // acknowledged, so late retransmission requests
                        // aren't orphaned by our exit.
                        Ok(v) => mpi.net_flush().map(|_| v),
                        err => err,
                    }
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }

    /// Run an `n`-rank job under a *splice supervisor*: survivors keep
    /// running across a rank's stopping failure, and the dead rank is
    /// respawned in place by deterministic replay of its consumed-message
    /// tape (see [`crate::splice`]).
    ///
    /// The supervisor (this thread) watches the fail-stop flags. When a
    /// rank dies it joins the dead thread, waits `detection_latency`
    /// (simulated failure-detection delay), and consults `policy`:
    /// [`SpliceDecision::Respawn`] splices in a fresh incarnation that
    /// replays the tape, squelches re-executed sends below the
    /// death-time sequence high-water, and resumes the dead rank's wire
    /// endpoint; [`SpliceDecision::Escalate`] aborts the attempt so the
    /// caller can fall back to a full rollback-restart.
    ///
    /// Returns each rank's final incarnation's result plus what the
    /// supervisor did. While supervised, peers *hold* reliable-delivery
    /// traffic to failed ranks instead of writing it off.
    pub fn run_supervised_net<T, F, P>(
        n: usize,
        control: JobControl,
        cond: NetCond,
        detection_latency: Duration,
        mut policy: P,
        f: F,
    ) -> (Vec<MpiResult<T>>, SpliceStats)
    where
        T: Send,
        F: Fn(&mut Mpi) -> MpiResult<T> + Send + Sync,
        P: FnMut(SpliceQuery) -> SpliceDecision,
    {
        assert!(n > 0, "a job has at least one rank");
        assert_eq!(control.size(), n, "control block sized for wrong job");
        control.set_hold_failed_traffic(true);
        let (fabric, receivers) =
            Fabric::new_with_net(n, control.clone(), cond);
        let recorder = Arc::new(FlightRecorder::new(n));
        let slots: Vec<Mutex<Option<MpiResult<T>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let mut stats = SpliceStats::default();
        let mut incarnations = vec![0u32; n];

        std::thread::scope(|scope| {
            let slots = &slots;
            let f = &f;
            let control2 = &control;
            let recorder2 = &recorder;
            let spawn_rank = |mut mpi: Mpi| {
                let rank = mpi.rank();
                scope.spawn(move || {
                    let out = f(&mut mpi);
                    match &out {
                        Err(MpiError::FailStop) => {
                            // Leave the successor's material behind; the
                            // rank is *not* marked done — its mailbox
                            // stays live for the incarnation to come.
                            recorder2.record_death(rank, mpi.export_stash());
                        }
                        _ => control2.mark_done(rank),
                    }
                    let out = match out {
                        Ok(v) => mpi.net_flush().map(|_| v),
                        err => err,
                    };
                    *slots[rank].lock().expect("result slot") = Some(out);
                })
            };

            let mut handles: Vec<Option<_>> = receivers
                .into_iter()
                .enumerate()
                .map(|(rank, inbox)| {
                    let mut mpi = Mpi::new(rank, n, fabric.clone(), inbox);
                    mpi.attach_recorder(recorder.clone());
                    Some(spawn_rank(mpi))
                })
                .collect();

            loop {
                let mut acted = false;
                for rank in 0..n {
                    if !control.is_failed(rank) {
                        continue;
                    }
                    let Some(handle) = handles[rank].take() else {
                        continue;
                    };
                    // The dying thread exits at its next liveness check;
                    // joining it guarantees the death stash is recorded.
                    handle.join().expect("rank thread panicked");
                    std::thread::sleep(detection_latency);
                    acted = true;
                    if control.is_aborted() {
                        continue;
                    }
                    let query = SpliceQuery {
                        rank,
                        rank_respawns: incarnations[rank],
                        total_respawns: stats.respawns,
                    };
                    match policy(query) {
                        SpliceDecision::Escalate => {
                            stats.escalated = true;
                            control.abort();
                        }
                        SpliceDecision::Respawn => {
                            let (mut stash, tape) = recorder
                                .begin_respawn(rank)
                                .expect("joined rank left no stash");
                            incarnations[rank] += 1;
                            stats.respawns += 1;
                            *slots[rank].lock().expect("result slot") = None;
                            let inbox = stash
                                .inbox
                                .take()
                                .expect("death stash carries the mailbox");
                            let mut mpi =
                                Mpi::new(rank, n, fabric.clone(), inbox);
                            mpi.configure_respawn(
                                incarnations[rank],
                                stash,
                                tape,
                            );
                            // Go live only once the successor exists:
                            // peers held traffic for it meanwhile.
                            control.clear_failed(rank);
                            handles[rank] = Some(spawn_rank(mpi));
                        }
                    }
                }
                if acted {
                    continue;
                }
                let all_finished = handles
                    .iter()
                    .all(|h| h.as_ref().is_none_or(|h| h.is_finished()));
                if all_finished
                    && (control.is_aborted() || !control.any_failed())
                {
                    break;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            for handle in handles.into_iter().flatten() {
                handle.join().expect("rank thread panicked");
            }
        });

        let results: Vec<MpiResult<T>> = slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("result slot")
                    .expect("every rank stored a result")
            })
            .collect();
        for (rank, res) in results.iter().enumerate() {
            if incarnations[rank] > 0 && res.is_ok() {
                stats.completed += 1;
            }
        }
        (results, stats)
    }

    /// Run `f` once per rank over the wire described by `cond`; returns
    /// every rank's output, or the first rank error encountered.
    pub fn run_net<T, F>(n: usize, cond: NetCond, f: F) -> MpiResult<Vec<T>>
    where
        T: Send,
        F: Fn(&mut Mpi) -> MpiResult<T> + Send + Sync,
    {
        let control = JobControl::new(n);
        let mut out = Vec::with_capacity(n);
        for r in Self::run_collect_net(n, control, cond, f) {
            out.push(r?);
        }
        Ok(out)
    }

    /// Run `f` once per rank; returns every rank's output, or the first
    /// rank error encountered (in rank order).
    pub fn run<T, F>(n: usize, f: F) -> MpiResult<Vec<T>>
    where
        T: Send,
        F: Fn(&mut Mpi) -> MpiResult<T> + Send + Sync,
    {
        let control = JobControl::new(n);
        let mut out = Vec::with_capacity(n);
        for r in Self::run_collect(n, control, f) {
            out.push(r?);
        }
        Ok(out)
    }
}

/// Give the world communicator for a freshly spawned rank. Used by `Mpi`.
pub(crate) fn world_comm(rank: usize, size: usize) -> Comm {
    Comm::world(rank, size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_flags() {
        let c = JobControl::new(3);
        assert!(!c.is_aborted());
        assert!(!c.any_failed());
        c.fail_rank(1);
        assert!(c.is_failed(1));
        assert!(!c.is_failed(0));
        assert!(c.any_failed());
        c.abort();
        assert!(c.is_aborted());
        // Out-of-range ranks are inert.
        c.fail_rank(99);
        assert!(!c.is_failed(99));
    }

    /// A deterministic ring exchange that kills `victim` mid-run (once,
    /// guarded by `killed`): every rank sends to its right neighbour and
    /// receives from its left each round, accumulating what it hears.
    fn ring_with_kill(
        rounds: u64,
        victim: usize,
        kill_round: u64,
        killed: &AtomicBool,
    ) -> impl Fn(&mut Mpi) -> MpiResult<u64> + Send + Sync + '_ {
        move |mpi| {
            let comm = mpi.world();
            let me = mpi.rank();
            let right = (me + 1) % mpi.size();
            let left = (me + mpi.size() - 1) % mpi.size();
            let mut acc = 0u64;
            for round in 0..rounds {
                mpi.send_t::<u64>(
                    &comm,
                    right,
                    7,
                    &[me as u64 * 1000 + round],
                )?;
                let got = mpi.recv_t::<u64>(&comm, left, 7)?;
                acc = acc.wrapping_mul(31).wrapping_add(got[0]);
                if round == kill_round
                    && me == victim
                    && !killed.swap(true, Ordering::SeqCst)
                {
                    mpi.control().fail_rank(victim);
                }
            }
            Ok(acc)
        }
    }

    #[test]
    fn supervised_run_without_failures_matches_plain() {
        let n = 4;
        let dead = AtomicBool::new(true); // already "killed": no injection
        let expected: Vec<u64> =
            World::run(n, ring_with_kill(8, 0, 0, &dead)).unwrap();
        let control = JobControl::new(n);
        let (results, stats) = World::run_supervised_net(
            n,
            control,
            NetCond::perfect(),
            Duration::from_millis(1),
            |_| SpliceDecision::Respawn,
            ring_with_kill(8, 0, 0, &dead),
        );
        let got: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, expected);
        assert_eq!(stats, SpliceStats::default());
    }

    #[test]
    fn supervised_splice_replays_dead_rank() {
        let n = 4;
        // Failure-free reference run.
        let dead = AtomicBool::new(true);
        let expected: Vec<u64> =
            World::run(n, ring_with_kill(20, 2, 10, &dead)).unwrap();

        // Same job, but rank 2 fail-stops at round 10 and is spliced back.
        let killed = AtomicBool::new(false);
        let control = JobControl::new(n);
        let (results, stats) = World::run_supervised_net(
            n,
            control,
            NetCond::perfect(),
            Duration::from_millis(1),
            |q| {
                assert_eq!(q.rank, 2);
                SpliceDecision::Respawn
            },
            ring_with_kill(20, 2, 10, &killed),
        );
        let got: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, expected, "splice must not perturb any rank");
        assert_eq!(stats.respawns, 1);
        assert_eq!(stats.completed, 1);
        assert!(!stats.escalated);
    }

    #[test]
    fn supervised_splice_survives_lossy_wire() {
        let n = 3;
        let dead = AtomicBool::new(true);
        let expected: Vec<u64> =
            World::run(n, ring_with_kill(12, 1, 5, &dead)).unwrap();

        let killed = AtomicBool::new(false);
        let control = JobControl::new(n);
        let (results, stats) = World::run_supervised_net(
            n,
            control,
            NetCond::lossy(0xC3),
            Duration::from_millis(1),
            |_| SpliceDecision::Respawn,
            ring_with_kill(12, 1, 5, &killed),
        );
        let got: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, expected);
        assert_eq!(stats.respawns, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn supervised_escalation_aborts_attempt() {
        let n = 4;
        let killed = AtomicBool::new(false);
        let control = JobControl::new(n);
        let (results, stats) = World::run_supervised_net(
            n,
            control,
            NetCond::perfect(),
            Duration::from_millis(1),
            |_| SpliceDecision::Escalate,
            ring_with_kill(20, 2, 10, &killed),
        );
        assert!(stats.escalated);
        assert_eq!(stats.respawns, 0);
        assert_eq!(results[2].as_ref().unwrap_err(), &MpiError::FailStop);
        // Survivors unblock with `Aborted` (they cannot finish the ring
        // without rank 2).
        assert!(results
            .iter()
            .enumerate()
            .filter(|(r, _)| *r != 2)
            .any(|(_, res)| res.as_ref().unwrap_err() == &MpiError::Aborted));
    }

    #[test]
    fn run_propagates_rank_results() {
        let out = World::run(3, |mpi| Ok(mpi.rank() * 10)).unwrap();
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn run_surfaces_first_error_in_rank_order() {
        let err = World::run(3, |mpi| {
            if mpi.rank() >= 1 {
                Err(MpiError::FailStop)
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err, MpiError::FailStop);
    }
}
