//! Job lifecycle: spawn ranks, run them, and coordinate abort/fail-stop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::comm::Comm;
#[cfg(test)]
use crate::error::MpiError;
use crate::error::MpiResult;
use crate::netsim::NetCond;
use crate::rank::Mpi;
use crate::transport::Fabric;

/// Shared job control block.
///
/// * `abort()` — the failure detector (or recovery harness) declares the
///   current execution attempt dead; every blocking MPI call in every rank
///   returns [`crate::MpiError::Aborted`] so rank functions unwind promptly.
/// * `fail_rank(r)` — inject a stopping failure at rank `r`: its next MPI
///   call returns [`crate::MpiError::FailStop`] and it must go silent, mimicking a
///   hung process under the paper's stopping-failure model.
///
/// A fresh `JobControl` is created per execution attempt; it is cheap to
/// clone (shared interior).
#[derive(Clone)]
pub struct JobControl {
    inner: Arc<ControlInner>,
}

struct ControlInner {
    aborted: AtomicBool,
    failed: Vec<AtomicBool>,
    done: Vec<AtomicBool>,
}

impl JobControl {
    /// Control block for a job of `n` ranks.
    pub fn new(n: usize) -> Self {
        JobControl {
            inner: Arc::new(ControlInner {
                aborted: AtomicBool::new(false),
                failed: (0..n).map(|_| AtomicBool::new(false)).collect(),
                done: (0..n).map(|_| AtomicBool::new(false)).collect(),
            }),
        }
    }

    /// Declare the attempt dead; unblocks every rank with `Aborted`.
    pub fn abort(&self) {
        self.inner.aborted.store(true, Ordering::Release);
    }

    /// Whether the attempt has been aborted.
    pub fn is_aborted(&self) -> bool {
        self.inner.aborted.load(Ordering::Acquire)
    }

    /// Inject a stopping failure at `rank`.
    pub fn fail_rank(&self, rank: usize) {
        if let Some(flag) = self.inner.failed.get(rank) {
            flag.store(true, Ordering::Release);
        }
    }

    /// Whether `rank` has fail-stopped.
    pub fn is_failed(&self, rank: usize) -> bool {
        self.inner
            .failed
            .get(rank)
            .is_some_and(|f| f.load(Ordering::Acquire))
    }

    /// Whether any rank has fail-stopped (what a perfect distributed
    /// failure detector would eventually report to the runtime).
    pub fn any_failed(&self) -> bool {
        self.inner.failed.iter().any(|f| f.load(Ordering::Acquire))
    }

    /// Record that `rank`'s rank function has returned (it will issue no
    /// further MPI calls). The reliable-delivery sublayer uses this to
    /// write off unacknowledged frames to a departed rank instead of
    /// retransmitting into its abandoned mailbox forever — the in-process
    /// analogue of a connection's final ack being lost at close.
    pub fn mark_done(&self, rank: usize) {
        if let Some(flag) = self.inner.done.get(rank) {
            flag.store(true, Ordering::Release);
        }
    }

    /// Whether `rank`'s rank function has returned.
    pub fn is_done(&self, rank: usize) -> bool {
        self.inner
            .done
            .get(rank)
            .is_some_and(|f| f.load(Ordering::Acquire))
    }

    /// Number of ranks this control block covers.
    pub fn size(&self) -> usize {
        self.inner.failed.len()
    }
}

/// Entry point for running an `n`-rank job.
pub struct World;

impl World {
    /// Run `f` once per rank on its own thread and collect per-rank results.
    ///
    /// Unlike [`World::run`], individual rank errors (including injected
    /// `FailStop` and rollback `Aborted`) are returned per rank instead of
    /// failing the whole call — this is what the recovery harness uses.
    pub fn run_collect<T, F>(
        n: usize,
        control: JobControl,
        f: F,
    ) -> Vec<MpiResult<T>>
    where
        T: Send,
        F: Fn(&mut Mpi) -> MpiResult<T> + Send + Sync,
    {
        Self::run_collect_net(n, control, NetCond::perfect(), f)
    }

    /// Like [`World::run_collect`], but the fabric runs over the (possibly
    /// lossy) wire described by `cond`. With a perfect `cond` this is
    /// byte-for-byte the original direct-channel fabric.
    pub fn run_collect_net<T, F>(
        n: usize,
        control: JobControl,
        cond: NetCond,
        f: F,
    ) -> Vec<MpiResult<T>>
    where
        T: Send,
        F: Fn(&mut Mpi) -> MpiResult<T> + Send + Sync,
    {
        assert!(n > 0, "a job has at least one rank");
        assert_eq!(control.size(), n, "control block sized for wrong job");
        let (fabric, receivers) =
            Fabric::new_with_net(n, control.clone(), cond);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank, inbox) in receivers.into_iter().enumerate() {
                let fabric = fabric.clone();
                let control = control.clone();
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut mpi = Mpi::new(rank, n, fabric, inbox);
                    let out = f(&mut mpi);
                    // The rank stops issuing MPI calls now; let the
                    // sublayer write off whatever nobody will ever ack.
                    control.mark_done(rank);
                    match out {
                        // Linger until every frame this rank sent has been
                        // acknowledged, so late retransmission requests
                        // aren't orphaned by our exit.
                        Ok(v) => mpi.net_flush().map(|_| v),
                        err => err,
                    }
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }

    /// Run `f` once per rank over the wire described by `cond`; returns
    /// every rank's output, or the first rank error encountered.
    pub fn run_net<T, F>(n: usize, cond: NetCond, f: F) -> MpiResult<Vec<T>>
    where
        T: Send,
        F: Fn(&mut Mpi) -> MpiResult<T> + Send + Sync,
    {
        let control = JobControl::new(n);
        let mut out = Vec::with_capacity(n);
        for r in Self::run_collect_net(n, control, cond, f) {
            out.push(r?);
        }
        Ok(out)
    }

    /// Run `f` once per rank; returns every rank's output, or the first
    /// rank error encountered (in rank order).
    pub fn run<T, F>(n: usize, f: F) -> MpiResult<Vec<T>>
    where
        T: Send,
        F: Fn(&mut Mpi) -> MpiResult<T> + Send + Sync,
    {
        let control = JobControl::new(n);
        let mut out = Vec::with_capacity(n);
        for r in Self::run_collect(n, control, f) {
            out.push(r?);
        }
        Ok(out)
    }
}

/// Give the world communicator for a freshly spawned rank. Used by `Mpi`.
pub(crate) fn world_comm(rank: usize, size: usize) -> Comm {
    Comm::world(rank, size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_flags() {
        let c = JobControl::new(3);
        assert!(!c.is_aborted());
        assert!(!c.any_failed());
        c.fail_rank(1);
        assert!(c.is_failed(1));
        assert!(!c.is_failed(0));
        assert!(c.any_failed());
        c.abort();
        assert!(c.is_aborted());
        // Out-of-range ranks are inert.
        c.fail_rank(99);
        assert!(!c.is_failed(99));
    }

    #[test]
    fn run_propagates_rank_results() {
        let out = World::run(3, |mpi| Ok(mpi.rank() * 10)).unwrap();
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn run_surfaces_first_error_in_rank_order() {
        let err = World::run(3, |mpi| {
            if mpi.rank() >= 1 {
                Err(MpiError::FailStop)
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err, MpiError::FailStop);
    }
}
