//! Thread-local buffer pool for the scratch buffers the collectives
//! genuinely must build (reduction accumulators, scan combine buffers,
//! chunk framing).
//!
//! The zero-copy message path removes every per-message allocation from
//! the point-to-point hot path; what remains are buffers whose *contents*
//! are new — a reduction result cannot be a view of any input. Those
//! buffers are short-lived and same-sized across iterations, the classic
//! freelist shape. The pool is thread-local because each rank is a
//! thread with its own `Mpi` handle; there is no cross-thread traffic and
//! therefore no locking.
//!
//! Rules (documented for DESIGN.md's "zero-copy message path" section):
//!
//! * [`take`] returns a cleared `Vec<u8>` with at least the requested
//!   capacity — from the freelist when one fits, freshly allocated
//!   otherwise.
//! * [`give`] returns a buffer to the freelist. Buffers smaller than
//!   [`MIN_POOLED_CAP`] or larger than [`MAX_POOLED_CAP`] are dropped
//!   (not worth pooling / would pin too much memory), and the freelist
//!   holds at most [`MAX_POOLED_BUFS`] buffers.
//! * A pooled buffer must never be converted into a shared [`bytes::Bytes`]
//!   while still owed back to the pool — give back only buffers the
//!   caller fully owns.

use std::cell::RefCell;

/// Smallest buffer capacity worth keeping on the freelist.
pub const MIN_POOLED_CAP: usize = 64;

/// Largest buffer capacity the pool will retain.
pub const MAX_POOLED_CAP: usize = 1 << 20;

/// Maximum number of buffers held per thread.
pub const MAX_POOLED_BUFS: usize = 8;

/// Counters describing a thread's pool activity (for tests and the
/// overhead benchmarks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers requested via [`take`].
    pub takes: u64,
    /// Requests satisfied from the freelist (no allocation).
    pub hits: u64,
    /// Buffers returned via [`give`].
    pub gives: u64,
    /// Returned buffers dropped (size limits or full freelist).
    pub dropped: u64,
}

struct PoolInner {
    free: Vec<Vec<u8>>,
    stats: PoolStats,
}

thread_local! {
    static POOL: RefCell<PoolInner> = RefCell::new(PoolInner {
        free: Vec::new(),
        stats: PoolStats::default(),
    });
}

/// Take a cleared buffer with capacity ≥ `min_cap` from this thread's
/// pool, allocating only when no pooled buffer fits.
///
/// Selection is *best-fit*: the smallest pooled buffer that satisfies
/// `min_cap`. First-fit would let a 64 B request consume a pooled
/// 1 MiB buffer and force the next large take to allocate; best-fit
/// keeps large buffers in reserve for large requests.
pub fn take(min_cap: usize) -> Vec<u8> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.stats.takes += 1;
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in p.free.iter().enumerate() {
            let cap = b.capacity();
            if cap >= min_cap && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        if let Some((i, _)) = best {
            p.stats.hits += 1;
            let mut buf = p.free.swap_remove(i);
            buf.clear();
            buf
        } else {
            Vec::with_capacity(min_cap)
        }
    })
}

/// Return a buffer to this thread's pool for reuse.
pub fn give(buf: Vec<u8>) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.stats.gives += 1;
        let cap = buf.capacity();
        if !(MIN_POOLED_CAP..=MAX_POOLED_CAP).contains(&cap)
            || p.free.len() >= MAX_POOLED_BUFS
        {
            p.stats.dropped += 1;
            return;
        }
        p.free.push(buf);
    });
}

/// This thread's cumulative pool counters.
pub fn stats() -> PoolStats {
    POOL.with(|p| p.borrow().stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_reuses_capacity() {
        let before = stats();
        let mut a = take(256);
        a.extend_from_slice(&[7; 200]);
        let cap = a.capacity();
        give(a);
        let b = take(128);
        assert!(b.is_empty(), "pooled buffers come back cleared");
        assert!(b.capacity() >= 128);
        assert_eq!(b.capacity(), cap, "freelist buffer was reused");
        let after = stats();
        assert_eq!(after.takes - before.takes, 2);
        assert!(after.hits > before.hits);
        assert_eq!(after.gives - before.gives, 1);
    }

    #[test]
    fn tiny_and_huge_buffers_are_not_pooled() {
        let before = stats();
        give(Vec::with_capacity(MIN_POOLED_CAP / 2));
        give(Vec::with_capacity(MAX_POOLED_CAP + 1));
        let after = stats();
        assert_eq!(after.dropped - before.dropped, 2);
    }

    #[test]
    fn best_fit_preserves_large_buffers_for_large_takes() {
        // Regression: first-fit let a small take strip the pooled
        // large buffer, forcing every subsequent large take to
        // allocate. With best-fit, interleaved small/large takes keep
        // the large buffer's hit rate at 100%.
        give(Vec::with_capacity(8192));
        give(Vec::with_capacity(128));
        let before = stats();
        for _ in 0..32 {
            let small = take(64);
            assert_eq!(
                small.capacity(),
                128,
                "small take must pick the small pooled buffer"
            );
            let large = take(8192);
            assert_eq!(
                large.capacity(),
                8192,
                "large take must always hit the pooled large buffer"
            );
            give(small);
            give(large);
        }
        let after = stats();
        assert_eq!(after.takes - before.takes, 64);
        assert_eq!(after.hits - before.hits, 64, "hit rate is 100%");
    }

    #[test]
    fn freelist_is_bounded() {
        // Saturate, then one more give must drop.
        for _ in 0..MAX_POOLED_BUFS + 4 {
            give(Vec::with_capacity(MIN_POOLED_CAP));
        }
        let before = stats();
        give(Vec::with_capacity(MIN_POOLED_CAP));
        assert_eq!(stats().dropped - before.dropped, 1);
    }
}
