//! Collective operations and communicator creation.
//!
//! All collectives are implemented with internal point-to-point messages on
//! the communicator's collective plane (context bit set), so they are
//! invisible to application receives — and, crucially for the paper's
//! architecture, the checkpointing protocol layer above intercepts
//! collectives as *whole calls*, never seeing these internals (Section 4.5:
//! "Had the layer been implemented between MPI and the operating
//! system/hardware layer, the protocol would have had to deal with all
//! these low-level point-to-point messages").
//!
//! Algorithms are chosen for determinism and simplicity at simulator scale
//! (≤ 64 ranks): binomial-tree broadcast, linear gather/reduce with
//! ascending-rank combination order (deterministic floating-point results),
//! dissemination barrier, pairwise all-to-all, linear-chain scan.

use bytes::Bytes;

use crate::comm::{Comm, COLLECTIVE_BIT};
use crate::datatype::{DType, MpiType, ReduceOp};
use crate::error::{MpiError, MpiResult};
use crate::rank::{Mpi, Plane};

/// Opcode nibble mixed into internal collective tags.
#[derive(Clone, Copy)]
enum CollOp {
    Barrier = 0,
    Bcast = 1,
    Gather = 2,
    Scatter = 3,
    // 4 reserved: reductions ride on Gather/Bcast internally.
    Alltoall = 5,
    Scan = 6,
    CtxAgree = 7,
}

fn coll_tag(seq: u32, op: CollOp, round: u32) -> i32 {
    // seq: 20 bits, round: 8 bits, op: 4 bits — all positive i32 values.
    (((seq & 0xF_FFFF) << 12) | ((round & 0xFF) << 4) | (op as u32)) as i32
}

/// Frame a list of byte chunks into one payload (used when a gathered
/// result is re-broadcast). The output has exact capacity, so converting
/// it to [`Bytes`] is a move, not a copy.
fn frame_chunks(chunks: &[Bytes]) -> Vec<u8> {
    let total: usize = 8 + chunks.iter().map(|c| 8 + c.len()).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&(chunks.len() as u64).to_le_bytes());
    for c in chunks {
        out.extend_from_slice(&(c.len() as u64).to_le_bytes());
        out.extend_from_slice(c);
    }
    out
}

/// Split a framed payload back into its chunks. Each chunk is a
/// refcounted slice of `payload` — no per-chunk allocation or copy.
fn unframe_chunks(payload: &Bytes) -> MpiResult<Vec<Bytes>> {
    let err = || MpiError::BadPayload("malformed framed chunks".into());
    let mut pos = 0usize;
    let read_len = |pos: &mut usize| -> MpiResult<usize> {
        if payload.len() - *pos < 8 {
            return Err(err());
        }
        let n = u64::from_le_bytes(payload[*pos..*pos + 8].try_into().unwrap())
            as usize;
        *pos += 8;
        Ok(n)
    };
    let count = read_len(&mut pos)?;
    let mut chunks = Vec::with_capacity(count.min(payload.len()));
    for _ in 0..count {
        let len = read_len(&mut pos)?;
        if payload.len() - pos < len {
            return Err(err());
        }
        chunks.push(payload.slice(pos..pos + len));
        pos += len;
    }
    if pos != payload.len() {
        return Err(err());
    }
    Ok(chunks)
}

impl Mpi {
    fn csend(
        &mut self,
        comm: &Comm,
        dst: usize,
        tag: i32,
        payload: Bytes,
    ) -> MpiResult<()> {
        self.send_on(comm, Plane::Coll, dst, tag, payload)
    }

    fn crecv(
        &mut self,
        comm: &Comm,
        src: usize,
        tag: i32,
    ) -> MpiResult<Bytes> {
        Ok(self.recv_on(comm, Plane::Coll, src, tag)?.payload)
    }

    // ------------------------------------------------------------------
    // Barrier
    // ------------------------------------------------------------------

    /// Synchronize all members (the `MPI_Barrier` analogue); dissemination
    /// algorithm, ⌈log₂ n⌉ rounds.
    pub fn barrier(&mut self, comm: &Comm) -> MpiResult<()> {
        let n = comm.size();
        if n == 1 {
            return Ok(());
        }
        let me = comm.rank();
        let seq = comm.next_coll_seq();
        let mut round = 0u32;
        let mut dist = 1usize;
        while dist < n {
            let dst = (me + dist) % n;
            let src = (me + n - dist) % n;
            let tag = coll_tag(seq, CollOp::Barrier, round);
            self.csend(comm, dst, tag, Bytes::new())?;
            self.crecv(comm, src, tag)?;
            dist *= 2;
            round += 1;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Broadcast
    // ------------------------------------------------------------------

    /// Broadcast `root`'s payload to all members (the `MPI_Bcast`
    /// analogue). Non-root callers' `data` is ignored; everyone receives
    /// the root's bytes. Binomial tree.
    pub fn bcast(
        &mut self,
        comm: &Comm,
        root: usize,
        data: Bytes,
    ) -> MpiResult<Bytes> {
        let n = comm.size();
        if root >= n {
            return Err(MpiError::InvalidRank {
                rank: root,
                size: n,
            });
        }
        if n == 1 {
            return Ok(data);
        }
        let me = comm.rank();
        let vr = (me + n - root) % n; // rank relative to root
        let seq = comm.next_coll_seq();
        let tag = coll_tag(seq, CollOp::Bcast, 0);

        let mut buf = if me == root { data } else { Bytes::new() };

        // Receive phase: find the bit where our subtree was reached.
        let mut mask = 1usize;
        while mask < n {
            if vr & mask != 0 {
                let src = (vr - mask + root) % n;
                buf = self.crecv(comm, src, tag)?;
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to subtrees below our bit.
        mask >>= 1;
        while mask > 0 {
            if vr + mask < n {
                let dst = (vr + mask + root) % n;
                self.csend(comm, dst, tag, buf.clone())?;
            }
            mask >>= 1;
        }
        Ok(buf)
    }

    /// Typed broadcast; returns the root's slice at every rank.
    pub fn bcast_t<T: MpiType>(
        &mut self,
        comm: &Comm,
        root: usize,
        data: &[T],
    ) -> MpiResult<Vec<T>> {
        let payload = if comm.rank() == root {
            Bytes::from(T::slice_to_bytes(data))
        } else {
            Bytes::new()
        };
        let out = self.bcast(comm, root, payload)?;
        T::bytes_to_vec(&out)
    }

    // ------------------------------------------------------------------
    // Gather / Scatter
    // ------------------------------------------------------------------

    /// Gather every member's payload at `root` (the `MPI_Gather` analogue,
    /// ragged payloads allowed). Returns `Some(chunks)` — indexed by
    /// communicator rank — at the root, `None` elsewhere. Received chunks
    /// are the senders' payloads by refcount, never re-copied.
    pub fn gather(
        &mut self,
        comm: &Comm,
        root: usize,
        data: &[u8],
    ) -> MpiResult<Option<Vec<Bytes>>> {
        let n = comm.size();
        if root >= n {
            return Err(MpiError::InvalidRank {
                rank: root,
                size: n,
            });
        }
        let me = comm.rank();
        let seq = comm.next_coll_seq();
        let tag = coll_tag(seq, CollOp::Gather, 0);
        if me == root {
            let mut chunks = vec![Bytes::new(); n];
            chunks[me] = Bytes::copy_from_slice(data);
            for (src, chunk) in chunks.iter_mut().enumerate() {
                if src != me {
                    *chunk = self.crecv(comm, src, tag)?;
                }
            }
            Ok(Some(chunks))
        } else {
            self.csend(comm, root, tag, Bytes::copy_from_slice(data))?;
            Ok(None)
        }
    }

    /// Typed gather.
    pub fn gather_t<T: MpiType>(
        &mut self,
        comm: &Comm,
        root: usize,
        data: &[T],
    ) -> MpiResult<Option<Vec<Vec<T>>>> {
        match self.gather(comm, root, &T::slice_to_bytes(data))? {
            None => Ok(None),
            Some(chunks) => {
                let mut out = Vec::with_capacity(chunks.len());
                for c in &chunks {
                    out.push(T::bytes_to_vec(c)?);
                }
                Ok(Some(out))
            }
        }
    }

    /// Gather every member's payload at every member (the `MPI_Allgather`
    /// analogue, ragged payloads allowed). `chunks[r]` is rank `r`'s data,
    /// a refcounted slice of the one broadcast buffer.
    pub fn allgather(
        &mut self,
        comm: &Comm,
        data: &[u8],
    ) -> MpiResult<Vec<Bytes>> {
        let gathered = self.gather(comm, 0, data)?;
        let framed = match gathered {
            Some(chunks) => Bytes::from(frame_chunks(&chunks)),
            None => Bytes::new(),
        };
        let bcasted = self.bcast(comm, 0, framed)?;
        unframe_chunks(&bcasted)
    }

    /// Typed allgather returning per-rank vectors.
    pub fn allgather_t<T: MpiType>(
        &mut self,
        comm: &Comm,
        data: &[T],
    ) -> MpiResult<Vec<Vec<T>>> {
        let chunks = self.allgather(comm, &T::slice_to_bytes(data))?;
        let mut out = Vec::with_capacity(chunks.len());
        for c in &chunks {
            out.push(T::bytes_to_vec(c)?);
        }
        Ok(out)
    }

    /// Typed allgather returning the concatenation in rank order (the
    /// contiguous-buffer shape of `MPI_Allgather`).
    pub fn allgather_flat_t<T: MpiType>(
        &mut self,
        comm: &Comm,
        data: &[T],
    ) -> MpiResult<Vec<T>> {
        Ok(self
            .allgather_t(comm, data)?
            .into_iter()
            .flatten()
            .collect())
    }

    /// Distribute `root`'s per-rank chunks (the `MPI_Scatter` analogue,
    /// ragged chunks allowed). Non-roots pass `None` for `chunks`. Every
    /// chunk travels — and is returned — by refcount.
    pub fn scatter(
        &mut self,
        comm: &Comm,
        root: usize,
        chunks: Option<&[Bytes]>,
    ) -> MpiResult<Bytes> {
        let n = comm.size();
        if root >= n {
            return Err(MpiError::InvalidRank {
                rank: root,
                size: n,
            });
        }
        let me = comm.rank();
        // Validate arguments *before* consuming a collective sequence
        // number: a local error must not desynchronize this rank's
        // sequence counter from its peers'.
        if me == root {
            let chunks = chunks.ok_or_else(|| {
                MpiError::CollectiveMismatch(
                    "scatter root must supply chunks".into(),
                )
            })?;
            if chunks.len() != n {
                return Err(MpiError::CollectiveMismatch(format!(
                    "scatter root supplied {} chunks for {n} ranks",
                    chunks.len()
                )));
            }
        }
        let seq = comm.next_coll_seq();
        let tag = coll_tag(seq, CollOp::Scatter, 0);
        if me == root {
            let chunks = chunks.expect("validated above");
            for (dst, chunk) in chunks.iter().enumerate() {
                if dst != me {
                    self.csend(comm, dst, tag, chunk.clone())?;
                }
            }
            Ok(chunks[me].clone())
        } else {
            self.crecv(comm, root, tag)
        }
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Element-wise reduction to `root` (the `MPI_Reduce` analogue).
    /// Contributions are combined in ascending communicator-rank order, so
    /// floating-point results are deterministic. Returns `Some` at root.
    pub fn reduce_t<T: MpiType>(
        &mut self,
        comm: &Comm,
        root: usize,
        op: ReduceOp,
        data: &[T],
    ) -> MpiResult<Option<Vec<T>>> {
        let bytes = self.reduce_bytes(
            comm,
            root,
            op,
            T::DTYPE,
            &T::slice_to_bytes(data),
        )?;
        match bytes {
            None => Ok(None),
            Some(b) => {
                let out = T::bytes_to_vec(&b)?;
                crate::pool::give(b);
                Ok(Some(out))
            }
        }
    }

    /// Byte-level reduction to `root`.
    ///
    /// The returned accumulator comes from the thread-local
    /// [`crate::pool`]; callers that are done with it may
    /// [`crate::pool::give`] it back.
    pub fn reduce_bytes(
        &mut self,
        comm: &Comm,
        root: usize,
        op: ReduceOp,
        dtype: DType,
        data: &[u8],
    ) -> MpiResult<Option<Vec<u8>>> {
        dtype.check(data)?;
        let chunks = self.gather(comm, root, data)?;
        match chunks {
            None => Ok(None),
            Some(chunks) => {
                let mut iter = chunks.into_iter();
                let first = iter.next().ok_or_else(|| {
                    MpiError::CollectiveMismatch("empty reduce group".into())
                })?;
                let mut acc = crate::pool::take(first.len());
                acc.extend_from_slice(&first);
                for chunk in iter {
                    op.combine(dtype, &mut acc, &chunk)?;
                }
                Ok(Some(acc))
            }
        }
    }

    /// Element-wise reduction delivered to every member (the
    /// `MPI_Allreduce` analogue). Reduce-to-0 followed by broadcast.
    pub fn allreduce_t<T: MpiType>(
        &mut self,
        comm: &Comm,
        op: ReduceOp,
        data: &[T],
    ) -> MpiResult<Vec<T>> {
        let bytes = self.allreduce_bytes(
            comm,
            op,
            T::DTYPE,
            &T::slice_to_bytes(data),
        )?;
        T::bytes_to_vec(&bytes)
    }

    /// Byte-level allreduce. The result is the broadcast buffer itself,
    /// shared by refcount at every rank.
    pub fn allreduce_bytes(
        &mut self,
        comm: &Comm,
        op: ReduceOp,
        dtype: DType,
        data: &[u8],
    ) -> MpiResult<Bytes> {
        let reduced = self.reduce_bytes(comm, 0, op, dtype, data)?;
        let payload = match reduced {
            // A pooled accumulator with spare capacity would be copied by
            // `Bytes::from`; share it with one explicit copy and return
            // the buffer to the pool instead of leaking the capacity.
            Some(b) if b.capacity() == b.len() => Bytes::from(b),
            Some(b) => {
                let out = Bytes::copy_from_slice(&b);
                crate::pool::give(b);
                out
            }
            None => Bytes::new(),
        };
        self.bcast(comm, 0, payload)
    }

    /// Inclusive prefix reduction (the `MPI_Scan` analogue): rank `r`
    /// receives `op(data_0, …, data_r)`. Linear chain.
    pub fn scan_t<T: MpiType>(
        &mut self,
        comm: &Comm,
        op: ReduceOp,
        data: &[T],
    ) -> MpiResult<Vec<T>> {
        let n = comm.size();
        let me = comm.rank();
        let seq = comm.next_coll_seq();
        let tag = coll_tag(seq, CollOp::Scan, 0);
        let mut acc = T::slice_to_bytes(data);
        T::DTYPE.check(&acc)?;
        if me > 0 {
            let prev = self.crecv(comm, me - 1, tag)?;
            let mut combined = crate::pool::take(prev.len());
            combined.extend_from_slice(&prev);
            op.combine(T::DTYPE, &mut combined, &acc)?;
            crate::pool::give(std::mem::replace(&mut acc, combined));
        }
        if me + 1 < n {
            self.csend(comm, me + 1, tag, Bytes::copy_from_slice(&acc))?;
        }
        let out = T::bytes_to_vec(&acc)?;
        crate::pool::give(acc);
        Ok(out)
    }

    // ------------------------------------------------------------------
    // All-to-all
    // ------------------------------------------------------------------

    /// Personalized all-to-all exchange (the `MPI_Alltoall` analogue,
    /// ragged chunks allowed). `chunks[d]` goes to rank `d`; the result's
    /// entry `s` came from rank `s`. Chunks travel by refcount in both
    /// directions.
    pub fn alltoall(
        &mut self,
        comm: &Comm,
        chunks: &[Bytes],
    ) -> MpiResult<Vec<Bytes>> {
        let n = comm.size();
        let me = comm.rank();
        if chunks.len() != n {
            return Err(MpiError::CollectiveMismatch(format!(
                "alltoall supplied {} chunks for {n} ranks",
                chunks.len()
            )));
        }
        let seq = comm.next_coll_seq();
        let tag = coll_tag(seq, CollOp::Alltoall, 0);
        // Post every receive first, then send — deadlock-free regardless of
        // transport buffering.
        let mut reqs = Vec::with_capacity(n - 1);
        for src in (0..n).filter(|&s| s != me) {
            reqs.push((src, self.irecv_on(comm, Plane::Coll, src, tag)?));
        }
        for dst in (0..n).filter(|&d| d != me) {
            self.csend(comm, dst, tag, chunks[dst].clone())?;
        }
        let mut out = vec![Bytes::new(); n];
        out[me] = chunks[me].clone();
        for (src, mut req) in reqs {
            let msg = self.wait_recv(comm, &mut req)?;
            out[src] = msg.payload;
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Communicator creation (collective context agreement)
    // ------------------------------------------------------------------

    /// Agree on a fresh context id across the members of `comm`.
    fn agree_context(&mut self, comm: &Comm) -> MpiResult<u32> {
        let n = comm.size();
        let me = comm.rank();
        let seq = comm.next_coll_seq();
        let tag = coll_tag(seq, CollOp::CtxAgree, 0);
        // Small hand-rolled max-allreduce (cannot reuse reduce_bytes: that
        // would recurse through gather's own seq accounting — fine, but the
        // explicit version keeps context agreement independent and simple).
        let mut max = self.next_ctx_hint;
        if me == 0 {
            for src in 1..n {
                let b = self.crecv(comm, src, tag)?;
                let v =
                    u32::from_le_bytes(b[..4].try_into().map_err(|_| {
                        MpiError::BadPayload("short ctx hint".into())
                    })?);
                max = max.max(v);
            }
        } else {
            self.csend(
                comm,
                0,
                tag,
                Bytes::copy_from_slice(&self.next_ctx_hint.to_le_bytes()),
            )?;
        }
        let agreed =
            self.bcast(comm, 0, Bytes::copy_from_slice(&max.to_le_bytes()))?;
        let ctx =
            u32::from_le_bytes(agreed[..4].try_into().map_err(|_| {
                MpiError::BadPayload("short agreed ctx".into())
            })?);
        assert!(ctx < COLLECTIVE_BIT, "communicator context space exhausted");
        self.next_ctx_hint = ctx + 1;
        Ok(ctx)
    }

    /// Duplicate a communicator: same membership, fresh isolated context
    /// (the `MPI_Comm_dup` analogue). Collective over `comm`.
    pub fn comm_dup(&mut self, comm: &Comm) -> MpiResult<Comm> {
        let ctx = self.agree_context(comm)?;
        Comm::from_parts(ctx, comm.members().to_vec(), self.rank())
    }

    /// Partition a communicator by `color` (the `MPI_Comm_split`
    /// analogue). Members passing the same non-negative color form a new
    /// communicator, ordered by `(key, old rank)`; a negative color opts
    /// out and yields `None`. Collective over `comm`.
    pub fn comm_split(
        &mut self,
        comm: &Comm,
        color: i32,
        key: i32,
    ) -> MpiResult<Option<Comm>> {
        let ctx = self.agree_context(comm)?;
        // Exchange (color, key, world_rank) triples.
        let mine = [color as i64, key as i64, self.rank() as i64];
        let all = self.allgather_t::<i64>(comm, &mine)?;
        if color < 0 {
            return Ok(None);
        }
        let mut group: Vec<(i64, i64, i64)> = all
            .iter()
            .filter(|t| t.len() == 3 && t[0] == color as i64)
            .map(|t| (t[1], t[2], t[0]))
            .collect();
        group.sort();
        let members: Vec<usize> =
            group.iter().map(|&(_, w, _)| w as usize).collect();
        Ok(Some(Comm::from_parts(ctx, members, self.rank())?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(data: &'static [u8]) -> Bytes {
        Bytes::from_static(data)
    }

    #[test]
    fn frame_round_trip() {
        let chunks = vec![
            chunk(&[1, 2, 3]),
            chunk(&[]),
            Bytes::copy_from_slice(&[9u8; 100]),
            chunk(&[42]),
        ];
        let framed = frame_chunks(&chunks);
        // Exact capacity: converting to Bytes must be a move, not a copy.
        assert_eq!(framed.capacity(), framed.len());
        assert_eq!(unframe_chunks(&Bytes::from(framed)).unwrap(), chunks);
    }

    #[test]
    fn unframed_chunks_share_the_framed_buffer() {
        let framed =
            Bytes::from(frame_chunks(&[chunk(&[1, 2, 3]), chunk(&[4])]));
        let parts = unframe_chunks(&framed).unwrap();
        // Each part is a slice of `framed`'s backing allocation.
        let base = framed.as_slice().as_ptr() as usize;
        for p in &parts {
            if p.is_empty() {
                continue;
            }
            let at = p.as_slice().as_ptr() as usize;
            assert!(at >= base && at < base + framed.len());
        }
    }

    #[test]
    fn unframe_rejects_garbage() {
        assert!(unframe_chunks(&Bytes::from_static(&[1, 2, 3])).is_err());
        let mut framed = frame_chunks(&[chunk(&[1, 2, 3])]);
        framed.truncate(framed.len() - 1);
        assert!(unframe_chunks(&Bytes::from(framed)).is_err());
        // Trailing junk is also rejected.
        let mut framed = frame_chunks(&[chunk(&[1, 2, 3])]);
        framed.push(0);
        assert!(unframe_chunks(&Bytes::from(framed)).is_err());
    }

    #[test]
    fn coll_tags_are_positive_and_distinct_across_ops() {
        let t1 = coll_tag(0, CollOp::Barrier, 0);
        let t2 = coll_tag(0, CollOp::Bcast, 0);
        let t3 = coll_tag(1, CollOp::Barrier, 0);
        let t4 = coll_tag(0, CollOp::Barrier, 1);
        assert!(t1 >= 0 && t2 >= 0 && t3 >= 0 && t4 >= 0);
        assert_ne!(t1, t2);
        assert_ne!(t1, t3);
        assert_ne!(t1, t4);
    }
}
