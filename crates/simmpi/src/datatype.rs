//! Datatypes and reduction operators.
//!
//! Payloads travel as raw bytes; typed views are provided by the [`MpiType`]
//! trait (the analogue of `MPI_Datatype` for the small set of types the
//! evaluation applications need) and reductions interpret byte payloads
//! element-wise according to a [`DType`].

use crate::error::{MpiError, MpiResult};

/// Element type of a reduction payload (the analogue of `MPI_Datatype` as
/// used by `MPI_Reduce`-family calls).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// Unsigned 8-bit integer.
    U8,
    /// Signed 32-bit integer.
    I32,
    /// Unsigned 32-bit integer.
    U32,
    /// Signed 64-bit integer.
    I64,
    /// Unsigned 64-bit integer.
    U64,
    /// IEEE-754 single-precision float.
    F32,
    /// IEEE-754 double-precision float.
    F64,
}

impl DType {
    /// Width of one element in bytes.
    pub fn width(self) -> usize {
        match self {
            DType::U8 => 1,
            DType::I32 | DType::U32 | DType::F32 => 4,
            DType::I64 | DType::U64 | DType::F64 => 8,
        }
    }

    /// Validate that `payload` is a whole number of elements.
    pub fn check(self, payload: &[u8]) -> MpiResult<usize> {
        let w = self.width();
        if !payload.len().is_multiple_of(w) {
            return Err(MpiError::BadPayload(format!(
                "payload of {} bytes is not a multiple of {w}-byte {:?}",
                payload.len(),
                self
            )));
        }
        Ok(payload.len() / w)
    }
}

/// Reduction operators (the analogue of `MPI_Op`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Element-wise sum (wrapping for integers).
    Sum,
    /// Element-wise product (wrapping for integers).
    Prod,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
    /// Logical AND (nonzero = true); result elements are 0 or 1.
    Land,
    /// Logical OR (nonzero = true); result elements are 0 or 1.
    Lor,
    /// Bitwise AND.
    Band,
    /// Bitwise OR.
    Bor,
}

macro_rules! combine_as {
    ($t:ty, $op:expr, $acc:expr, $other:expr) => {{
        let a = <$t>::from_le_bytes($acc.try_into().unwrap());
        let b = <$t>::from_le_bytes($other.try_into().unwrap());
        let r: $t = match $op {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Min => {
                if b < a {
                    b
                } else {
                    a
                }
            }
            ReduceOp::Max => {
                if b > a {
                    b
                } else {
                    a
                }
            }
            ReduceOp::Land
            | ReduceOp::Lor
            | ReduceOp::Band
            | ReduceOp::Bor => {
                unreachable!("logical/bitwise ops handled integrally")
            }
        };
        $acc.copy_from_slice(&r.to_le_bytes());
    }};
}

macro_rules! combine_int {
    ($t:ty, $op:expr, $acc:expr, $other:expr) => {{
        let a = <$t>::from_le_bytes($acc.try_into().unwrap());
        let b = <$t>::from_le_bytes($other.try_into().unwrap());
        let r: $t = match $op {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Prod => a.wrapping_mul(b),
            ReduceOp::Min => {
                if b < a {
                    b
                } else {
                    a
                }
            }
            ReduceOp::Max => {
                if b > a {
                    b
                } else {
                    a
                }
            }
            ReduceOp::Land => ((a != 0) && (b != 0)) as $t,
            ReduceOp::Lor => ((a != 0) || (b != 0)) as $t,
            ReduceOp::Band => a & b,
            ReduceOp::Bor => a | b,
        };
        $acc.copy_from_slice(&r.to_le_bytes());
    }};
}

impl ReduceOp {
    /// Combine `other` into `acc`, element-wise: `acc[i] = op(acc[i], other[i])`.
    ///
    /// Both slices must be the same length and a whole number of `dtype`
    /// elements. Reductions are applied in ascending-rank order by the
    /// collectives, so floating-point results are deterministic for a given
    /// communicator size.
    pub fn combine(
        self,
        dtype: DType,
        acc: &mut [u8],
        other: &[u8],
    ) -> MpiResult<()> {
        if acc.len() != other.len() {
            return Err(MpiError::BadPayload(format!(
                "reduce length mismatch: {} vs {} bytes",
                acc.len(),
                other.len()
            )));
        }
        dtype.check(acc)?;
        let w = dtype.width();
        if matches!(self, ReduceOp::Land | ReduceOp::Lor) {
            // Logical ops: interpret floats via "nonzero" too.
            for (a, b) in acc.chunks_exact_mut(w).zip(other.chunks_exact(w)) {
                let an = a.iter().any(|&x| x != 0);
                let bn = match dtype {
                    DType::F32 => {
                        f32::from_le_bytes(b.try_into().unwrap()) != 0.0
                    }
                    DType::F64 => {
                        f64::from_le_bytes(b.try_into().unwrap()) != 0.0
                    }
                    _ => b.iter().any(|&x| x != 0),
                };
                let an = match dtype {
                    DType::F32 => {
                        f32::from_le_bytes(a[..].try_into().unwrap()) != 0.0
                    }
                    DType::F64 => {
                        f64::from_le_bytes(a[..].try_into().unwrap()) != 0.0
                    }
                    _ => an,
                };
                let r = match self {
                    ReduceOp::Land => an && bn,
                    ReduceOp::Lor => an || bn,
                    _ => unreachable!(),
                };
                a.fill(0);
                a[0] = r as u8;
                // Re-encode as the dtype's representation of 1/0.
                match dtype {
                    DType::F32 => a.copy_from_slice(
                        &(if r { 1.0f32 } else { 0.0 }).to_le_bytes(),
                    ),
                    DType::F64 => a.copy_from_slice(
                        &(if r { 1.0f64 } else { 0.0 }).to_le_bytes(),
                    ),
                    _ => {}
                }
            }
            return Ok(());
        }
        if matches!(self, ReduceOp::Band | ReduceOp::Bor)
            && matches!(dtype, DType::F32 | DType::F64)
        {
            return Err(MpiError::BadPayload(
                "bitwise reduction on floating-point dtype".into(),
            ));
        }
        for (a, b) in acc.chunks_exact_mut(w).zip(other.chunks_exact(w)) {
            match dtype {
                DType::U8 => combine_int!(u8, self, a, b),
                DType::I32 => combine_int!(i32, self, a, b),
                DType::U32 => combine_int!(u32, self, a, b),
                DType::I64 => combine_int!(i64, self, a, b),
                DType::U64 => combine_int!(u64, self, a, b),
                DType::F32 => combine_as!(f32, self, a, b),
                DType::F64 => combine_as!(f64, self, a, b),
            }
        }
        Ok(())
    }
}

/// Rust types that map onto a [`DType`] and can be shipped as payloads.
///
/// This is the typed convenience layer; the wire format is always
/// little-endian bytes, so blobs are stable across save/restore.
pub trait MpiType: Copy + Send + 'static {
    /// The wire dtype for this Rust type.
    const DTYPE: DType;
    /// Append this value's little-endian encoding.
    fn write_to(self, out: &mut Vec<u8>);
    /// Decode one value from exactly `Self::DTYPE.width()` bytes.
    fn read_from(bytes: &[u8]) -> Self;

    /// Encode a slice of values to bytes.
    fn slice_to_bytes(vals: &[Self]) -> Vec<u8> {
        let mut out = Vec::with_capacity(vals.len() * Self::DTYPE.width());
        for &v in vals {
            v.write_to(&mut out);
        }
        out
    }

    /// Decode a byte payload into values; errors if the length is ragged.
    fn bytes_to_vec(bytes: &[u8]) -> MpiResult<Vec<Self>> {
        let n = Self::DTYPE.check(bytes)?;
        let w = Self::DTYPE.width();
        Ok((0..n)
            .map(|i| Self::read_from(&bytes[i * w..(i + 1) * w]))
            .collect())
    }
}

macro_rules! impl_mpi_type {
    ($t:ty, $dt:expr) => {
        impl MpiType for $t {
            const DTYPE: DType = $dt;
            fn write_to(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read_from(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().unwrap())
            }
        }
    };
}

impl_mpi_type!(u8, DType::U8);
impl_mpi_type!(i32, DType::I32);
impl_mpi_type!(u32, DType::U32);
impl_mpi_type!(i64, DType::I64);
impl_mpi_type!(u64, DType::U64);
impl_mpi_type!(f32, DType::F32);
impl_mpi_type!(f64, DType::F64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_check() {
        assert_eq!(DType::F64.width(), 8);
        assert_eq!(DType::U8.width(), 1);
        assert_eq!(DType::F64.check(&[0u8; 24]).unwrap(), 3);
        assert!(DType::F64.check(&[0u8; 20]).is_err());
    }

    #[test]
    fn sum_f64() {
        let mut acc = f64::slice_to_bytes(&[1.0, 2.0, 3.0]);
        let other = f64::slice_to_bytes(&[10.0, 20.0, 30.0]);
        ReduceOp::Sum.combine(DType::F64, &mut acc, &other).unwrap();
        assert_eq!(f64::bytes_to_vec(&acc).unwrap(), vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn min_max_i64() {
        let mut acc = i64::slice_to_bytes(&[5, -2]);
        let other = i64::slice_to_bytes(&[3, 7]);
        ReduceOp::Min.combine(DType::I64, &mut acc, &other).unwrap();
        assert_eq!(i64::bytes_to_vec(&acc).unwrap(), vec![3, -2]);
        let mut acc = i64::slice_to_bytes(&[5, -2]);
        ReduceOp::Max.combine(DType::I64, &mut acc, &other).unwrap();
        assert_eq!(i64::bytes_to_vec(&acc).unwrap(), vec![5, 7]);
    }

    #[test]
    fn prod_u32_wraps() {
        let mut acc = u32::slice_to_bytes(&[u32::MAX]);
        let other = u32::slice_to_bytes(&[2]);
        ReduceOp::Prod
            .combine(DType::U32, &mut acc, &other)
            .unwrap();
        assert_eq!(
            u32::bytes_to_vec(&acc).unwrap(),
            vec![u32::MAX.wrapping_mul(2)]
        );
    }

    #[test]
    fn logical_ops() {
        let mut acc = u8::slice_to_bytes(&[1, 0, 5]);
        let other = u8::slice_to_bytes(&[1, 0, 0]);
        ReduceOp::Land.combine(DType::U8, &mut acc, &other).unwrap();
        assert_eq!(u8::bytes_to_vec(&acc).unwrap(), vec![1, 0, 0]);

        let mut acc = u8::slice_to_bytes(&[1, 0, 5]);
        ReduceOp::Lor.combine(DType::U8, &mut acc, &other).unwrap();
        assert_eq!(u8::bytes_to_vec(&acc).unwrap(), vec![1, 0, 1]);
    }

    #[test]
    fn logical_ops_on_f64() {
        let mut acc = f64::slice_to_bytes(&[1.5, 0.0]);
        let other = f64::slice_to_bytes(&[2.0, 0.0]);
        ReduceOp::Land
            .combine(DType::F64, &mut acc, &other)
            .unwrap();
        assert_eq!(f64::bytes_to_vec(&acc).unwrap(), vec![1.0, 0.0]);
    }

    #[test]
    fn bitwise_ops() {
        let mut acc = u64::slice_to_bytes(&[0b1100]);
        let other = u64::slice_to_bytes(&[0b1010]);
        ReduceOp::Band
            .combine(DType::U64, &mut acc, &other)
            .unwrap();
        assert_eq!(u64::bytes_to_vec(&acc).unwrap(), vec![0b1000]);
        let mut acc = u64::slice_to_bytes(&[0b1100]);
        ReduceOp::Bor.combine(DType::U64, &mut acc, &other).unwrap();
        assert_eq!(u64::bytes_to_vec(&acc).unwrap(), vec![0b1110]);
    }

    #[test]
    fn bitwise_on_float_is_an_error() {
        let mut acc = f64::slice_to_bytes(&[1.0]);
        let other = f64::slice_to_bytes(&[2.0]);
        assert!(ReduceOp::Band
            .combine(DType::F64, &mut acc, &other)
            .is_err());
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let mut acc = vec![0u8; 8];
        assert!(ReduceOp::Sum
            .combine(DType::F64, &mut acc, &[0u8; 16])
            .is_err());
    }

    #[test]
    fn typed_round_trips() {
        let xs = [1.5f64, -2.25, 0.0];
        let bytes = f64::slice_to_bytes(&xs);
        assert_eq!(f64::bytes_to_vec(&bytes).unwrap(), xs);
        assert!(f64::bytes_to_vec(&bytes[..7]).is_err());

        let ys = [i32::MIN, 0, i32::MAX];
        let bytes = i32::slice_to_bytes(&ys);
        assert_eq!(i32::bytes_to_vec(&bytes).unwrap(), ys);
    }
}
