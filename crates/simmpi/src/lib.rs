//! `simmpi` — an in-process MPI-like message-passing runtime.
//!
//! This crate is the "MPI library" layer of the PPoPP 2003 C³ system
//! architecture (Figure 2 of *Automated Application-level Checkpointing of
//! MPI Programs*). The checkpointing protocol layer in `c3-core` sits on top
//! of it and treats it as a **black box reachable only through its
//! interface** — exactly the constraint the paper imposes (Section 3.5: "our
//! problem is to record and recover the state of the MPI library using only
//! the MPI interface").
//!
//! Design choices that mirror MPI semantics relevant to the paper:
//!
//! * **Ranks are OS threads** inside one process; the transport is a
//!   reliable, per-sender-FIFO channel per destination (the paper assumes a
//!   reliable message delivery substrate, Section 1.1).
//! * **Tag/source matching** happens at the receiver: an application can
//!   receive messages from the same sender *out of send order* by using
//!   different tags — the non-FIFO behaviour at application level that
//!   breaks Chandy-Lamport-style protocols (Section 3.3).
//! * **Non-blocking requests** (`isend`/`irecv`/`wait`/`test`) with the
//!   delivery-point semantics of Section 2: a message counts as *received*
//!   when it is delivered to the application (at `wait`), not when `irecv`
//!   was posted.
//! * **Communicators** with collective-consistent context identifiers,
//!   `dup` and `split`, and a set of collectives (barrier, bcast, reduce,
//!   allreduce, gather, allgather, scatter, alltoall, scan) implemented over
//!   internal point-to-point messages, invisible to the layer above.
//! * **Abortable blocking**: every blocking call watches a shared
//!   [`world::JobControl`]; when the failure detector declares a stopping
//!   failure the whole job unblocks with [`error::MpiError::Aborted`], which
//!   is how the recovery harness rolls every rank back to the last committed
//!   checkpoint.
//!
//! # Quick start
//!
//! ```
//! use simmpi::{World, MpiResult};
//!
//! let outputs = World::run(4, |mpi| -> MpiResult<u64> {
//!     let comm = mpi.world();
//!     let me = mpi.rank() as u64;
//!     let total = mpi.allreduce_t::<u64>(&comm, simmpi::ReduceOp::Sum, &[me])?;
//!     Ok(total[0])
//! })
//! .unwrap();
//! assert_eq!(outputs, vec![6, 6, 6, 6]);
//! ```

#![deny(missing_docs)]

pub mod collective;
pub mod comm;
pub mod datatype;
pub mod envelope;
pub mod error;
pub mod matching;
pub mod netsim;
#[cfg(feature = "obs")]
pub(crate) mod obs;
pub mod pool;
pub mod rank;
pub mod request;
pub mod splice;
pub mod transport;
pub mod world;

pub use comm::Comm;
pub use datatype::{DType, MpiType, ReduceOp};
pub use envelope::{HeaderBytes, Message, RecvMsg, MAX_HEADER_LEN};
pub use error::{MpiError, MpiResult};
pub use netsim::{NetCond, NetStats, Partition, RetransmitPolicy, WireStats};
pub use rank::{Mpi, ANY_SOURCE, ANY_TAG};
pub use request::Request;
pub use splice::{SpliceDecision, SpliceQuery, SpliceStats};
pub use world::{JobControl, World};
