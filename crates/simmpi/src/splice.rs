//! Online rank substitution: the flight recorder and supervision types
//! behind [`crate::World::run_supervised_net`].
//!
//! Full-job rollback (the paper's recovery model) throws away every
//! survivor's progress to repair one dead rank. The splice path keeps
//! survivors running: while a job executes under supervision, a
//! [`FlightRecorder`] tapes every message each rank *consumed* (in
//! matching-engine arrival order, tagged with the consuming rank's
//! operation count), and when a rank fail-stops the supervisor respawns it
//! as a fresh incarnation that deterministically re-executes the rank
//! function with the tape substituting for its peers:
//!
//! * messages are taped at the moment the dead incarnation *consumed*
//!   them (handed them to the caller), in consumption order, and
//!   released to the successor's matching engine strictly one at a
//!   time in that order — the head entry becomes visible only once
//!   the previously released entry has been consumed *and* the
//!   successor's operation count reaches `max(feed_op, consume_op -
//!   1)` (never before the original's physical arrival, and no
//!   earlier than the poll that found it: the control pump probes one
//!   operation before its consuming receive). Both gates matter:
//!   taping at consumption rather than at feed keeps *polled*
//!   consumption order-faithful (a message the original fed but never
//!   polled must not be consumed mid-replay at a point the original
//!   never reached), and one-at-a-time release sequences polls that
//!   share an operation count (the original may consume a message
//!   between two same-op probes, which no op threshold can tell
//!   apart). Messages fed but never consumed travel in the death
//!   stash instead and go live only after catch-up;
//! * re-executed sends are counted and squelched until the dead
//!   incarnation's per-(destination, context, tag) transmitted-frame
//!   budgets are spent — survivors already hold those messages, and the
//!   protocol layer's duplicate-suppression machinery never even sees a
//!   duplicate. Budgets are class-wise because replay may interleave
//!   control and application traffic differently than the original run;
//! * on a lossy wire the dead rank's reliable-delivery endpoint is
//!   resurrected into the new incarnation, so wire sequence numbers,
//!   retransmission buffers, and cumulative-ack state continue seamlessly
//!   (peers hold — rather than write off — traffic to a failed rank while
//!   a supervisor is in charge; see [`crate::JobControl`]).
//!
//! Determinism is what makes this sound: a rank's execution is a function
//! of its rank id, the attempt-scoped seed material derived from them by
//! the layers above, and the sequence of messages fed to its matching
//! engine. Replaying the consumed-message sequence at faithful op counts
//! reproduces the dead incarnation's execution exactly up to the death
//! point, after which the incarnation goes live on the real fabric.

use std::collections::VecDeque;

use crossbeam::channel::Receiver;
use parking_lot::Mutex;

use crate::envelope::Message;
use crate::netsim::{Frame, NetEndpoint};

/// A taped consumed message: the consuming rank's operation count at the
/// moment the message entered its matching engine, plus the message.
pub(crate) type TapeEntry = (u64, Message);

/// What a dying incarnation leaves behind for its successor.
pub(crate) struct DeathStash {
    /// Per-destination transmitted-frame counts at death, keyed by
    /// `(context, tag)`: the successor squelches re-executed sends of
    /// each class until its budget is spent.
    pub class_sent: Vec<std::collections::HashMap<(u32, i32), u64>>,
    /// The reliable-delivery endpoint (lossy wire only), carried over so
    /// wire sequencing continues into the new incarnation.
    pub net: Option<NetEndpoint>,
    /// The rank's mailbox, moved out of the dying incarnation so frames
    /// queued during the death window survive for the successor (the
    /// fabric's channels are single-consumer).
    pub inbox: Option<Receiver<Frame>>,
    /// Messages the dying incarnation fed to its matching engine but
    /// never handed to a caller (matched-but-unclaimed first, in match
    /// order, then the unexpected queue in arrival order). They are not
    /// on the consumption tape — the original never observed them — so
    /// the successor receives them only once catch-up ends.
    pub undelivered: Vec<Message>,
}

struct Tape {
    consumed: VecDeque<TapeEntry>,
    death: Option<DeathStash>,
}

/// Per-rank consumed-message tapes plus death stashes, shared between the
/// supervisor and every rank handle of a supervised job.
pub(crate) struct FlightRecorder {
    ranks: Vec<Mutex<Tape>>,
}

impl FlightRecorder {
    pub(crate) fn new(n: usize) -> Self {
        FlightRecorder {
            ranks: (0..n)
                .map(|_| {
                    Mutex::new(Tape {
                        consumed: VecDeque::new(),
                        death: None,
                    })
                })
                .collect(),
        }
    }

    /// Tape one message consumed by `rank` at operation count `at_op`.
    pub(crate) fn record(&self, rank: usize, at_op: u64, msg: &Message) {
        self.ranks[rank]
            .lock()
            .consumed
            .push_back((at_op, msg.clone()));
    }

    /// Record what a dying incarnation leaves behind (called by the rank
    /// thread as it unwinds from a fail-stop, before the supervisor joins
    /// it).
    pub(crate) fn record_death(&self, rank: usize, stash: DeathStash) {
        self.ranks[rank].lock().death = Some(stash);
    }

    /// Claim the material for respawning `rank`: its death stash and the
    /// consumed-message tape. Returns `None` if no death was recorded
    /// (the supervisor must only call this after joining a fail-stopped
    /// rank's thread). The tape is moved out — a second splice of the same
    /// rank is not supported (supervision policies escalate instead).
    pub(crate) fn begin_respawn(
        &self,
        rank: usize,
    ) -> Option<(DeathStash, VecDeque<TapeEntry>)> {
        let mut tape = self.ranks[rank].lock();
        let stash = tape.death.take()?;
        Some((stash, std::mem::take(&mut tape.consumed)))
    }
}

/// What the supervisor tells a splice policy about a freshly detected
/// rank death.
#[derive(Debug, Clone, Copy)]
pub struct SpliceQuery {
    /// The world rank that fail-stopped.
    pub rank: usize,
    /// How many times this rank has already been respawned this attempt.
    pub rank_respawns: u32,
    /// Total respawns performed this attempt (all ranks).
    pub total_respawns: usize,
}

/// A splice policy's verdict on a rank death.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpliceDecision {
    /// Splice in a new incarnation; survivors keep running.
    Respawn,
    /// Give up on online recovery: abort the attempt so the job driver
    /// falls back to a full rollback-restart.
    Escalate,
}

/// What a supervised run did about failures, alongside the per-rank
/// results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpliceStats {
    /// Respawns performed (incarnations spawned beyond the first).
    pub respawns: usize,
    /// Respawned ranks whose final incarnation ran to successful
    /// completion — the count of *completed* splices.
    pub completed: usize,
    /// True if a splice policy escalated and the attempt was aborted.
    pub escalated: bool,
}
