//! Observability handles for the message-passing layer (feature `obs`).
//!
//! All hot-path metrics are pre-registered handle bundles: attaching a
//! registry ([`crate::Mpi::attach_obs`]) pays the registration cost
//! once, and every subsequent record is a relaxed atomic add. The
//! per-message latency histograms are additionally *sampled* (1 in
//! [`SAMPLE_MASK`]` + 1` operations) so the `Instant::now()` calls
//! they need stay far below the ≤2% overhead budget the Figure-8
//! benchmark enforces; pure counters are always-on because a single
//! atomic add is in the noise.

use c3obs::{Counter, Histogram, Registry, Stopwatch};

/// Sampling mask for latency timing: a stopwatch is started when
/// `tick & SAMPLE_MASK == 0`, i.e. 1 in 16 operations.
pub(crate) const SAMPLE_MASK: u64 = 0xF;

/// Per-rank metric handles of the point-to-point layer.
///
/// The per-message counters are *buffered*: every note is a plain (non-
/// atomic) add into a local field, and the buffered totals flush into
/// the shared atomics on each sampling tick (1 in 16 operations) and on
/// drop. All hot-path sites hold `&mut Mpi`, so this is race-free; the
/// trade-off is that a snapshot taken while a rank is mid-flight can
/// lag by up to 15 messages — totals are exact once ranks finish
/// (every `World::run` joins its rank threads, dropping the bundle).
pub(crate) struct MpiObs {
    /// `mpi_msgs_sent_total{rank}` — messages offered to the fabric.
    msgs_sent: Counter,
    /// `mpi_bytes_sent_total{rank}` — header + payload bytes sent.
    bytes_sent: Counter,
    /// `mpi_msgs_delivered_total{rank}` — messages fed to the
    /// matching engine on this rank.
    msgs_delivered: Counter,
    /// `mpi_send_ns{rank}` — sampled latency of the send fast path.
    pub send_ns: Histogram,
    /// `mpi_recv_wait_ns{rank}` — sampled matching + blocking-wait
    /// latency of receive completion.
    pub recv_wait_ns: Histogram,
    /// `mpi_probes_total{rank}` — iprobe calls.
    probes: Counter,
    tick: u64,
    pend_sent: u64,
    pend_bytes: u64,
    pend_delivered: u64,
    pend_probes: u64,
}

impl MpiObs {
    /// Register this rank's handle bundle.
    pub fn register(reg: &Registry, rank: usize) -> Self {
        let r = rank.to_string();
        let l: &[(&str, &str)] = &[("rank", &r)];
        MpiObs {
            msgs_sent: reg.counter_with("mpi_msgs_sent_total", l),
            bytes_sent: reg.counter_with("mpi_bytes_sent_total", l),
            msgs_delivered: reg.counter_with("mpi_msgs_delivered_total", l),
            send_ns: reg.histogram_with("mpi_send_ns", l),
            recv_wait_ns: reg.histogram_with("mpi_recv_wait_ns", l),
            probes: reg.counter_with("mpi_probes_total", l),
            tick: 0,
            pend_sent: 0,
            pend_bytes: 0,
            pend_delivered: 0,
            pend_probes: 0,
        }
    }

    /// Count one message offered to the fabric (`wire_bytes` = header +
    /// payload) and return the sampled send timer, if this operation
    /// drew the 1-in-16 sample.
    pub fn note_send(&mut self, wire_bytes: u64) -> Option<Stopwatch> {
        self.pend_sent += 1;
        self.pend_bytes += wire_bytes;
        self.sampled_timer()
    }

    /// Count one message handed to the matching engine.
    pub fn note_delivered(&mut self) {
        self.pend_delivered += 1;
    }

    /// Count one iprobe call.
    pub fn note_probe(&mut self) {
        self.pend_probes += 1;
    }

    /// Deterministic 1-in-16 sampling decision for latency timing; the
    /// sampling tick doubles as the buffered-counter flush point.
    pub fn sampled_timer(&mut self) -> Option<Stopwatch> {
        self.tick = self.tick.wrapping_add(1);
        if self.tick & SAMPLE_MASK == 0 {
            self.flush();
            Some(Stopwatch::start())
        } else {
            None
        }
    }

    fn flush(&mut self) {
        if self.pend_sent > 0 {
            self.msgs_sent.add(self.pend_sent);
            self.pend_sent = 0;
        }
        if self.pend_bytes > 0 {
            self.bytes_sent.add(self.pend_bytes);
            self.pend_bytes = 0;
        }
        if self.pend_delivered > 0 {
            self.msgs_delivered.add(self.pend_delivered);
            self.pend_delivered = 0;
        }
        if self.pend_probes > 0 {
            self.probes.add(self.pend_probes);
            self.pend_probes = 0;
        }
    }
}

impl Drop for MpiObs {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Metric handles of the reliable-delivery sublayer (lossy wire only,
/// so these never fire on the perfect-wire hot path).
pub(crate) struct NetObs {
    /// `net_retransmits_total{rank}` — data frames retransmitted.
    pub retransmits: Counter,
    /// `net_retransmit_backoff_us{rank}` — backoff delay scheduled
    /// after each retransmission, in microseconds.
    pub backoff_us: Histogram,
}

impl NetObs {
    /// Register this rank's sublayer handles.
    pub fn register(reg: &Registry, rank: usize) -> Self {
        let r = rank.to_string();
        let l: &[(&str, &str)] = &[("rank", &r)];
        NetObs {
            retransmits: reg.counter_with("net_retransmits_total", l),
            backoff_us: reg.histogram_with("net_retransmit_backoff_us", l),
        }
    }
}
