//! Communicators (the `MPI_Comm` analogue).
//!
//! A communicator is a membership list plus a *context identifier* that
//! isolates its traffic from every other communicator's. Collective traffic
//! runs in a shadow context ([`COLLECTIVE_BIT`]) so application
//! point-to-point receives — even wildcard ones — can never match the
//! internal messages of a collective.
//!
//! New contexts are allocated **collectively** (see [`crate::Mpi::comm_dup`]
//! and [`crate::Mpi::comm_split`]): participants agree on
//! `max(next-context-hint) + 1` via an internal allreduce, which keeps
//! identifiers consistent across members and unique among communicators
//! that share any rank — the property required for isolation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crate::error::{MpiError, MpiResult};

/// Context bit distinguishing a communicator's collective plane from its
/// point-to-point plane.
pub const COLLECTIVE_BIT: u32 = 0x8000_0000;

/// Context id of the world communicator. Ids below this are reserved.
pub const WORLD_CONTEXT: u32 = 1;

/// Handle to a communicator, specific to one rank (it knows the holder's
/// position in the group). Cloning shares the underlying state, so the
/// per-communicator collective sequence counter stays consistent across
/// clones held by the same rank.
#[derive(Clone)]
pub struct Comm {
    inner: Arc<CommInner>,
}

struct CommInner {
    context: u32,
    /// World ranks of the members, indexed by communicator rank.
    members: Vec<usize>,
    /// Inverse of `members`.
    world_to_comm: HashMap<usize, usize>,
    /// Holder's rank within this communicator.
    my_comm_rank: usize,
    /// Per-collective-call sequence number, mixed into internal tags as a
    /// guard against cross-call matching.
    coll_seq: AtomicU32,
}

impl Comm {
    /// The world communicator for a rank in a job of `size`.
    pub(crate) fn world(rank: usize, size: usize) -> Comm {
        Self::from_parts(WORLD_CONTEXT, (0..size).collect(), rank)
            .expect("world comm construction cannot fail")
    }

    /// Build a communicator from raw parts. `members` lists world ranks in
    /// communicator-rank order; `my_world_rank` must appear in it.
    pub(crate) fn from_parts(
        context: u32,
        members: Vec<usize>,
        my_world_rank: usize,
    ) -> MpiResult<Comm> {
        let world_to_comm: HashMap<usize, usize> =
            members.iter().enumerate().map(|(c, &w)| (w, c)).collect();
        if world_to_comm.len() != members.len() {
            return Err(MpiError::CollectiveMismatch(
                "duplicate world rank in communicator group".into(),
            ));
        }
        let my_comm_rank = *world_to_comm
            .get(&my_world_rank)
            .ok_or(MpiError::NotInComm)?;
        Ok(Comm {
            inner: Arc::new(CommInner {
                context,
                members,
                world_to_comm,
                my_comm_rank,
                coll_seq: AtomicU32::new(0),
            }),
        })
    }

    /// Number of member ranks.
    pub fn size(&self) -> usize {
        self.inner.members.len()
    }

    /// Holder's rank within this communicator.
    pub fn rank(&self) -> usize {
        self.inner.my_comm_rank
    }

    /// The point-to-point context identifier.
    pub fn context(&self) -> u32 {
        self.inner.context
    }

    /// The collective-plane context identifier.
    pub fn coll_context(&self) -> u32 {
        self.inner.context | COLLECTIVE_BIT
    }

    /// World ranks of the members, in communicator-rank order.
    pub fn members(&self) -> &[usize] {
        &self.inner.members
    }

    /// Translate a communicator rank to a world rank.
    pub fn world_rank(&self, comm_rank: usize) -> MpiResult<usize> {
        self.inner.members.get(comm_rank).copied().ok_or(
            MpiError::InvalidRank {
                rank: comm_rank,
                size: self.size(),
            },
        )
    }

    /// Translate a world rank to a communicator rank, if a member.
    pub fn comm_rank_of_world(&self, world_rank: usize) -> Option<usize> {
        self.inner.world_to_comm.get(&world_rank).copied()
    }

    /// Holder's world rank.
    pub fn my_world_rank(&self) -> usize {
        self.inner.members[self.inner.my_comm_rank]
    }

    /// Advance and return the collective sequence number (used to salt the
    /// tags of internal collective messages).
    pub(crate) fn next_coll_seq(&self) -> u32 {
        self.inner.coll_seq.fetch_add(1, Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("context", &self.inner.context)
            .field("size", &self.size())
            .field("rank", &self.rank())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_comm_layout() {
        let c = Comm::world(2, 4);
        assert_eq!(c.size(), 4);
        assert_eq!(c.rank(), 2);
        assert_eq!(c.context(), WORLD_CONTEXT);
        assert_eq!(c.coll_context(), WORLD_CONTEXT | COLLECTIVE_BIT);
        assert_eq!(c.members(), &[0, 1, 2, 3]);
        assert_eq!(c.world_rank(3).unwrap(), 3);
        assert_eq!(c.my_world_rank(), 2);
    }

    #[test]
    fn subgroup_rank_translation() {
        // Members are world ranks {5, 2, 9}; holder is world rank 9.
        let c = Comm::from_parts(7, vec![5, 2, 9], 9).unwrap();
        assert_eq!(c.size(), 3);
        assert_eq!(c.rank(), 2);
        assert_eq!(c.world_rank(0).unwrap(), 5);
        assert_eq!(c.comm_rank_of_world(2), Some(1));
        assert_eq!(c.comm_rank_of_world(7), None);
        assert!(c.world_rank(3).is_err());
    }

    #[test]
    fn non_member_holder_is_rejected() {
        assert!(matches!(
            Comm::from_parts(7, vec![0, 1], 5),
            Err(MpiError::NotInComm)
        ));
    }

    #[test]
    fn duplicate_member_is_rejected() {
        assert!(Comm::from_parts(7, vec![0, 1, 0], 0).is_err());
    }

    #[test]
    fn clones_share_collective_sequence() {
        let a = Comm::world(0, 2);
        let b = a.clone();
        assert_eq!(a.next_coll_seq(), 0);
        assert_eq!(b.next_coll_seq(), 1);
        assert_eq!(a.next_coll_seq(), 2);
    }
}
