//! Error type for every MPI-like operation.

use std::fmt;

/// Errors surfaced by `simmpi` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// The job was aborted (a stopping failure was detected somewhere and
    /// the recovery harness is rolling the job back). Every blocked call in
    /// every rank returns this; rank functions should propagate it upward.
    Aborted,
    /// This rank has been told to fail-stop. The rank function must return
    /// immediately and silently — a stopped process neither sends nor
    /// receives (Section 1.1 of the paper).
    FailStop,
    /// A rank index outside `0..size` was supplied.
    InvalidRank {
        /// The offending rank index.
        rank: usize,
        /// The communicator's size.
        size: usize,
    },
    /// The rank making the call is not a member of the communicator.
    NotInComm,
    /// Collective participants disagreed on payload sizes or dtypes.
    CollectiveMismatch(String),
    /// A reduce payload length was not a multiple of the dtype width.
    BadPayload(String),
    /// A request was waited on twice, or a `Request` from a different rank
    /// was passed in.
    BadRequest(String),
    /// The reliable-delivery sublayer exhausted its retransmission budget
    /// against a rank that is neither failed nor departed — the network,
    /// not the process, is at fault (e.g. a partition that never healed).
    NetUnreachable {
        /// The destination that never acknowledged.
        dst: usize,
        /// Transmissions attempted before giving up.
        attempts: u32,
    },
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::Aborted => write!(f, "job aborted for rollback"),
            MpiError::FailStop => write!(f, "rank fail-stopped"),
            MpiError::InvalidRank { rank, size } => {
                write!(
                    f,
                    "invalid rank {rank} for communicator of size {size}"
                )
            }
            MpiError::NotInComm => {
                write!(f, "calling rank is not a member of the communicator")
            }
            MpiError::CollectiveMismatch(m) => {
                write!(f, "collective call mismatch: {m}")
            }
            MpiError::BadPayload(m) => write!(f, "bad payload: {m}"),
            MpiError::BadRequest(m) => write!(f, "bad request: {m}"),
            MpiError::NetUnreachable { dst, attempts } => write!(
                f,
                "rank {dst} unreachable: retransmit budget exhausted \
                 after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for MpiError {}

/// Convenience alias used throughout the crate and by layers above.
pub type MpiResult<T> = Result<T, MpiError>;
