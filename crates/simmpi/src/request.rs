//! Non-blocking communication requests (the `MPI_Request` analogue).

use crate::envelope::RecvMsg;
use crate::matching::RecvId;

/// Handle for a non-blocking operation, completed via [`crate::Mpi::wait`],
/// [`crate::Mpi::test`], or the `waitall`/`waitany` variants.
///
/// A request is single-use: waiting on it a second time is a
/// [`crate::MpiError::BadRequest`]. Requests must be completed by the same
/// rank that created them.
#[derive(Debug)]
pub struct Request {
    pub(crate) state: ReqState,
    /// World rank that owns this request; used to detect cross-rank misuse.
    pub(crate) owner: usize,
}

#[derive(Debug)]
pub(crate) enum ReqState {
    /// Send has been handed to the transport (sends buffer and complete
    /// immediately in this runtime, like a buffered-mode `MPI_Isend`).
    SendDone,
    /// Receive completed at post time or via a mailbox drain.
    RecvReady(RecvMsg),
    /// Receive still pending in the matching engine.
    RecvPending(RecvId),
    /// Result already taken by `wait`/`test`.
    Consumed,
}

impl Request {
    pub(crate) fn send_done(owner: usize) -> Self {
        Request {
            state: ReqState::SendDone,
            owner,
        }
    }

    pub(crate) fn recv_ready(owner: usize, msg: RecvMsg) -> Self {
        Request {
            state: ReqState::RecvReady(msg),
            owner,
        }
    }

    pub(crate) fn recv_pending(owner: usize, id: RecvId) -> Self {
        Request {
            state: ReqState::RecvPending(id),
            owner,
        }
    }

    /// True if this request was produced by a send operation.
    pub fn is_send(&self) -> bool {
        matches!(self.state, ReqState::SendDone)
    }

    /// True if `wait` would return without blocking *based on local state
    /// alone* (a pending receive may still complete instantly if its message
    /// has arrived but not yet been drained).
    pub fn is_locally_complete(&self) -> bool {
        matches!(
            self.state,
            ReqState::SendDone | ReqState::RecvReady(_) | ReqState::Consumed
        )
    }

    /// True if the result has already been taken.
    pub fn is_consumed(&self) -> bool {
        matches!(self.state, ReqState::Consumed)
    }
}
