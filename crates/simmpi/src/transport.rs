//! Reliable transport: one unbounded FIFO channel per destination rank.
//!
//! The paper assumes "a reliable transport layer for delivering application
//! messages" (Section 1.1, citing LA-MPI); crossbeam channels provide
//! exactly that within a process: no loss, no duplication, per-sender FIFO.
//! Everything weaker that the protocol must cope with — out-of-order
//! *matching* at the application level — is introduced above this layer, in
//! [`crate::matching`].

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::envelope::Message;
use crate::error::{MpiError, MpiResult};
use crate::world::JobControl;

/// The sending half of the fabric, shared by all ranks.
///
/// Cloning is cheap; each rank holds one.
#[derive(Clone)]
pub struct Fabric {
    senders: Vec<Sender<Message>>,
    control: JobControl,
}

impl Fabric {
    /// Build a fabric for `n` ranks; returns the fabric plus each rank's
    /// receiving endpoint.
    pub fn new(
        n: usize,
        control: JobControl,
    ) -> (Fabric, Vec<Receiver<Message>>) {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        (Fabric { senders, control }, receivers)
    }

    /// Number of ranks the fabric connects.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// The job-wide control block (abort flag).
    pub fn control(&self) -> &JobControl {
        &self.control
    }

    /// Deliver `msg` into the destination's mailbox. Infallible unless the
    /// job is aborting (in which case the message is dropped — every rank is
    /// about to be rolled back anyway) or the destination is invalid.
    pub fn send(&self, msg: Message) -> MpiResult<()> {
        if self.control.is_aborted() {
            return Err(MpiError::Aborted);
        }
        let dst = msg.dst;
        let size = self.size();
        self.senders
            .get(dst)
            .ok_or(MpiError::InvalidRank { rank: dst, size })?
            .send(msg)
            // The receiver endpoint only drops when its rank thread has
            // exited; under the stopping-failure model messages to a dead
            // rank silently vanish.
            .or(Ok(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn msg(src: usize, dst: usize, seq: u64) -> Message {
        Message {
            src,
            dst,
            context: 0,
            tag: 1,
            payload: Bytes::from_static(b"x"),
            seq,
        }
    }

    #[test]
    fn per_sender_fifo_order_is_preserved() {
        let control = JobControl::new(2);
        let (fabric, mut rx) = Fabric::new(2, control);
        for seq in 0..100 {
            fabric.send(msg(0, 1, seq)).unwrap();
        }
        let inbox = rx.remove(1);
        for seq in 0..100 {
            assert_eq!(inbox.recv().unwrap().seq, seq);
        }
    }

    #[test]
    fn invalid_destination_is_an_error() {
        let control = JobControl::new(2);
        let (fabric, _rx) = Fabric::new(2, control);
        assert_eq!(
            fabric.send(msg(0, 5, 0)).unwrap_err(),
            MpiError::InvalidRank { rank: 5, size: 2 }
        );
    }

    #[test]
    fn send_to_dead_rank_is_silently_dropped() {
        let control = JobControl::new(2);
        let (fabric, rx) = Fabric::new(2, control);
        drop(rx); // both ranks gone
        fabric.send(msg(0, 1, 0)).unwrap();
    }

    #[test]
    fn abort_poisons_sends() {
        let control = JobControl::new(2);
        let (fabric, _rx) = Fabric::new(2, control.clone());
        control.abort();
        assert_eq!(fabric.send(msg(0, 1, 0)).unwrap_err(), MpiError::Aborted);
    }
}
