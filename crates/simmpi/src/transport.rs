//! Transport fabric: one unbounded FIFO channel per destination rank,
//! optionally fronted by the deterministic lossy wire of [`crate::netsim`].
//!
//! The paper assumes "a reliable transport layer for delivering application
//! messages" (Section 1.1, citing LA-MPI). With the default perfect wire,
//! crossbeam channels provide exactly that within a process: no loss, no
//! duplication, per-sender FIFO — and frames take the direct path with no
//! netsim state allocated at all. With a lossy [`NetCond`], every frame is
//! pushed through per-directed-link wire state that may drop, duplicate,
//! hold back, or sever it; the reliable-delivery sublayer in
//! [`crate::netsim`] then rebuilds the FIFO guarantee above it.
//! Everything weaker that the protocol must cope with — out-of-order
//! *matching* at the application level — is introduced above this layer, in
//! [`crate::matching`].

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::envelope::Message;
use crate::error::{MpiError, MpiResult};
use crate::netsim::{Frame, LinkWire, NetCond, WireStats};
use crate::world::JobControl;

/// The lossy-wire state shared by every rank's fabric handle: one
/// [`LinkWire`] per directed link, indexed `src * n + dst`.
struct WireNet {
    cond: NetCond,
    links: Vec<Mutex<LinkWire>>,
    n: usize,
}

/// The sending half of the fabric, shared by all ranks.
///
/// Cloning is cheap; each rank holds one.
#[derive(Clone)]
pub struct Fabric {
    senders: Vec<Sender<Frame>>,
    control: JobControl,
    net: Option<Arc<WireNet>>,
}

impl Fabric {
    /// Build a perfect-wire fabric for `n` ranks; returns the fabric plus
    /// each rank's receiving endpoint.
    pub fn new(
        n: usize,
        control: JobControl,
    ) -> (Fabric, Vec<Receiver<Frame>>) {
        Self::build(n, control, None)
    }

    /// Build a fabric whose frames traverse the lossy wire described by
    /// `cond` (a perfect `cond` degenerates to [`Fabric::new`]).
    pub fn new_with_net(
        n: usize,
        control: JobControl,
        cond: NetCond,
    ) -> (Fabric, Vec<Receiver<Frame>>) {
        let net = if cond.is_perfect() {
            None
        } else {
            Some(Arc::new(WireNet {
                links: (0..n * n)
                    .map(|_| Mutex::new(LinkWire::new()))
                    .collect(),
                cond,
                n,
            }))
        };
        Self::build(n, control, net)
    }

    fn build(
        n: usize,
        control: JobControl,
        net: Option<Arc<WireNet>>,
    ) -> (Fabric, Vec<Receiver<Frame>>) {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        (
            Fabric {
                senders,
                control,
                net,
            },
            receivers,
        )
    }

    /// Number of ranks the fabric connects.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// The job-wide control block (abort flag).
    pub fn control(&self) -> &JobControl {
        &self.control
    }

    /// The wire conditions, if a lossy wire is active.
    pub fn net_cond(&self) -> Option<&NetCond> {
        self.net.as_ref().map(|w| &w.cond)
    }

    /// Validate a send's destination and the job's liveness, in that
    /// order: a nonsense destination is a program bug and is reported as
    /// such even while the job is aborting.
    pub fn validate_send(&self, dst: usize) -> MpiResult<()> {
        let size = self.size();
        if dst >= size {
            return Err(MpiError::InvalidRank { rank: dst, size });
        }
        if self.control.is_aborted() {
            return Err(MpiError::Aborted);
        }
        Ok(())
    }

    /// Deliver `msg` into the destination's mailbox over the perfect wire.
    /// Infallible unless the destination is invalid or the job is aborting
    /// (in which case the message is dropped — every rank is about to be
    /// rolled back anyway).
    pub fn send(&self, msg: Message) -> MpiResult<()> {
        self.validate_send(msg.dst)?;
        let dst = msg.dst;
        self.senders[dst]
            .send(Frame::Direct(msg))
            // The receiver endpoint only drops when its rank thread has
            // exited; under the stopping-failure model messages to a dead
            // rank silently vanish.
            .or(Ok(()))
    }

    /// Offer one frame to the lossy wire on the directed link
    /// `src → dst`; surviving copies land in `dst`'s mailbox now or when
    /// a later wire event releases them. No-op on a perfect-wire fabric.
    pub fn wire_transmit(
        &self,
        src: usize,
        dst: usize,
        frame: Frame,
        now: Instant,
    ) {
        let Some(net) = &self.net else { return };
        let tx = &self.senders[dst];
        net.links[src * net.n + dst].lock().transmit(
            &net.cond,
            src,
            dst,
            frame,
            now,
            &mut |f| {
                tx.send(f).ok();
            },
        );
    }

    /// Release every due held frame on links into `dst` (the receiver-side
    /// poll that makes delayed/reordered frames eventually arrive even on
    /// an otherwise idle link). No-op on a perfect-wire fabric.
    pub fn wire_pump_to(&self, dst: usize, now: Instant) {
        let Some(net) = &self.net else { return };
        let tx = &self.senders[dst];
        for src in 0..net.n {
            net.links[src * net.n + dst].lock().pump(now, &mut |f| {
                tx.send(f).ok();
            });
        }
    }

    /// Aggregate wire-fault counters over `src`'s outgoing links.
    pub fn wire_stats_for(&self, src: usize) -> WireStats {
        let mut total = WireStats::default();
        if let Some(net) = &self.net {
            for dst in 0..net.n {
                total.absorb(&net.links[src * net.n + dst].lock().stats());
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn msg(src: usize, dst: usize, seq: u64) -> Message {
        Message {
            src,
            dst,
            context: 0,
            tag: 1,
            header: crate::envelope::HeaderBytes::empty(),
            payload: Bytes::from_static(b"x"),
            seq,
        }
    }

    fn unwrap_direct(f: Frame) -> Message {
        match f {
            Frame::Direct(m) => m,
            other => panic!("expected a direct frame, got {other:?}"),
        }
    }

    #[test]
    fn per_sender_fifo_order_is_preserved() {
        let control = JobControl::new(2);
        let (fabric, mut rx) = Fabric::new(2, control);
        for seq in 0..100 {
            fabric.send(msg(0, 1, seq)).unwrap();
        }
        let inbox = rx.remove(1);
        for seq in 0..100 {
            assert_eq!(unwrap_direct(inbox.recv().unwrap()).seq, seq);
        }
    }

    #[test]
    fn invalid_destination_is_an_error() {
        let control = JobControl::new(2);
        let (fabric, _rx) = Fabric::new(2, control);
        assert_eq!(
            fabric.send(msg(0, 5, 0)).unwrap_err(),
            MpiError::InvalidRank { rank: 5, size: 2 }
        );
    }

    #[test]
    fn send_to_dead_rank_is_silently_dropped() {
        let control = JobControl::new(2);
        let (fabric, rx) = Fabric::new(2, control);
        drop(rx); // both ranks gone
        fabric.send(msg(0, 1, 0)).unwrap();
    }

    #[test]
    fn abort_poisons_sends() {
        let control = JobControl::new(2);
        let (fabric, _rx) = Fabric::new(2, control.clone());
        control.abort();
        assert_eq!(fabric.send(msg(0, 1, 0)).unwrap_err(), MpiError::Aborted);
    }

    #[test]
    fn send_into_aborting_job_reports_invalid_dst_first() {
        // Regression: the two error paths used to be checked in the
        // opposite order, so an out-of-range destination was masked by
        // `Aborted` during rollback and a program bug went unreported.
        let control = JobControl::new(2);
        let (fabric, _rx) = Fabric::new(2, control.clone());
        control.abort();
        assert_eq!(
            fabric.send(msg(0, 5, 0)).unwrap_err(),
            MpiError::InvalidRank { rank: 5, size: 2 }
        );
        // An in-range destination still reports the abort.
        assert_eq!(fabric.send(msg(0, 1, 0)).unwrap_err(), MpiError::Aborted);
    }

    #[test]
    fn perfect_netcond_allocates_no_wire_state() {
        let control = JobControl::new(2);
        let (fabric, _rx) =
            Fabric::new_with_net(2, control, NetCond::perfect());
        assert!(fabric.net_cond().is_none());
        assert_eq!(fabric.wire_stats_for(0), WireStats::default());
    }
}
