//! Receiver-side message matching with MPI semantics.
//!
//! MPI's matching rules are the reason the paper's protocol cannot assume
//! FIFO behaviour at the application level (Section 3.3): a receiver that
//! posts recvs with specific tags can consume messages from one sender in a
//! different order than they were sent. This module implements those rules:
//!
//! * an incoming message matches the **earliest-posted** pending receive
//!   whose `(source, tag, context)` pattern accepts it;
//! * a newly posted receive matches the **earliest-arrived** unexpected
//!   message it accepts;
//! * within one `(sender, pattern)` pair, messages are never overtaken
//!   (MPI's non-overtaking guarantee), which falls out of FIFO arrival order
//!   plus in-order queue scans.
//!
//! The engine is owned by its rank's thread and needs no synchronization;
//! all traffic reaches it through the rank's mailbox drain.

use std::collections::VecDeque;

use crate::envelope::Message;

/// Identifier of a pending posted receive, unique within one rank.
pub type RecvId = u64;

/// A posted receive waiting for a matching message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostedRecv {
    /// Handle by which the completion is reported.
    pub id: RecvId,
    /// Required sender world rank, or `None` for `ANY_SOURCE`.
    pub src: Option<usize>,
    /// Communicator context (always exact; contexts never wildcard).
    pub context: u32,
    /// Required tag, or `None` for `ANY_TAG`.
    pub tag: Option<i32>,
}

impl PostedRecv {
    fn accepts(&self, msg: &Message) -> bool {
        self.context == msg.context
            && self.src.is_none_or(|s| s == msg.src)
            && self.tag.is_none_or(|t| t == msg.tag)
    }
}

/// Result of posting a receive.
#[derive(Debug)]
pub enum PostOutcome {
    /// An unexpected message was already waiting; the receive is complete.
    Matched(Message),
    /// No message yet; completion will be reported by a later `deliver`.
    Pending(RecvId),
}

/// Receiver-side matching engine.
#[derive(Default)]
pub struct MatchEngine {
    unexpected: VecDeque<Message>,
    posted: VecDeque<PostedRecv>,
    next_id: RecvId,
}

impl MatchEngine {
    /// Create an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Post a receive with the given pattern.
    pub fn post(
        &mut self,
        src: Option<usize>,
        context: u32,
        tag: Option<i32>,
    ) -> PostOutcome {
        let probe = PostedRecv {
            id: 0,
            src,
            context,
            tag,
        };
        if let Some(pos) =
            self.unexpected.iter().position(|m| probe.accepts(m))
        {
            return PostOutcome::Matched(self.unexpected.remove(pos).unwrap());
        }
        let id = self.next_id;
        self.next_id += 1;
        self.posted.push_back(PostedRecv {
            id,
            src,
            context,
            tag,
        });
        PostOutcome::Pending(id)
    }

    /// Feed an arriving message in; if it completes a posted receive, the
    /// receive's id and the message are returned for the caller to record.
    pub fn deliver(&mut self, msg: Message) -> Option<(RecvId, Message)> {
        if let Some(pos) = self.posted.iter().position(|p| p.accepts(&msg)) {
            let posted = self.posted.remove(pos).unwrap();
            return Some((posted.id, msg));
        }
        self.unexpected.push_back(msg);
        None
    }

    /// Remove a pending posted receive (used when a request is dropped
    /// without being waited on). Returns true if it was still pending.
    pub fn cancel(&mut self, id: RecvId) -> bool {
        if let Some(pos) = self.posted.iter().position(|p| p.id == id) {
            self.posted.remove(pos);
            true
        } else {
            false
        }
    }

    /// Non-destructively look for an unexpected message matching a pattern
    /// (the `MPI_Iprobe` analogue).
    pub fn probe(
        &self,
        src: Option<usize>,
        context: u32,
        tag: Option<i32>,
    ) -> Option<&Message> {
        let probe = PostedRecv {
            id: 0,
            src,
            context,
            tag,
        };
        self.unexpected.iter().find(|m| probe.accepts(m))
    }

    /// Number of unexpected (arrived, unmatched) messages buffered.
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }

    /// Take every unexpected message, in arrival order, leaving the
    /// queue empty (used by the splice layer to stash a dying
    /// incarnation's fed-but-unconsumed traffic for its successor).
    pub fn drain_unexpected(&mut self) -> VecDeque<Message> {
        std::mem::take(&mut self.unexpected)
    }

    /// Number of posted receives still pending.
    pub fn pending_len(&self) -> usize {
        self.posted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn msg(src: usize, tag: i32, body: &'static [u8]) -> Message {
        Message {
            src,
            dst: 0,
            context: 7,
            tag,
            header: crate::envelope::HeaderBytes::empty(),
            payload: Bytes::from_static(body),
            seq: 0,
        }
    }

    #[test]
    fn tag_matching_reorders_messages_from_one_sender() {
        // The Section 3.3 scenario: sender sends tag 1 then tag 2; receiver
        // consumes tag 2 first. This is the non-FIFO behaviour at the
        // application level that the protocol must tolerate.
        let mut eng = MatchEngine::new();
        assert!(eng.deliver(msg(1, 1, b"first")).is_none());
        assert!(eng.deliver(msg(1, 2, b"second")).is_none());

        match eng.post(Some(1), 7, Some(2)) {
            PostOutcome::Matched(m) => assert_eq!(&m.payload[..], b"second"),
            PostOutcome::Pending(_) => panic!("tag 2 should match"),
        }
        match eng.post(Some(1), 7, Some(1)) {
            PostOutcome::Matched(m) => assert_eq!(&m.payload[..], b"first"),
            PostOutcome::Pending(_) => panic!("tag 1 should match"),
        }
    }

    #[test]
    fn non_overtaking_for_identical_patterns() {
        let mut eng = MatchEngine::new();
        eng.deliver(msg(1, 5, b"a"));
        eng.deliver(msg(1, 5, b"b"));
        let first = match eng.post(Some(1), 7, Some(5)) {
            PostOutcome::Matched(m) => m,
            _ => panic!(),
        };
        let second = match eng.post(Some(1), 7, Some(5)) {
            PostOutcome::Matched(m) => m,
            _ => panic!(),
        };
        assert_eq!(&first.payload[..], b"a");
        assert_eq!(&second.payload[..], b"b");
    }

    #[test]
    fn earliest_posted_receive_wins() {
        let mut eng = MatchEngine::new();
        let id_a = match eng.post(Some(1), 7, Some(5)) {
            PostOutcome::Pending(id) => id,
            _ => panic!(),
        };
        let _id_b = match eng.post(Some(1), 7, Some(5)) {
            PostOutcome::Pending(id) => id,
            _ => panic!(),
        };
        let (done, m) = eng.deliver(msg(1, 5, b"x")).unwrap();
        assert_eq!(done, id_a);
        assert_eq!(&m.payload[..], b"x");
        assert_eq!(eng.pending_len(), 1);
    }

    #[test]
    fn any_source_and_any_tag_wildcards() {
        let mut eng = MatchEngine::new();
        let id = match eng.post(None, 7, None) {
            PostOutcome::Pending(id) => id,
            _ => panic!(),
        };
        let (done, m) = eng.deliver(msg(3, 42, b"wild")).unwrap();
        assert_eq!(done, id);
        assert_eq!(m.src, 3);
        assert_eq!(m.tag, 42);
    }

    #[test]
    fn contexts_isolate_traffic() {
        let mut eng = MatchEngine::new();
        let pending = match eng.post(Some(1), 7, Some(5)) {
            PostOutcome::Pending(id) => id,
            _ => panic!(),
        };
        let mut other = msg(1, 5, b"other-context");
        other.context = 8;
        assert!(eng.deliver(other).is_none(), "wrong context must not match");
        assert_eq!(eng.unexpected_len(), 1);
        let (done, _) = eng.deliver(msg(1, 5, b"right")).unwrap();
        assert_eq!(done, pending);
    }

    #[test]
    fn cancel_removes_pending_receive() {
        let mut eng = MatchEngine::new();
        let id = match eng.post(Some(1), 7, Some(5)) {
            PostOutcome::Pending(id) => id,
            _ => panic!(),
        };
        assert!(eng.cancel(id));
        assert!(!eng.cancel(id));
        assert!(eng.deliver(msg(1, 5, b"x")).is_none());
        assert_eq!(eng.unexpected_len(), 1);
    }

    #[test]
    fn probe_is_non_destructive() {
        let mut eng = MatchEngine::new();
        eng.deliver(msg(2, 9, b"peek"));
        assert!(eng.probe(Some(2), 7, Some(9)).is_some());
        assert!(eng.probe(Some(2), 7, Some(9)).is_some());
        assert!(eng.probe(Some(2), 7, Some(8)).is_none());
        assert!(eng.probe(Some(9), 7, None).is_none());
        assert_eq!(eng.unexpected_len(), 1);
    }
}
