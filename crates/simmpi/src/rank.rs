//! Per-rank MPI handle: point-to-point operations and request completion.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError};

use crate::comm::Comm;
use crate::datatype::MpiType;
use crate::envelope::{HeaderBytes, Message, RecvMsg};
use crate::error::{MpiError, MpiResult};
use crate::matching::{MatchEngine, PostOutcome, RecvId};
use crate::netsim::{Frame, NetEndpoint, NetStats};
use crate::request::{ReqState, Request};
use crate::splice::{DeathStash, FlightRecorder, TapeEntry};
use crate::transport::Fabric;
use crate::world::JobControl;

/// Wildcard source for receives (the `MPI_ANY_SOURCE` analogue).
pub const ANY_SOURCE: usize = usize::MAX;

/// Wildcard tag for receives (the `MPI_ANY_TAG` analogue).
pub const ANY_TAG: i32 = i32::MIN;

/// Which message plane of a communicator an operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Plane {
    /// Application point-to-point traffic.
    P2p,
    /// Internal collective traffic (invisible to application receives).
    Coll,
}

/// A rank's handle to the message-passing runtime. One per rank thread;
/// every operation takes `&mut self` because the matching engine is
/// single-threaded by design.
pub struct Mpi {
    rank: usize,
    size: usize,
    world: Comm,
    fabric: Fabric,
    inbox: Receiver<Frame>,
    /// Reliable-delivery sublayer endpoint; present iff the fabric runs
    /// over a lossy wire. With the default perfect wire this is `None`
    /// and frames take the original direct path.
    net: Option<NetEndpoint>,
    engine: MatchEngine,
    /// Receives completed by a drain while their owner was waiting on a
    /// different request.
    completed: HashMap<RecvId, Message>,
    /// Per-destination send sequence numbers (diagnostics / ordering).
    send_seq: Vec<u64>,
    /// Total operations issued through this handle (used by failure
    /// injection layers to trigger deterministic fail-stops).
    ops: u64,
    /// Local hint for the next free communicator context id; new contexts
    /// are agreed collectively as `max(hints) + 0` across participants.
    pub(crate) next_ctx_hint: u32,
    /// Flight recorder of a supervised job: every consumed message is
    /// taped so a dead rank can be respawned by deterministic replay.
    /// `None` (the default) keeps the hot path untouched.
    recorder: Option<Arc<FlightRecorder>>,
    /// Operation count at which each engine-resident message was fed,
    /// keyed by `(sender world rank, sender-assigned seq)`. Only
    /// populated while a recorder is attached; consumption-time taping
    /// reads (and removes) the entry to compute the release point.
    feed_ops: HashMap<(usize, u64), u64>,
    /// Catch-up replay state of a respawned incarnation; `None` once the
    /// tape is exhausted (or on every ordinary incarnation).
    replay: Option<ReplayState>,
    /// Per-destination frame counts actually transmitted by this
    /// incarnation, keyed by `(context, tag)`. Cheap bookkeeping that
    /// becomes the successor's suppression budget if this incarnation
    /// dies: within one `(context, tag)` class the send order is
    /// deterministic under re-execution even when classes interleave
    /// differently (control pumps may consume peers' messages at
    /// slightly different points), so class-wise counting is the
    /// finest sound unit of duplicate suppression.
    class_sent: Vec<HashMap<(u32, i32), u64>>,
    /// Remaining re-executed sends to squelch, per destination and
    /// `(context, tag)` class: the dead incarnation's `class_sent`.
    /// The survivors already hold (or will receive, via the resurrected
    /// endpoint) those frames. Empty on an ordinary incarnation.
    suppress_budget: Vec<HashMap<(u32, i32), u64>>,
    /// Re-executed sends squelched so far.
    suppressed_sends: u64,
    /// Messages the replay tape held at respawn.
    replayed_frames: u64,
    /// Which incarnation of this rank this handle is (0 = original).
    incarnation: u32,
    /// Set when the replay tape exhausts; consumed once by the layer
    /// above to note the catch-up completion.
    caught_up_pending: bool,
    /// Pre-registered metric handles; `None` until a registry is
    /// attached, which keeps the un-observed hot path at one branch.
    #[cfg(feature = "obs")]
    obs: Option<crate::obs::MpiObs>,
}

/// Catch-up state of a respawned incarnation: the dead incarnation's
/// consumed-message tape plus live frames held back until the tape is
/// exhausted (they arrived after the death, so the original never saw
/// them; releasing them early would perturb replay determinism).
struct ReplayState {
    tape: VecDeque<TapeEntry>,
    held: VecDeque<Message>,
    /// The dead incarnation's fed-but-unconsumed messages: physically
    /// arrived before the death, never observed by the original, so
    /// they go live together (ahead of the held frames, preserving
    /// per-sender arrival order) once the tape is exhausted.
    undelivered: Vec<Message>,
    /// True while a released tape entry has not yet been consumed.
    /// Entries are released strictly one at a time, in tape order:
    /// consumption order is the only total order the original run
    /// defines, and op counts alone cannot sequence two polls of the
    /// same operation (the original may have consumed a message between
    /// two same-op probes that the op threshold cannot tell apart).
    outstanding: bool,
}

impl Mpi {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        fabric: Fabric,
        inbox: Receiver<Frame>,
    ) -> Self {
        let net = fabric
            .net_cond()
            .map(|c| NetEndpoint::new(rank, size, c.retransmit.clone()));
        Mpi {
            rank,
            size,
            world: crate::world::world_comm(rank, size),
            fabric,
            inbox,
            net,
            engine: MatchEngine::new(),
            completed: HashMap::new(),
            send_seq: vec![0; size],
            ops: 0,
            next_ctx_hint: crate::comm::WORLD_CONTEXT + 1,
            recorder: None,
            feed_ops: HashMap::new(),
            replay: None,
            class_sent: vec![HashMap::new(); size],
            suppress_budget: vec![HashMap::new(); size],
            suppressed_sends: 0,
            replayed_frames: 0,
            incarnation: 0,
            caught_up_pending: false,
            #[cfg(feature = "obs")]
            obs: None,
        }
    }

    /// Tape every consumed message into `rec` (supervised jobs only).
    pub(crate) fn attach_recorder(&mut self, rec: Arc<FlightRecorder>) {
        self.recorder = Some(rec);
    }

    /// Extract what this dying incarnation leaves for its successor: the
    /// per-class transmitted-frame counts, the reliable-delivery
    /// endpoint, and the mailbox itself (the fabric's channels are
    /// single-consumer, so the successor must inherit the receiver or
    /// lose every frame queued during the death window).
    pub(crate) fn export_stash(&mut self) -> DeathStash {
        // Swap in a disconnected dummy; this handle issues no further
        // receives (the rank function already unwound with `FailStop`).
        let (_tx, dummy) = crossbeam::channel::unbounded();
        // Fed-but-unconsumed traffic: matched-but-unclaimed receives
        // first (RecvId order = per-class match order), then the
        // unexpected queue in arrival order. Within a (src, context,
        // tag) class every matched message arrived before every still
        // unexpected one, so this concatenation preserves the only
        // ordering the matching engine guarantees.
        let mut matched: Vec<(RecvId, Message)> =
            self.completed.drain().collect();
        matched.sort_unstable_by_key(|(id, _)| *id);
        let mut undelivered: Vec<Message> =
            matched.into_iter().map(|(_, m)| m).collect();
        undelivered.extend(self.engine.drain_unexpected());
        self.feed_ops.clear();
        DeathStash {
            class_sent: self.class_sent.clone(),
            net: self.net.take(),
            inbox: Some(std::mem::replace(&mut self.inbox, dummy)),
            undelivered,
        }
    }

    /// Turn a freshly built handle into respawned incarnation
    /// `incarnation` of its rank: squelch re-executed sends up to the
    /// dead incarnation's per-class transmitted counts, resurrect the
    /// wire endpoint, and arm the consumed-message tape for op-faithful
    /// replay.
    pub(crate) fn configure_respawn(
        &mut self,
        incarnation: u32,
        stash: DeathStash,
        tape: VecDeque<TapeEntry>,
    ) {
        self.incarnation = incarnation;
        self.suppress_budget = stash.class_sent;
        if let Some(ep) = stash.net {
            self.net = Some(ep);
        }
        self.replayed_frames = tape.len() as u64;
        if tape.is_empty() {
            // Nothing was consumed before death: the incarnation is live
            // from its first operation, and the predecessor's unconsumed
            // traffic is available immediately.
            for msg in stash.undelivered {
                self.feed(msg);
            }
            self.caught_up_pending = true;
        } else {
            self.replay = Some(ReplayState {
                tape,
                held: VecDeque::new(),
                undelivered: stash.undelivered,
                outstanding: false,
            });
        }
    }

    /// Attach an observability registry: registers this rank's metric
    /// handle bundle (and the reliable-delivery sublayer's, when the
    /// wire is lossy). Metrics record into the registry from this call
    /// on; without it every hook is a single `Option` check.
    #[cfg(feature = "obs")]
    pub fn attach_obs(&mut self, reg: &c3obs::Registry) {
        self.obs = Some(crate::obs::MpiObs::register(reg, self.rank));
        if let Some(ep) = self.net.as_mut() {
            ep.attach_obs(crate::obs::NetObs::register(reg, self.rank));
        }
    }

    /// This rank's world rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.size
    }

    /// A handle to the world communicator.
    pub fn world(&self) -> Comm {
        self.world.clone()
    }

    /// The job control block (abort / fail-stop flags).
    pub fn control(&self) -> &JobControl {
        self.fabric.control()
    }

    /// Number of operations issued so far through this handle.
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// Check the stopping-failure and abort flags; every operation calls
    /// this first so a failed rank goes silent at its next MPI call.
    fn liveness(&self) -> MpiResult<()> {
        let control = self.fabric.control();
        if control.is_failed(self.rank) {
            return Err(MpiError::FailStop);
        }
        if control.is_aborted() {
            return Err(MpiError::Aborted);
        }
        Ok(())
    }

    /// Hand one message to the matching engine, noting its feed-time
    /// operation count when a recorder is attached (consumption-time
    /// taping needs it to compute the release point).
    fn feed(&mut self, msg: Message) {
        if self.recorder.is_some() {
            self.feed_ops.insert((msg.src, msg.seq), self.ops);
        }
        #[cfg(feature = "obs")]
        if let Some(o) = self.obs.as_mut() {
            o.note_delivered();
        }
        if let Some((id, msg)) = self.engine.deliver(msg) {
            self.completed.insert(id, msg);
        }
    }

    /// Tape one message at the moment it is handed to the caller. The
    /// recorded release point is `max(feed_op, consume_op - 1)`: never
    /// before the original's physical arrival (so replay visibility
    /// stays within the window the dead incarnation had), and exactly
    /// at the poll that found it (the control pump probes one operation
    /// before its consuming receive). Taping at consumption rather
    /// than at feed keeps polled consumption order-faithful under
    /// replay: a message the original fed but never polled must not be
    /// consumed mid-replay at a point the original never reached.
    fn record_consumed(&mut self, msg: &Message) {
        let fed = self.feed_ops.remove(&(msg.src, msg.seq));
        if let Some(rec) = &self.recorder {
            let fed = fed.unwrap_or(self.ops);
            rec.record(self.rank, fed.max(self.ops.saturating_sub(1)), msg);
        }
        // During catch-up every consumable message came off the tape
        // (live frames are held, the undelivered stash waits for the
        // end), so this consumption clears the way for the next entry.
        if let Some(rp) = self.replay.as_mut() {
            rp.outstanding = false;
        }
    }

    /// Route one frame from the mailbox: direct frames go straight to the
    /// matching engine; sublayer frames pass through the reliable-delivery
    /// endpoint, which may emit zero or more messages in wire order.
    /// During a respawned incarnation's catch-up, live frames are held
    /// back instead (they post-date everything on the replay tape).
    fn dispatch(&mut self, frame: Frame) {
        if self.replay.is_some() {
            self.hold_frame(frame);
            return;
        }
        match frame {
            Frame::Direct(msg) => self.feed(msg),
            other => {
                let msgs = match self.net.as_mut() {
                    Some(ep) => {
                        ep.on_frame(&self.fabric, other, Instant::now())
                    }
                    // Sublayer frames cannot arrive on a perfect-wire
                    // fabric; drop defensively.
                    None => Vec::new(),
                };
                for m in msgs {
                    self.feed(m);
                }
            }
        }
    }

    /// Park one live frame behind the replay tape. Sublayer frames still
    /// pass through the resurrected endpoint so duplicates are dropped
    /// and acks flow (peers stop retransmitting into the catch-up).
    fn hold_frame(&mut self, frame: Frame) {
        debug_assert!(self.replay.is_some(), "hold_frame outside catch-up");
        let Some(mut rp) = self.replay.take() else {
            return;
        };
        match frame {
            Frame::Direct(msg) => rp.held.push_back(msg),
            other => {
                if let Some(ep) = self.net.as_mut() {
                    rp.held.extend(ep.on_frame(
                        &self.fabric,
                        other,
                        Instant::now(),
                    ));
                }
            }
        }
        self.replay = Some(rp);
    }

    /// Drive the reliable-delivery sublayer's timers (held-frame release
    /// and retransmission). No-op on the perfect wire.
    fn net_poll(&mut self) -> MpiResult<()> {
        if let Some(ep) = self.net.as_mut() {
            ep.poll(&self.fabric, Instant::now())?;
        }
        Ok(())
    }

    /// Move every frame waiting in the mailbox into the matching engine.
    /// A respawned incarnation in catch-up instead releases tape entries
    /// visible at the current operation count and holds live frames back.
    fn drain(&mut self) -> MpiResult<()> {
        self.net_poll()?;
        if self.replay.is_some() {
            self.replay_step();
            return Ok(());
        }
        while let Ok(frame) = self.inbox.try_recv() {
            self.dispatch(frame);
        }
        Ok(())
    }

    /// One catch-up round: absorb live frames into the hold queue (still
    /// acking through the resurrected endpoint so peers stop
    /// retransmitting), release tape entries whose recorded op count has
    /// been reached, and go live once the tape is exhausted.
    fn replay_step(&mut self) {
        while let Ok(frame) = self.inbox.try_recv() {
            self.hold_frame(frame);
        }
        let Some(mut rp) = self.replay.take() else {
            return;
        };
        if !rp.outstanding {
            match rp.tape.pop_front() {
                Some((at, msg)) if at <= self.ops => {
                    rp.outstanding = true;
                    self.feed(msg);
                }
                Some(entry) => rp.tape.push_front(entry),
                None => {}
            }
        }
        if rp.tape.is_empty() {
            // Caught up: release the predecessor's fed-but-unconsumed
            // messages (they physically arrived before the death), then
            // the held live traffic (it post-dates them, so per-sender
            // FIFO is preserved), and rejoin the ordinary delivery path.
            for msg in rp.undelivered {
                self.feed(msg);
            }
            for msg in rp.held {
                self.feed(msg);
            }
            self.caught_up_pending = true;
        } else {
            self.replay = Some(rp);
        }
    }

    /// Linger until every frame this rank sent has been acknowledged (or
    /// written off to dead/departed peers). Called by the job runner after
    /// the rank function returns; immediate on the perfect wire.
    pub(crate) fn net_flush(&mut self) -> MpiResult<()> {
        if self.net.is_none() {
            return Ok(());
        }
        loop {
            if self.fabric.control().is_aborted() {
                // Every rank is rolling back; undelivered frames die with
                // the attempt.
                return Ok(());
            }
            self.drain()?;
            if self.net.as_ref().is_none_or(NetEndpoint::all_acked) {
                return Ok(());
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Counters of the reliable-delivery sublayer and this rank's outgoing
    /// wire links. All zero on the perfect wire.
    pub fn net_stats(&self) -> NetStats {
        match &self.net {
            None => NetStats::default(),
            Some(ep) => {
                let mut s = ep.stats();
                s.wire = self.fabric.wire_stats_for(self.rank);
                s
            }
        }
    }

    fn resolve_dst(comm: &Comm, dst: usize) -> MpiResult<usize> {
        comm.world_rank(dst)
    }

    fn resolve_src(comm: &Comm, src: usize) -> MpiResult<Option<usize>> {
        if src == ANY_SOURCE {
            Ok(None)
        } else {
            comm.world_rank(src).map(Some)
        }
    }

    fn resolve_tag(tag: i32) -> Option<i32> {
        if tag == ANY_TAG {
            None
        } else {
            Some(tag)
        }
    }

    fn plane_context(comm: &Comm, plane: Plane) -> u32 {
        match plane {
            Plane::P2p => comm.context(),
            Plane::Coll => comm.coll_context(),
        }
    }

    fn recv_msg(comm: &Comm, msg: Message) -> RecvMsg {
        // Translate the sender's world rank into the communicator's frame;
        // a message can only arrive here through this communicator's
        // context, so the sender is always a member.
        let src = comm
            .comm_rank_of_world(msg.src)
            .expect("sender must be a communicator member");
        RecvMsg {
            src,
            tag: msg.tag,
            header: msg.header,
            payload: msg.payload,
        }
    }

    // ------------------------------------------------------------------
    // Internal (plane-aware) operations; collectives use the Coll plane.
    // ------------------------------------------------------------------

    pub(crate) fn send_on(
        &mut self,
        comm: &Comm,
        plane: Plane,
        dst: usize,
        tag: i32,
        payload: Bytes,
    ) -> MpiResult<()> {
        self.send_segments_on(
            comm,
            plane,
            dst,
            tag,
            HeaderBytes::empty(),
            payload,
        )
    }

    pub(crate) fn send_segments_on(
        &mut self,
        comm: &Comm,
        plane: Plane,
        dst: usize,
        tag: i32,
        header: HeaderBytes,
        payload: Bytes,
    ) -> MpiResult<()> {
        self.liveness()?;
        self.ops += 1;
        let dst_world = Self::resolve_dst(comm, dst)?;
        let context = Self::plane_context(comm, plane);
        let seq = self.send_seq[dst_world];
        self.send_seq[dst_world] += 1;
        if let Some(budget) =
            self.suppress_budget[dst_world].get_mut(&(context, tag))
        {
            if *budget > 0 {
                // Re-executed send of a respawned incarnation: the dead
                // incarnation already transmitted this class's next
                // frame, so the destination holds (or will receive, via
                // the resurrected endpoint's retransmission buffer) the
                // original. Spend the class budget and squelch the
                // duplicate. Budgets are per (destination, context, tag)
                // rather than a flat per-destination frame count: replay
                // may interleave control and application traffic
                // differently than the original run did, and a flat
                // count would then spend suppression slots on the wrong
                // frames and let duplicates through.
                *budget -= 1;
                self.suppressed_sends += 1;
                return Ok(());
            }
        }
        *self.class_sent[dst_world]
            .entry((context, tag))
            .or_insert(0) += 1;
        #[cfg(feature = "obs")]
        let timer = self
            .obs
            .as_mut()
            .and_then(|o| o.note_send((header.len() + payload.len()) as u64));
        let msg = Message {
            src: self.rank,
            dst: dst_world,
            context,
            tag,
            header,
            payload,
            seq,
        };
        let res = match self.net.as_mut() {
            None => self.fabric.send(msg),
            Some(ep) => ep.send(&self.fabric, msg, Instant::now()),
        };
        #[cfg(feature = "obs")]
        if let (Some(o), Some(t)) = (&self.obs, timer) {
            o.send_ns.record(t.elapsed_ns());
        }
        res
    }

    pub(crate) fn irecv_on(
        &mut self,
        comm: &Comm,
        plane: Plane,
        src: usize,
        tag: i32,
    ) -> MpiResult<Request> {
        self.liveness()?;
        self.ops += 1;
        let src_world = Self::resolve_src(comm, src)?;
        let tag = Self::resolve_tag(tag);
        self.drain()?;
        let context = Self::plane_context(comm, plane);
        match self.engine.post(src_world, context, tag) {
            PostOutcome::Matched(msg) => {
                self.record_consumed(&msg);
                Ok(Request::recv_ready(self.rank, Self::recv_msg(comm, msg)))
            }
            PostOutcome::Pending(id) => {
                Ok(Request::recv_pending(self.rank, id))
            }
        }
    }

    pub(crate) fn recv_on(
        &mut self,
        comm: &Comm,
        plane: Plane,
        src: usize,
        tag: i32,
    ) -> MpiResult<RecvMsg> {
        let mut req = self.irecv_on(comm, plane, src, tag)?;
        self.wait_recv_in(comm, &mut req)
    }

    fn wait_recv_in(
        &mut self,
        comm: &Comm,
        req: &mut Request,
    ) -> MpiResult<RecvMsg> {
        match self.wait_in(comm, req)? {
            Some(msg) => Ok(msg),
            None => Err(MpiError::BadRequest(
                "wait_recv called on a send request".into(),
            )),
        }
    }

    fn wait_in(
        &mut self,
        comm: &Comm,
        req: &mut Request,
    ) -> MpiResult<Option<RecvMsg>> {
        if req.owner != self.rank {
            return Err(MpiError::BadRequest(format!(
                "request owned by rank {} waited on by rank {}",
                req.owner, self.rank
            )));
        }
        // Sampled matching + blocking-wait latency; armed once so the
        // retry loop below does not re-roll the sampling decision.
        #[cfg(feature = "obs")]
        let timer = self
            .obs
            .as_mut()
            .and_then(crate::obs::MpiObs::sampled_timer);
        loop {
            match std::mem::replace(&mut req.state, ReqState::Consumed) {
                ReqState::SendDone => return Ok(None),
                ReqState::RecvReady(msg) => return Ok(Some(msg)),
                ReqState::Consumed => {
                    return Err(MpiError::BadRequest(
                        "request waited on twice".into(),
                    ))
                }
                ReqState::RecvPending(id) => {
                    if let Some(msg) = self.completed.remove(&id) {
                        self.record_consumed(&msg);
                        #[cfg(feature = "obs")]
                        if let (Some(o), Some(t)) = (&self.obs, timer) {
                            o.recv_wait_ns.record(t.elapsed_ns());
                        }
                        return Ok(Some(Self::recv_msg(comm, msg)));
                    }
                    // Not complete: restore state and block for traffic.
                    req.state = ReqState::RecvPending(id);
                    self.liveness()?;
                    // A full drain (not just a net poll): a respawned
                    // incarnation's completion may come off the replay
                    // tape, which only the drain path releases.
                    self.drain()?;
                    if self.completed.contains_key(&id) {
                        continue;
                    }
                    match self.inbox.recv_timeout(Duration::from_millis(1)) {
                        Ok(frame) => {
                            self.dispatch(frame);
                            self.drain()?;
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => {
                            // Fabric holds a sender for every rank including
                            // ourselves, so this cannot happen while `self`
                            // is alive; treat defensively as an abort.
                            return Err(MpiError::Aborted);
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Public point-to-point API (application plane).
    // ------------------------------------------------------------------

    /// Blocking send of a byte payload to `dst` (a communicator rank).
    ///
    /// Sends buffer in the transport and complete immediately, like a
    /// buffered-mode MPI send on a machine with ample memory.
    pub fn send(
        &mut self,
        comm: &Comm,
        dst: usize,
        tag: i32,
        payload: &[u8],
    ) -> MpiResult<()> {
        self.send_on(
            comm,
            Plane::P2p,
            dst,
            tag,
            Bytes::copy_from_slice(payload),
        )
    }

    /// Blocking send of an owned payload (zero-copy).
    pub fn send_bytes(
        &mut self,
        comm: &Comm,
        dst: usize,
        tag: i32,
        payload: Bytes,
    ) -> MpiResult<()> {
        self.send_on(comm, Plane::P2p, dst, tag, payload)
    }

    /// Blocking vectored send: a small inline header segment plus an
    /// owned payload, shipped as one two-segment frame. Neither segment
    /// is copied into a combined buffer; the receiver sees them as
    /// [`RecvMsg::header`] and [`RecvMsg::payload`]. This is the
    /// protocol layer's O(header)-cost send primitive.
    pub fn send_parts(
        &mut self,
        comm: &Comm,
        dst: usize,
        tag: i32,
        header: HeaderBytes,
        payload: Bytes,
    ) -> MpiResult<()> {
        self.send_segments_on(comm, Plane::P2p, dst, tag, header, payload)
    }

    /// Blocking typed send.
    pub fn send_t<T: MpiType>(
        &mut self,
        comm: &Comm,
        dst: usize,
        tag: i32,
        data: &[T],
    ) -> MpiResult<()> {
        self.send_bytes(comm, dst, tag, T::slice_to_bytes(data).into())
    }

    /// Non-blocking send; complete with [`Mpi::wait`].
    pub fn isend(
        &mut self,
        comm: &Comm,
        dst: usize,
        tag: i32,
        payload: &[u8],
    ) -> MpiResult<Request> {
        self.send_on(
            comm,
            Plane::P2p,
            dst,
            tag,
            Bytes::copy_from_slice(payload),
        )?;
        Ok(Request::send_done(self.rank))
    }

    /// Non-blocking receive; complete with [`Mpi::wait`] or
    /// [`Mpi::wait_recv`]. `src` may be [`ANY_SOURCE`], `tag` may be
    /// [`ANY_TAG`].
    pub fn irecv(
        &mut self,
        comm: &Comm,
        src: usize,
        tag: i32,
    ) -> MpiResult<Request> {
        self.irecv_on(comm, Plane::P2p, src, tag)
    }

    /// Blocking receive.
    pub fn recv(
        &mut self,
        comm: &Comm,
        src: usize,
        tag: i32,
    ) -> MpiResult<RecvMsg> {
        self.recv_on(comm, Plane::P2p, src, tag)
    }

    /// Blocking typed receive.
    pub fn recv_t<T: MpiType>(
        &mut self,
        comm: &Comm,
        src: usize,
        tag: i32,
    ) -> MpiResult<Vec<T>> {
        self.recv(comm, src, tag)?.to_vec()
    }

    /// Complete a request. Returns `Some` message for receives, `None` for
    /// sends. The request must belong to `comm`'s rank frame (i.e. have
    /// been created through operations on `comm`).
    pub fn wait(
        &mut self,
        comm: &Comm,
        req: &mut Request,
    ) -> MpiResult<Option<RecvMsg>> {
        self.wait_in(comm, req)
    }

    /// Complete a receive request, erroring on send requests.
    pub fn wait_recv(
        &mut self,
        comm: &Comm,
        req: &mut Request,
    ) -> MpiResult<RecvMsg> {
        self.wait_recv_in(comm, req)
    }

    /// Non-blocking completion check. After `test` returns `true`, `wait`
    /// will not block.
    pub fn test(&mut self, req: &mut Request) -> MpiResult<bool> {
        if req.owner != self.rank {
            return Err(MpiError::BadRequest(
                "request tested by a different rank".into(),
            ));
        }
        self.liveness()?;
        self.drain()?;
        match &req.state {
            ReqState::SendDone | ReqState::RecvReady(_) => Ok(true),
            ReqState::Consumed => Err(MpiError::BadRequest(
                "request tested after completion".into(),
            )),
            ReqState::RecvPending(id) => Ok(self.completed.contains_key(id)),
        }
    }

    /// Complete all requests, in order. Returns one entry per request.
    pub fn waitall(
        &mut self,
        comm: &Comm,
        reqs: &mut [Request],
    ) -> MpiResult<Vec<Option<RecvMsg>>> {
        let mut out = Vec::with_capacity(reqs.len());
        for req in reqs.iter_mut() {
            out.push(self.wait_in(comm, req)?);
        }
        Ok(out)
    }

    /// Complete any one not-yet-consumed request; returns its index and
    /// result. Errors if every request is already consumed.
    pub fn waitany(
        &mut self,
        comm: &Comm,
        reqs: &mut [Request],
    ) -> MpiResult<(usize, Option<RecvMsg>)> {
        loop {
            self.liveness()?;
            self.drain()?;
            let mut any_live = false;
            for (i, req) in reqs.iter_mut().enumerate() {
                match &req.state {
                    ReqState::Consumed => continue,
                    ReqState::SendDone | ReqState::RecvReady(_) => {
                        let r = self.wait_in(comm, req)?;
                        return Ok((i, r));
                    }
                    ReqState::RecvPending(id) => {
                        any_live = true;
                        if self.completed.contains_key(id) {
                            let r = self.wait_in(comm, req)?;
                            return Ok((i, r));
                        }
                    }
                }
            }
            if !any_live {
                return Err(MpiError::BadRequest(
                    "waitany with no live requests".into(),
                ));
            }
            match self.inbox.recv_timeout(Duration::from_millis(1)) {
                Ok(frame) => self.dispatch(frame),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(MpiError::Aborted)
                }
            }
        }
    }

    /// Abandon a pending receive request (the `MPI_Cancel` analogue).
    pub fn cancel(&mut self, req: &mut Request) -> MpiResult<()> {
        if req.owner != self.rank {
            return Err(MpiError::BadRequest(
                "request cancelled by a different rank".into(),
            ));
        }
        if let ReqState::RecvPending(id) =
            std::mem::replace(&mut req.state, ReqState::Consumed)
        {
            if !self.engine.cancel(id) {
                // Discarded without reaching the caller: not taped (the
                // re-execution cancels identically), but drop the
                // feed-op bookkeeping.
                if let Some(m) = self.completed.remove(&id) {
                    self.feed_ops.remove(&(m.src, m.seq));
                }
            }
        }
        Ok(())
    }

    /// Combined send + receive (the `MPI_Sendrecv` analogue); deadlock-free
    /// for neighbor exchanges because the receive is posted first.
    pub fn sendrecv(
        &mut self,
        comm: &Comm,
        dst: usize,
        send_tag: i32,
        payload: &[u8],
        src: usize,
        recv_tag: i32,
    ) -> MpiResult<RecvMsg> {
        let mut req = self.irecv(comm, src, recv_tag)?;
        self.send(comm, dst, send_tag, payload)?;
        self.wait_recv(comm, &mut req)
    }

    /// Non-destructive check for a matching unexpected message; returns
    /// `(comm_src, tag, total_len)` where `total_len` counts the header
    /// segment plus the payload.
    pub fn iprobe(
        &mut self,
        comm: &Comm,
        src: usize,
        tag: i32,
    ) -> MpiResult<Option<(usize, i32, usize)>> {
        self.liveness()?;
        #[cfg(feature = "obs")]
        if let Some(o) = self.obs.as_mut() {
            o.note_probe();
        }
        self.drain()?;
        let src_world = Self::resolve_src(comm, src)?;
        let tag = Self::resolve_tag(tag);
        Ok(self.engine.probe(src_world, comm.context(), tag).map(|m| {
            let s = comm
                .comm_rank_of_world(m.src)
                .expect("sender must be a member");
            (s, m.tag, m.header.len() + m.payload.len())
        }))
    }

    // ------------------------------------------------------------------
    // Splice introspection (online rank substitution).
    // ------------------------------------------------------------------

    /// Which incarnation of its rank this handle is: 0 for an ordinary
    /// rank, `k` for the `k`-th respawn spliced in by a supervised run.
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// Messages the replay tape held when this incarnation was respawned
    /// (0 on ordinary incarnations).
    pub fn replayed_frames(&self) -> u64 {
        self.replayed_frames
    }

    /// Re-executed sends squelched below the death-time sequence
    /// high-water so far.
    pub fn suppressed_sends(&self) -> u64 {
        self.suppressed_sends
    }

    /// True while a respawned incarnation is still replaying its
    /// predecessor's consumed-message tape.
    pub fn in_catchup(&self) -> bool {
        self.replay.is_some()
    }

    /// One-shot catch-up completion signal: returns true exactly once,
    /// when the replay tape has been exhausted and the incarnation has
    /// gone live on the real fabric. The protocol layer uses this to
    /// trace the splice completion.
    pub fn take_caught_up(&mut self) -> bool {
        std::mem::take(&mut self.caught_up_pending)
    }
}
